#!/usr/bin/env python
"""Read mapping with provenance scoring and a baseline shoot-out.

Maps an edit-injected read batch against a stored reference with four
systems — ASMCap (full), ASMCap w/o strategies, EDAM, and the SaVI
seed-and-vote baseline — then scores each against exact edit-distance
ground truth and prints an accuracy/cost comparison table.

This is the Fig. 7 experiment in miniature, exposed as a worked example
of the library's evaluation machinery.

Run:  python examples/read_mapping.py
"""

from __future__ import annotations


from repro.baselines import EdamMatcher, SaviBaseline
from repro.cam import CamArray
from repro.core import AsmCapMatcher, MatcherConfig, ReadMappingPipeline
from repro.eval import ConfusionMatrix, format_table, label_dataset
from repro.genome import build_dataset

THRESHOLD = 6


def main() -> None:
    dataset = build_dataset("B", n_reads=48, read_length=256,
                            n_segments=64, seed=42)
    truth = label_dataset(dataset, THRESHOLD)
    labels = truth.labels(THRESHOLD)
    print(f"dataset: {len(dataset.reads)} Condition-B reads vs "
          f"{dataset.n_segments} segments; "
          f"{int(labels.sum())} true matches at T={THRESHOLD}")

    # --- ASMCap, full strategies --------------------------------------
    array_full = CamArray(rows=64, cols=256, domain="charge", seed=1)
    array_full.store(dataset.segments)
    asmcap = AsmCapMatcher(array_full, dataset.model, MatcherConfig(),
                           seed=2)

    # --- ASMCap w/o strategies --------------------------------------
    array_plain = CamArray(rows=64, cols=256, domain="charge", seed=1)
    array_plain.store(dataset.segments)
    plain = AsmCapMatcher(array_plain, dataset.model,
                          MatcherConfig.plain(), seed=2)

    # --- EDAM ----------------------------------------------------------
    edam = EdamMatcher(rows=64, cols=256, seed=1)
    edam.store(dataset.segments)

    # --- SaVI ----------------------------------------------------------
    savi = SaviBaseline(dataset.reference, k=16)

    rows = []
    systems = {
        "ASMCap w/ H&T": lambda read: asmcap.match(read, THRESHOLD),
        "ASMCap w/o H&T": lambda read: plain.match(read, THRESHOLD),
        "EDAM": lambda read: edam.match(read, THRESHOLD),
    }
    for name, match in systems.items():
        matrix = ConfusionMatrix()
        energy = latency = 0.0
        for index, record in enumerate(dataset.reads):
            outcome = match(record.read.codes)
            matrix.update(outcome.decisions, labels[index])
            energy += outcome.energy_joules
            latency += outcome.latency_ns
        rows.append((name, matrix.f1 * 100, matrix.sensitivity * 100,
                     matrix.precision * 100,
                     latency / len(dataset.reads),
                     energy / len(dataset.reads) * 1e12))

    # SaVI produces positional decisions rather than CAM row decisions.
    savi_matrix = ConfusionMatrix()
    savi_latency = savi_energy = 0.0
    for index, record in enumerate(dataset.reads):
        decisions = savi.decisions_for_segments(record.read, 64, 256)
        savi_matrix.update(decisions, labels[index])
        savi_latency += savi.read_latency_ns(256)
        savi_energy += savi.read_energy_joules(256)
    rows.append(("SaVI (seed-and-vote)", savi_matrix.f1 * 100,
                 savi_matrix.sensitivity * 100,
                 savi_matrix.precision * 100,
                 savi_latency / len(dataset.reads),
                 savi_energy / len(dataset.reads) * 1e12))

    print()
    print(format_table(
        ["system", "F1 %", "sens %", "prec %", "ns/read", "pJ/read"],
        rows, title=f"Read mapping at T={THRESHOLD} (Condition B)",
    ))

    # The pipeline view: where did each read land?
    pipeline = ReadMappingPipeline(asmcap)
    report = pipeline.run(dataset.reads, THRESHOLD)
    print(f"pipeline: {report.mapped_fraction * 100:.0f}% of reads mapped, "
          f"{report.unique_fraction * 100:.0f}% uniquely; "
          f"{report.n_searches} searches total")


if __name__ == "__main__":
    main()
