#!/usr/bin/env python
"""Long reads via fragmentation — and why EDAM needs it sooner.

The array width caps the read a single search can handle; longer reads
are split into fragments whose decisions are combined (Fig. 4(a)'s
"entire reads or k-mers" path).  Crucially, the *sensing* technology
sets its own ceiling: EDAM's current-domain chain distinguishes only 44
states, so even a 256-base read already exceeds what one EDAM row can
sense reliably, while ASMCap's 566 states cover it with margin
(Section V-D).

This example matches 512-base reads on a 256-wide array (2 fragments),
then repeats the experiment on a 64-wide array (8 fragments) to show
the accuracy cost of finer fragmentation: every fragment boundary is a
place where the per-fragment edit budget quantises.

Run:  python examples/long_read_fragmentation.py
"""

from __future__ import annotations

import numpy as np

from repro.cam import CamArray
from repro.core import FragmentedMatcher
from repro.distance import edit_distance
from repro.genome import DnaSequence, ErrorModel, ReadSampler, generate_reference

N_SEGMENTS = 16
LONG_READ = 512
THRESHOLD = 12


def run(array_width: int, segments: np.ndarray, reads, origins) -> float:
    """Fraction of reads recovering their origin at this fragmentation."""
    n_fragments = LONG_READ // array_width
    array = CamArray(rows=N_SEGMENTS * n_fragments, cols=array_width,
                     domain="charge", seed=1)
    matcher = FragmentedMatcher(array, segments,
                                min_fragment_matches=n_fragments)
    recovered = 0
    for read, origin in zip(reads, origins, strict=True):
        outcome = matcher.match(read.codes, THRESHOLD)
        if outcome.decisions[origin]:
            recovered += 1
    print(f"  width {array_width:4d} ({n_fragments} fragments, "
          f"per-fragment T = {matcher.per_fragment_threshold(THRESHOLD)}): "
          f"{recovered}/{len(reads)} reads recovered")
    return recovered / len(reads)


def main() -> None:
    reference = generate_reference(N_SEGMENTS * LONG_READ + 2048, seed=31,
                                   with_repeats=False)
    segments = np.stack([
        reference.codes[i * LONG_READ : (i + 1) * LONG_READ]
        for i in range(N_SEGMENTS)
    ])

    model = ErrorModel(substitution=0.018, insertion=0.0005,
                       deletion=0.0005)
    sampler = ReadSampler(reference, LONG_READ, model, seed=32)
    rng = np.random.default_rng(33)
    reads, origins = [], []
    for _ in range(32):
        origin = int(rng.integers(0, N_SEGMENTS))
        record = sampler.sample_at(origin * LONG_READ)
        reads.append(record.read)
        origins.append(origin)
    mean_ed = np.mean([
        edit_distance(DnaSequence(segments[o]), r)
        for r, o in zip(reads, origins, strict=True)
    ])
    print(f"{len(reads)} reads of {LONG_READ} bases, "
          f"mean true edit distance {mean_ed:.1f}, read-level T={THRESHOLD}")

    print("fragmentation sweep (requiring every fragment to match):")
    coarse = run(256, segments, reads, origins)
    fine = run(64, segments, reads, origins)

    assert coarse >= fine, (
        "coarser fragments have more budget slack per fragment"
    )
    assert coarse >= 0.8
    print("OK: fragmentation works; fewer, wider fragments match better —")
    print("    which is exactly why ASMCap's higher sensing ceiling "
          "(566 vs 44 states) matters.")


if __name__ == "__main__":
    main()
