#!/usr/bin/env python
"""FASTA/FASTQ workflow: run ASMCap on files instead of synthetic data.

Demonstrates the I/O path a user with real data would take:

1. write a reference FASTA and an error-injected FASTQ read file
   (stand-ins for downloaded data — the formats are the real thing);
2. parse them back with the ambiguity-resolution policies;
3. segment the reference, load the accelerator, and map the reads;
4. emit a simple mapping report.

Run:  python examples/fasta_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.cam import CamArray
from repro.core import AsmCapMatcher, MatcherConfig, ReadMappingPipeline
from repro.genome import ErrorModel, ReadSampler, generate_reference
from repro.genome.io_fasta import (
    FastaRecord,
    FastqRecord,
    parse_fasta,
    parse_fastq,
    write_fasta,
    write_fastq,
)

READ_LENGTH = 128
N_SEGMENTS = 32
THRESHOLD = 5


def prepare_files(directory: Path) -> tuple[Path, Path]:
    """Create reference.fa and reads.fq (the 'download' stand-in)."""
    reference = generate_reference(N_SEGMENTS * READ_LENGTH + 512, seed=21)
    fasta_path = directory / "reference.fa"
    write_fasta([FastaRecord("synthetic_chr1", reference)], fasta_path)

    model = ErrorModel.condition_a()
    sampler = ReadSampler(reference, READ_LENGTH, model, seed=22)
    rng = np.random.default_rng(23)
    records = []
    for i in range(24):
        segment_index = int(rng.integers(0, N_SEGMENTS))
        record = sampler.sample_at(segment_index * READ_LENGTH)
        # Constant placeholder quality (the CAM has no quality input).
        qualities = np.full(READ_LENGTH, 35, dtype=np.int16)
        records.append(FastqRecord(f"read_{i}_seg{segment_index}",
                                   record.read, qualities))
    fastq_path = directory / "reads.fq"
    write_fastq(records, fastq_path)
    return fasta_path, fastq_path


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        fasta_path, fastq_path = prepare_files(directory)
        print(f"wrote {fasta_path.name} and {fastq_path.name}")

        # Parse back (ambiguity policy 'random' would handle real 'N's).
        reference = parse_fasta(fasta_path)[0].sequence
        reads = parse_fastq(fastq_path)
        print(f"parsed reference ({len(reference)} bases) and "
              f"{len(reads)} reads")

        # Segment and load.
        segments = np.stack([
            reference.codes[i * READ_LENGTH:(i + 1) * READ_LENGTH]
            for i in range(N_SEGMENTS)
        ])
        array = CamArray(rows=N_SEGMENTS, cols=READ_LENGTH, seed=1)
        array.store(segments)
        matcher = AsmCapMatcher(array, ErrorModel.condition_a(),
                                MatcherConfig(), seed=2)
        pipeline = ReadMappingPipeline(matcher)

        report = pipeline.run([r.sequence.codes for r in reads], THRESHOLD)
        print(f"mapped {report.n_mapped}/{report.n_reads} reads at "
              f"T={THRESHOLD} ({report.unique_fraction * 100:.0f}% unique)")

        # Check provenance encoded in the FASTQ names.
        correct = 0
        for record, mapping in zip(reads, report.mappings):
            origin = int(record.name.split("seg")[-1])
            if origin in mapping.matched_rows:
                correct += 1
        print(f"{correct}/{len(reads)} reads mapped back to their "
              f"origin segment")
        assert correct >= len(reads) * 0.7
        print("OK: file-based workflow complete.")


if __name__ == "__main__":
    main()
