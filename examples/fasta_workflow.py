#!/usr/bin/env python
"""FASTA/FASTQ workflow: ingest once into the store, boot forever warm.

Demonstrates the I/O path a user with real data would take — now split
into the two phases the reference store creates:

1. **ingest** (once per reference): write reference FASTAs and an
   error-injected FASTQ (stand-ins for downloaded data), parse them
   with the ambiguity-resolution policies, segment, one-hot-encode,
   and save each reference as an on-disk stored reference registered
   in a :class:`~repro.refstore.ReferenceCatalog`;
2. **serve** (every boot after): a
   :class:`~repro.service.MappingFrontend` over the catalog opens the
   references by ``mmap`` — zero encode passes — and maps the FASTQ
   reads in two concurrent sessions, one per reference.

The FASTQ read names carry their origin (reference and segment), so
the mapping is self-checking: reads map back to their origin segment
in their own reference's session.

Run:  python examples/fasta_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.cam.array import StoredReference
from repro.genome import ErrorModel, ReadSampler, generate_reference
from repro.genome.io_fasta import (
    FastaRecord,
    FastqRecord,
    parse_fasta,
    parse_fastq,
    write_fasta,
    write_fastq,
)
from repro.refstore import ReferenceCatalog
from repro.service import MappingFrontend

READ_LENGTH = 128
N_SEGMENTS = 32          # per reference
READS_PER_REFERENCE = 16
THRESHOLD = 5
MODEL = ErrorModel.condition_a()
REFERENCES = ("chr_a", "chr_b")


def prepare_files(directory: Path) -> "tuple[dict[str, Path], Path]":
    """Create two reference FASTAs and one FASTQ (the 'download')."""
    fasta_paths = {}
    fastq_records = []
    rng = np.random.default_rng(23)
    for offset, name in enumerate(REFERENCES):
        reference = generate_reference(
            N_SEGMENTS * READ_LENGTH + 512, seed=21 + offset)
        path = directory / f"{name}.fa"
        write_fasta([FastaRecord(f"synthetic_{name}", reference)], path)
        fasta_paths[name] = path

        sampler = ReadSampler(reference, READ_LENGTH, MODEL,
                              seed=22 + offset)
        for i in range(READS_PER_REFERENCE):
            segment_index = int(rng.integers(0, N_SEGMENTS))
            record = sampler.sample_at(segment_index * READ_LENGTH)
            # Constant placeholder quality (the CAM has no quality
            # input).
            qualities = np.full(READ_LENGTH, 35, dtype=np.int16)
            fastq_records.append(FastqRecord(
                f"read_{i}_{name}_seg{segment_index}",
                record.read, qualities))
    fastq_path = directory / "reads.fq"
    write_fastq(fastq_records, fastq_path)
    return fasta_paths, fastq_path


def ingest(fasta_paths: "dict[str, Path]",
           directory: Path) -> ReferenceCatalog:
    """Parse + encode each FASTA once; register the store files."""
    catalog = ReferenceCatalog()
    for name, fasta_path in fasta_paths.items():
        # Parse back (ambiguity policy 'random' would handle real 'N's).
        sequence = parse_fasta(fasta_path)[0].sequence
        segments = np.stack([
            sequence.codes[i * READ_LENGTH:(i + 1) * READ_LENGTH]
            for i in range(N_SEGMENTS)
        ])
        nbytes = catalog.store(name, StoredReference.encode(segments),
                               directory / f"{name}.asmcap")
        print(f"ingested {fasta_path.name} -> {name}.asmcap "
              f"({len(sequence)} bases, {nbytes / 1024:.0f} KiB)")
    return catalog


def serve(catalog: ReferenceCatalog, fastq_path: Path) -> None:
    """Warm boot: map the FASTQ against both references, by mmap."""
    reads = parse_fastq(fastq_path)
    print(f"parsed {len(reads)} FASTQ reads")

    with MappingFrontend(None, MODEL, catalog=catalog) as frontend:
        sessions = {name: frontend.session(threshold=THRESHOLD, seed=2,
                                           reference=name)
                    for name in REFERENCES}
        for record in reads:
            for session in sessions.values():
                session.submit(record.sequence.codes)
        reports = {name: session.close()
                   for name, session in sessions.items()}
        assert frontend.encode_count() == 0, \
            "serving must never re-encode a stored reference"

    # Check provenance encoded in the FASTQ names: each read maps to
    # its origin segment in its own reference's session.
    correct = 0
    for index, record in enumerate(reads):
        origin_name = "_".join(record.name.split("_")[2:-1])
        origin_segment = int(record.name.split("seg")[-1])
        mapping = reports[origin_name].mappings[index]
        if origin_segment in mapping.matched_rows:
            correct += 1
    total = len(reads)
    print(f"{correct}/{total} reads mapped back to their origin "
          f"segment in their own reference's session")
    assert correct >= total * 0.7

    stats = catalog.stats()
    print(f"catalog: {stats.misses} opens, {stats.hits} hits, "
          f"{stats.resident_bytes / 1024:.0f} KiB resident")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        fasta_paths, fastq_path = prepare_files(directory)
        print(f"wrote {', '.join(p.name for p in fasta_paths.values())} "
              f"and {fastq_path.name}")

        catalog = ingest(fasta_paths, directory)
        serve(catalog, fastq_path)

        # A second boot serves entirely from the store files — the
        # encode phase above is never repeated.
        serve(catalog, fastq_path)
        catalog.close()
    print("OK: file-based two-reference workflow complete "
          "(one ingest, two warm boots).")


if __name__ == "__main__":
    main()
