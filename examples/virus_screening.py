#!/usr/bin/env python
"""Virus screening: multi-tenant fast testing off one reference catalog.

Section V-E notes the 64 Mb system "can entirely store some small virus
sequences (e.g., SARS-CoV-2)" and that ASMCap suits "task-intensive but
accuracy-insensitive scenarios such as fast testing".  A testing lab
screens against *panels* — more than one pathogen, served concurrently.
This example plays that scenario end to end through the reference
store:

* two synthetic virus genomes (a ~30 kb coronavirus-sized one and a
  ~13 kb influenza-sized one) are each encoded **once**, saved as
  on-disk stored references, and registered in a
  :class:`~repro.refstore.ReferenceCatalog`;
* one :class:`~repro.service.MappingFrontend` serves the catalog; the
  screen opens one session per pathogen (two tenants, one frontend,
  zero encode passes — the references arrive by ``mmap``);
* one sample read stream — coronavirus reads, influenza reads and
  unrelated background — is fed to *both* sessions; a read is called
  for whichever pathogen's session maps it.

The example reports per-pathogen sensitivity and cross-panel
specificity, then self-checks them.

Run:  python examples/virus_screening.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.cam.array import StoredReference
from repro.genome import ErrorModel, ReadSampler, generate_reference
from repro.refstore import ReferenceCatalog
from repro.service import MappingFrontend

READ_LENGTH = 256
CORONA_SEGMENTS = 120             # ~30 kb / 256 bases
FLU_SEGMENTS = 52                 # ~13 kb / 256 bases
N_READS_EACH = 30                 # per source in the sample stream
THRESHOLD = 10

# Short-read error profile: substitutions dominate and indels are
# single-base (burst_prob = 0), which matches Illumina-class data.
MODEL = ErrorModel(substitution=0.005, insertion=0.003, deletion=0.003,
                   burst_prob=0.0)


def build_panel(directory: Path) -> ReferenceCatalog:
    """Encode each pathogen once and register its store file."""
    catalog = ReferenceCatalog()
    for name, n_segments, seed in (("sars-cov-2", CORONA_SEGMENTS, 2020),
                                   ("influenza-a", FLU_SEGMENTS, 1918)):
        genome = generate_reference(n_segments * READ_LENGTH + 2048,
                                    seed=seed, with_repeats=False)
        segments = np.stack([
            genome.codes[i * READ_LENGTH:(i + 1) * READ_LENGTH]
            for i in range(n_segments)
        ])
        nbytes = catalog.store(name, StoredReference.encode(segments),
                               directory / f"{name}.asmcap")
        print(f"stored {name}: {n_segments} segments "
              f"({n_segments * READ_LENGTH / 1000:.1f} kb, "
              f"{nbytes / (1 << 20):.1f} MiB on disk)")
    return catalog


def sample_stream() -> "list[tuple[str, np.ndarray]]":
    """``(source, codes)`` reads: both pathogens plus background."""
    stream = []
    for source, n_segments, seed in (("sars-cov-2", CORONA_SEGMENTS, 2020),
                                     ("influenza-a", FLU_SEGMENTS, 1918)):
        genome = generate_reference(n_segments * READ_LENGTH + 2048,
                                    seed=seed, with_repeats=False)
        sampler = ReadSampler(genome, READ_LENGTH, MODEL, seed=7)
        rng = np.random.default_rng(seed + 1)
        for _ in range(N_READS_EACH):
            offset = int(rng.integers(0, n_segments)) * READ_LENGTH
            stream.append((source,
                           sampler.sample_at(offset).read.codes))
    background = generate_reference(200_000, seed=99)
    sampler = ReadSampler(background, READ_LENGTH, MODEL, seed=8)
    for record in sampler.sample_batch(N_READS_EACH):
        stream.append(("background", record.read.codes))
    return stream


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        catalog = build_panel(Path(tmp))
        stream = sample_stream()

        with MappingFrontend(None, MODEL, catalog=catalog) as frontend:
            # Two tenants, one frontend: each session names its
            # pathogen; the references arrive by mmap, never encode.
            sessions = {
                name: frontend.session(threshold=THRESHOLD, seed=11,
                                       reference=name)
                for name in ("sars-cov-2", "influenza-a")
            }
            for _, codes in stream:
                for session in sessions.values():
                    session.submit(codes)
            calls = {}
            for name, session in sessions.items():
                report = session.close()
                calls[name] = [len(m.matched_rows) > 0
                               for m in report.mappings]
            assert frontend.encode_count() == 0, \
                "catalog references must never re-encode"

        stats = catalog.stats()
        print(f"catalog: {stats.misses} opens, "
              f"{stats.resident_bytes / (1 << 20):.1f} MiB resident, "
              f"encode passes after boot: 0")
        catalog.close()

    # Score the screen per pathogen.
    sources = [source for source, _ in stream]
    for pathogen in ("sars-cov-2", "influenza-a"):
        own = [flag for source, flag in zip(sources, calls[pathogen], strict=True)
               if source == pathogen]
        other = [flag for source, flag in zip(sources, calls[pathogen], strict=True)
                 if source != pathogen]
        sensitivity = sum(own) / max(1, len(own))
        specificity = 1.0 - sum(other) / max(1, len(other))
        print(f"{pathogen:<12} sensitivity {sensitivity * 100:5.1f} %   "
              f"cross-panel specificity {specificity * 100:5.1f} %")
        assert sensitivity >= 0.9, \
            f"{pathogen} reads should screen positive in their session"
        assert specificity >= 0.9, \
            f"other reads should screen negative for {pathogen}"
    print("OK: two-pathogen screen served from one catalog, "
          "zero encode passes after ingest.")


if __name__ == "__main__":
    main()
