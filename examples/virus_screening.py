#!/usr/bin/env python
"""Virus screening: the paper's motivating fast-testing scenario.

Section V-E notes the 64 Mb system "can entirely store some small virus
sequences (e.g., SARS-CoV-2)" and that ASMCap suits "task-intensive but
accuracy-insensitive scenarios such as fast testing".  This example
plays that scenario end to end:

* a synthetic ~30 kb coronavirus-sized genome is stored across the
  accelerator's arrays;
* a stream of sequencer reads arrives — some from the virus (with
  sequencing errors), some from unrelated background DNA;
* each read is screened in one parallel search; reads matching any
  stored segment are flagged "positive".

The example reports screening sensitivity/specificity and the modelled
per-read latency and energy at full system scale.

Run:  python examples/virus_screening.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import ArchConfig, AsmCapAccelerator
from repro.core import MatcherConfig
from repro.experiments.fig8 import analytic_strategy_profile
from repro.genome import ErrorModel, ReadSampler, generate_reference

READ_LENGTH = 256
VIRUS_SEGMENTS = 120              # ~30 kb / 256 bases
N_VIRUS_READS = 40
N_BACKGROUND_READS = 40
THRESHOLD = 10


def main() -> None:
    # A coronavirus-sized genome (~30.7 kb), stored segment-per-row.
    virus = generate_reference(VIRUS_SEGMENTS * READ_LENGTH + 2048,
                               seed=2020, with_repeats=False)
    segments = np.stack([
        virus.codes[i * READ_LENGTH:(i + 1) * READ_LENGTH]
        for i in range(VIRUS_SEGMENTS)
    ])

    # A small functional accelerator slice (the cost model still uses
    # the full 512-array configuration).
    config = ArchConfig(array_rows=64, array_cols=READ_LENGTH, n_arrays=512)
    # Short-read error profile: substitutions dominate and indels are
    # single-base (burst_prob = 0), which matches Illumina-class data.
    # The indel rate keeps TASR's trigger bound Tl = ceil(gamma/eid * m)
    # = 9 below the screening threshold, so rotations are active; note
    # that NR = 2 rotations can only re-align net shifts the ED*
    # neighbour window can absorb (up to ~2 bases), so long indel
    # bursts would need a larger NR.
    model = ErrorModel(substitution=0.005, insertion=0.003, deletion=0.003,
                       burst_prob=0.0)
    accelerator = AsmCapAccelerator(config, error_model=model,
                                    matcher_config=MatcherConfig(),
                                    n_functional_arrays=2, seed=5)
    accelerator.load_reference(segments[: 2 * 64])
    print(f"loaded {accelerator.loaded_segments} virus segments "
          f"({accelerator.loaded_segments * READ_LENGTH / 1000:.1f} kb)")

    # Read stream: infected sample = virus reads + human-like background.
    sampler = ReadSampler(virus, READ_LENGTH, model, seed=7)
    virus_reads = [
        sampler.sample_at(
            int(np.random.default_rng(i).integers(0, 2 * 64))
            * READ_LENGTH)
        for i in range(N_VIRUS_READS)
    ]
    background = generate_reference(200_000, seed=99)
    background_sampler = ReadSampler(background, READ_LENGTH, model, seed=8)
    background_reads = background_sampler.sample_batch(N_BACKGROUND_READS)

    # Screen.
    true_positives = false_negatives = 0
    for record in virus_reads:
        result = accelerator.match_read(record.read.codes, THRESHOLD)
        if result.matches.any():
            true_positives += 1
        else:
            false_negatives += 1
    false_positives = true_negatives = 0
    for record in background_reads:
        result = accelerator.match_read(record.read.codes, THRESHOLD)
        if result.matches.any():
            false_positives += 1
        else:
            true_negatives += 1

    sensitivity = true_positives / max(1, true_positives + false_negatives)
    specificity = true_negatives / max(1, true_negatives + false_positives)
    print(f"screened {N_VIRUS_READS} virus + {N_BACKGROUND_READS} "
          f"background reads at T={THRESHOLD}")
    print(f"  sensitivity : {sensitivity * 100:.1f} %")
    print(f"  specificity : {specificity * 100:.1f} %")

    # Full-system per-read cost (analytic path, 512 arrays) with the
    # condition-A strategy statistics.
    estimate = accelerator.estimate_read_cost(
        analytic_strategy_profile("A")
    )
    reads_per_second = estimate.reads_per_second
    print(f"full-system model: {reads_per_second / 1e6:.0f} M reads/s, "
          f"{estimate.energy_joules * 1e9:.1f} nJ/read")

    assert sensitivity >= 0.9, "virus reads should screen positive"
    assert specificity >= 0.9, "background reads should screen negative"
    print("OK: fast-testing screen behaves as the paper describes.")


if __name__ == "__main__":
    main()
