#!/usr/bin/env python
"""Anatomy of the two correction strategies on hand-crafted reads.

Reconstructs the paper's Fig. 5 and Fig. 6 walk-throughs on real
hardware models:

* **Fig. 5 (HDAC)** — a read with several substitutions and no indels:
  ED* hides edits (false positive at small T), the Hamming search
  exposes them, and Algorithm 1 repairs the decision.
* **Fig. 6 (TASR)** — a read with a consecutive 2-base deletion:
  ED* explodes (false negative at moderate T), rotation re-aligns the
  read, and the Tl guard keeps rotations away from small thresholds
  where they would create false positives.

Run:  python examples/strategy_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro.cam import CamArray
from repro.core import AsmCapMatcher, MatcherConfig
from repro.distance import ed_star, edit_distance, hamming_distance
from repro.genome import DnaSequence, ErrorModel, generate_reference

READ_LENGTH = 64
N_SEGMENTS = 8


def build_array(segments: np.ndarray, seed: int = 0) -> CamArray:
    array = CamArray(rows=N_SEGMENTS, cols=READ_LENGTH, domain="charge",
                     noisy=False, seed=seed)
    array.store(segments)
    return array


def hdac_demo(segments: np.ndarray) -> None:
    print("=" * 64)
    print("HDAC demo (Fig. 5): substitution-dominant edits")
    segment = DnaSequence(segments[3])
    # Five substitutions, engineered to hide from the neighbour window.
    codes = segment.codes.copy()
    n_subs = 0
    for i in range(5, READ_LENGTH - 5, 12):
        original = int(codes[i])
        replacement = (original + 2) % 4
        codes[i] = replacement
        n_subs += 1
    read = DnaSequence(codes)

    true_ed = edit_distance(segment, read)
    hd = hamming_distance(segment, read)
    estimate = ed_star(segment, read)
    print(f"  injected {n_subs} substitutions: "
          f"ED={true_ed}, HD={hd}, ED*={estimate}")
    assert estimate < true_ed, "ED* hides substitutions"

    threshold = estimate  # between ED* and ED -> EDAM false positive
    model = ErrorModel(substitution=0.05)  # substitution-dominant
    plain = AsmCapMatcher(build_array(segments), model,
                          MatcherConfig.plain(), seed=2)
    full = AsmCapMatcher(build_array(segments), model,
                         MatcherConfig(enable_tasr=False), seed=2)
    fp = plain.match(read.codes, threshold).decisions[3]
    print(f"  T={threshold}: plain ED* decision = "
          f"{'match (FALSE POSITIVE)' if fp else 'mismatch'}")
    assert fp, "the hidden substitutions should fool plain ED*"

    # Algorithm 1 selects the Hamming decision with probability p, so
    # the correction is itself probabilistic — measure its rate.
    p = full.hdac_probability(threshold)
    trials = 400
    corrected = sum(
        int(not full.match(read.codes, threshold).decisions[3])
        for _ in range(trials)
    )
    rate = corrected / trials
    print(f"  HDAC corrects the FP in {rate * 100:.0f}% of searches "
          f"(expected p = {p * 100:.0f}%)")
    assert abs(rate - p) < 0.1, "correction rate should track p"


def tasr_demo(segments: np.ndarray) -> None:
    print("=" * 64)
    print("TASR demo (Fig. 6): consecutive deletions")
    segment = DnaSequence(segments[5])
    rng = np.random.default_rng(3)
    # Delete two consecutive bases mid-read; pad the tail.
    codes = np.concatenate([
        segment.codes[:30], segment.codes[32:],
        rng.integers(0, 4, 2).astype(np.uint8),
    ])
    read = DnaSequence(codes)

    true_ed = edit_distance(segment, read)
    estimate = ed_star(segment, read)
    print(f"  2-base deletion burst: ED={true_ed}, ED*={estimate}")
    assert estimate > true_ed, "consecutive indels inflate ED*"

    model = ErrorModel(insertion=0.005, deletion=0.005)  # indel-dominant
    matcher = AsmCapMatcher(build_array(segments), model,
                            MatcherConfig(enable_hdac=False), seed=4)
    lower_bound = matcher.tasr_lower_bound()
    print(f"  TASR lower bound Tl = {lower_bound}")

    # Below Tl: no rotations (FP protection), decision follows plain ED*.
    below = matcher.match(read.codes, max(0, lower_bound - 1))
    # At/above Tl: rotations fire and recover the alignment.
    above = matcher.match(read.codes, lower_bound)
    print(f"  T={lower_bound - 1} (< Tl): rotations "
          f"{'fired' if below.tasr and below.tasr.triggered else 'suppressed'},"
          f" decision = {'match' if below.decisions[5] else 'mismatch'}")
    print(f"  T={lower_bound} (>= Tl): rotations "
          f"{'fired' if above.tasr and above.tasr.triggered else 'suppressed'},"
          f" {above.n_searches} searches,"
          f" decision = {'match' if above.decisions[5] else 'mismatch'}")
    assert above.tasr is not None and above.tasr.triggered
    assert above.decisions[5], "rotation should recover the alignment"


def main() -> None:
    reference = generate_reference(N_SEGMENTS * READ_LENGTH + 256, seed=11,
                                   with_repeats=False)
    segments = np.stack([
        reference.codes[i * READ_LENGTH:(i + 1) * READ_LENGTH]
        for i in range(N_SEGMENTS)
    ])
    hdac_demo(segments)
    tasr_demo(segments)
    print("=" * 64)
    print("OK: both corrections behave exactly as Figs. 5-6 describe.")


if __name__ == "__main__":
    main()
