#!/usr/bin/env python
"""Quickstart: every execution path of the ASMCap reproduction.

Walks the public API end to end — one workload through the scalar,
batched, sharded, sweep and streaming-service engines — asserting the
determinism contracts between them along the way.

The ``# [readme:<name>]`` markers delimit the code blocks the README's
quickstart embeds verbatim: ``tools/check_docs.py`` executes the
README blocks *and* diffs them against these sections, so the front
door and this example cannot drift apart.  Edit here, then mirror the
block into README.md (the CI ``docs-smoke`` job fails on any
mismatch).

Run:  python examples/quickstart.py
"""

from __future__ import annotations


def main() -> None:
    # [readme:setup]
    import numpy as np

    from repro.cam import CamArray
    from repro.core import AsmCapMatcher, MatcherConfig
    from repro.genome import build_dataset

    # Condition A of the paper (1 % substitutions, 0.05 % indels):
    # a synthetic reference cut into 64 stored segments, plus 24
    # error-injected reads sampled from it.
    dataset = build_dataset("A", n_reads=24, read_length=128,
                            n_segments=64, seed=7)
    reads = np.stack([record.read.codes for record in dataset.reads])

    # A charge-domain ML-CAM array holding the reference, and the full
    # ASMCap matching flow (ED* base search + HDAC + TASR) over it.
    array = CamArray(rows=64, cols=128, domain="charge", seed=1)
    array.store(dataset.segments)
    matcher = AsmCapMatcher(array, dataset.model, MatcherConfig(), seed=1)
    # [/readme:setup]

    # [readme:scalar]
    # Scalar path: one read, one match() call.  query_key pins the
    # keyed noise streams, making this row reproducible on every
    # other execution path.
    outcome = matcher.match(reads[0], threshold=4, query_key=0)
    matched_rows = [int(i) for i in outcome.decisions.nonzero()[0]]
    print(f"scalar : read 0 matched rows {matched_rows} "
          f"({outcome.n_searches} searches, "
          f"{outcome.energy_joules * 1e12:.1f} pJ)")
    # [/readme:scalar]
    assert matched_rows, "read 0 should map somewhere"

    # [readme:batched]
    # Batched path: the whole block in vectorised passes.  Row q is
    # bit-identical to match(reads[q], threshold, query_key=q).
    from repro.core import ReadMappingPipeline

    pipeline = ReadMappingPipeline(matcher)
    report = pipeline.run_batched(reads, threshold=4)
    print(f"batched: {report.n_reads} reads, "
          f"{report.mapped_fraction:.2f} mapped, "
          f"{report.total_energy_joules * 1e9:.2f} nJ total")
    assert report.mappings[0].matched_rows == tuple(matched_rows)
    # [/readme:batched]

    # [readme:sharded]
    # Sharded path: the reference partitioned across CAM-array shards
    # behind a modelled global buffer + H-tree, searched by concurrent
    # workers (n_shards=None autotunes to the machine).
    from repro.core import ShardedReadMappingPipeline

    sharded = ShardedReadMappingPipeline(dataset.segments, dataset.model,
                                         n_shards=4, seed=1)
    sharded_report = sharded.run(reads, threshold=4)
    print(f"sharded: {sharded.n_shards} shards, "
          f"{sharded_report.mapped_fraction:.2f} mapped")
    # [/readme:sharded]
    assert sharded_report.n_reads == report.n_reads

    # [readme:engine]
    # Execution engines: the sharded fan-out defaults to threads, but
    # engine="process" runs it on long-lived spawned workers that
    # attach the encoded reference zero-copy through POSIX shared
    # memory (explicit knob > REPRO_EXECUTION_ENGINE env var >
    # per-machine autotune).  Engines are bit-identical by contract —
    # swapping one changes scheduling and nothing else.
    with ShardedReadMappingPipeline(
            dataset.segments, dataset.model, n_shards=4, seed=1,
            engine="process", max_workers=2) as process_sharded:
        process_report = process_sharded.run(reads, threshold=4)
    assert (process_report.total_energy_joules
            == sharded_report.total_energy_joules)
    print(f"engine : process == thread bit-for-bit over "
          f"{process_sharded.n_shards} shards")
    # [/readme:engine]

    # [readme:sweep]
    # Sweep path: a whole threshold sweep in ONE count+noise pass per
    # search — slice t is bit-identical to the batched path at
    # thresholds[t] (this is what makes Fig. 7 curves cheap).
    thresholds = np.arange(2, 9)
    sweep = matcher.match_sweep(reads, thresholds)
    at_4 = sweep.at_threshold(4)
    assert np.array_equal(
        np.flatnonzero(at_4[0]), np.asarray(matched_rows))
    print(f"sweep  : {thresholds.size} thresholds in "
          f"{int(sweep.n_searches.max())} passes/read worst-case")
    # [/readme:sweep]

    # [readme:service]
    # Streaming service: reads arrive incrementally, are coalesced
    # into autotuned micro-batches, and the cost ledger stays bounded
    # via compaction — while the final report is bit-identical to the
    # one-shot batched run above, for any micro-batch boundaries.
    from repro.service import StreamingMappingService

    service = StreamingMappingService(dataset.segments, dataset.model,
                                      threshold=4, micro_batch=8,
                                      compaction=4, seed=1)
    service.submit_many(iter(reads))
    streamed = service.close()
    stats = service.stats()
    assert streamed.total_energy_joules == report.total_energy_joules
    print(f"service: {stats.reads_dispatched} reads in "
          f"{stats.batches_dispatched} micro-batches, "
          f"{stats.compactions} ledger compactions, "
          f"pass counts {stats.pass_counts}")
    # [/readme:service]

    # [readme:frontend]
    # Multi-session frontend: the reference is encoded and stored
    # ONCE (a shared StoredReference) and many concurrent sessions
    # multiplex over it through one fair, backpressured worker pool.
    # Each session keeps its own seed/threshold/ledgers, so it is
    # bit-identical to a standalone service with the same settings.
    from repro.service import MappingFrontend

    with MappingFrontend(dataset.segments, dataset.model) as frontend:
        alice = frontend.session(threshold=4, seed=1, micro_batch=8,
                                 compaction=4)
        bob = frontend.session(threshold=5, seed=2)
        alice.submit_many(iter(reads))
        bob.submit_many(iter(reads))
        alice_report, bob_report = alice.close(), bob.close()
    # alice used the same seed/threshold/micro-batch as the service
    # above -> her session reproduces it bit for bit...
    assert alice_report.total_energy_joules == streamed.total_energy_joules
    # ...and the reference was encoded once for both sessions.
    print(f"frontend: {frontend.encode_count()} encode for "
          f"{len(frontend.sessions)} sessions; alice mapped "
          f"{alice_report.n_mapped}, bob mapped {bob_report.n_mapped}")
    # [/readme:frontend]

    # [readme:catalog]
    # Reference store: encode once, save the encoded arrays to disk,
    # and boot every later run straight off the file by mmap — zero
    # copy, zero encode passes.  A ReferenceCatalog maps names to
    # store files (lazy opens, byte-budgeted LRU eviction that never
    # unmaps a reference a session is using); a catalog frontend
    # names the reference per session instead of taking segments.
    import shutil
    import tempfile
    from pathlib import Path

    from repro.cam import StoredReference
    from repro.refstore import ReferenceCatalog

    store_dir = Path(tempfile.mkdtemp())
    catalog = ReferenceCatalog()
    catalog.store("chr1", StoredReference.encode(dataset.segments),
                  store_dir / "chr1.asmcap")
    with MappingFrontend(None, dataset.model, catalog=catalog) as served:
        warm = served.session(threshold=4, seed=1, micro_batch=8,
                              compaction=4, reference="chr1")
        warm.submit_many(iter(reads))
        warm_report = warm.close()
        encodes = served.encode_count()
    # Same seed/threshold/micro-batch as the streaming service above:
    # the mmap-served session reproduces it bit for bit, re-encoding
    # nothing.
    assert warm_report.total_energy_joules == streamed.total_energy_joules
    assert encodes == 0
    print(f"catalog: warm boot mapped {warm_report.n_mapped} reads "
          f"with {encodes} encode passes, "
          f"{catalog.stats().resident_bytes / 1024:.0f} KiB mapped")
    catalog.close()
    shutil.rmtree(store_dir)
    # [/readme:catalog]

    # [readme:backend]
    # Kernel backends: the mismatch-count primitive behind every path
    # is pluggable (explicit backend= knob > the REPRO_KERNEL_BACKEND
    # env var > per-machine autotune).  Backends are bit-identical by
    # contract — swapping one changes speed and nothing else.
    from repro.kernels import available_backends

    packed_array = CamArray(rows=64, cols=128, domain="charge", seed=1,
                            backend="bitpacked")
    packed_array.store(dataset.segments)
    packed_matcher = AsmCapMatcher(packed_array, dataset.model,
                                   MatcherConfig(), seed=1)
    packed = packed_matcher.match(reads[0], threshold=4, query_key=0)
    assert np.array_equal(packed.decisions, outcome.decisions)
    assert packed.energy_joules == outcome.energy_joules
    print(f"backend: {array.backend} == bitpacked bit-for-bit "
          f"(registered: {', '.join(available_backends())})")
    # [/readme:backend]

    print("OK: scalar, batched, sharded, sweep, streaming, "
          "multi-session, catalog-served and every kernel backend "
          "agree.")


if __name__ == "__main__":
    main()
