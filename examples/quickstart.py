#!/usr/bin/env python
"""Quickstart: match one erroneous read against a reference with ASMCap.

Walks the whole public API in ~60 lines:

1. synthesise a reference and store its segments in a CAM array;
2. sample a read and inject Condition-A errors;
3. run the full ASMCap matcher (ED* + HDAC + TASR);
4. inspect the decision, the analog matchline voltages, and the cost.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.cam import CamArray
from repro.core import AsmCapMatcher, MatcherConfig
from repro.distance import edit_distance
from repro.genome import ErrorModel, ReadSampler, generate_reference

READ_LENGTH = 256
N_SEGMENTS = 64
THRESHOLD = 4


def main() -> None:
    # 1. Reference: 64 segments of 256 bases, stored one per CAM row.
    reference = generate_reference(N_SEGMENTS * READ_LENGTH + 1024, seed=7)
    segments = [reference.window(i * READ_LENGTH, READ_LENGTH)
                for i in range(N_SEGMENTS)]
    array = CamArray(rows=N_SEGMENTS, cols=READ_LENGTH, domain="charge",
                     seed=1)
    array.store([s.codes for s in segments])
    print(f"stored {N_SEGMENTS} segments of {READ_LENGTH} bases "
          f"({array.rows}x{array.cols} charge-domain array)")

    # 2. A read from segment 10, with Condition-A errors injected.
    model = ErrorModel.condition_a()
    sampler = ReadSampler(reference, READ_LENGTH, model, seed=2)
    record = sampler.sample_at(10 * READ_LENGTH)
    true_distance = edit_distance(segments[10], record.read)
    print(f"read sampled from segment 10 with {len(record.plan)} injected "
          f"edits (true edit distance {true_distance})")

    # 3. Full ASMCap matching flow.
    matcher = AsmCapMatcher(array, model, MatcherConfig(), seed=3)
    outcome = matcher.match(record.read.codes, THRESHOLD)

    # 4. Results.
    matched_rows = [int(i) for i in outcome.decisions.nonzero()[0]]
    print(f"threshold T={THRESHOLD}: matched rows {matched_rows}")
    print(f"  searches issued : {outcome.n_searches} "
          f"(HDAC p={outcome.hdac_probability:.3f}, "
          f"TASR Tl={outcome.tasr_lower_bound})")
    print(f"  array energy    : {outcome.energy_joules * 1e12:.1f} pJ")
    print(f"  latency         : {outcome.latency_ns:.1f} ns")

    assert 10 in matched_rows, "the origin segment should match"
    print("OK: the read mapped back to its origin segment.")


if __name__ == "__main__":
    main()
