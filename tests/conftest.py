"""Shared fixtures for the test suite.

Slow-lane split: tests marked ``@pytest.mark.slow`` (large sharded
stress runs and similar) are skipped unless ``--run-slow`` is given, so
the default CI gate stays fast while the nightly lane can run
``pytest --run-slow`` for full coverage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.genome.datasets import Dataset, build_dataset
from repro.genome.edits import ErrorModel
from repro.genome.sequence import DnaSequence


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--run-slow", action="store_true", default=False,
        help="also run tests marked slow (nightly/stress lane)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "slow: long-running stress test (needs --run-slow)"
    )


def pytest_collection_modifyitems(config: pytest.Config,
                                  items: "list[pytest.Item]") -> None:
    if config.getoption("--run-slow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test; pass --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset_a() -> Dataset:
    """A small Condition-A dataset shared across read-only tests."""
    return build_dataset("A", n_reads=24, read_length=128, n_segments=32,
                         seed=7)


@pytest.fixture(scope="session")
def small_dataset_b() -> Dataset:
    """A small Condition-B dataset shared across read-only tests."""
    return build_dataset("B", n_reads=24, read_length=128, n_segments=32,
                         seed=8)


@pytest.fixture
def sequence_pair() -> tuple[DnaSequence, DnaSequence]:
    """The paper's Fig. 2 example pair (S2 stored, S1 read)."""
    return DnaSequence("ATCTGCGA"), DnaSequence("AGCTGAGA")


@pytest.fixture
def noiseless_model() -> ErrorModel:
    """An error model that injects nothing."""
    return ErrorModel()


def random_sequence(rng: np.random.Generator, length: int) -> DnaSequence:
    """Helper used by many tests: uniform random sequence."""
    return DnaSequence(rng.integers(0, 4, length).astype(np.uint8))
