"""Smoke tests: the example scripts must run and self-check.

Each example asserts its own expected behaviour internally; these tests
execute the faster ones end-to-end in a subprocess (the slower system
examples are exercised by the benchmarks and the experiments CLI).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = (
    "quickstart.py",
    "strategy_anatomy.py",
    "fasta_workflow.py",
)


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert "OK" in result.stdout


def test_all_examples_present():
    """The five documented examples (plus fragmentation) exist."""
    expected = {
        "quickstart.py", "virus_screening.py", "read_mapping.py",
        "strategy_anatomy.py", "fasta_workflow.py",
        "long_read_fragmentation.py",
    }
    found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= found
