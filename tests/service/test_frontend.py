"""Multi-session frontend tests: isolation, fairness, backpressure.

The frontend's session-isolation/determinism contract: any session of
a concurrent N-session :class:`~repro.service.MappingFrontend` —
whatever the other sessions do, however the pool schedules, wherever
micro-batch boundaries fall — produces per-read decisions, costs, and
an aggregate report **bit-identical** to a standalone
:class:`~repro.service.StreamingMappingService` with the same seed and
reads.  Plus the service-layer mechanics the tentpole adds: the
reference is encoded once (not per session), scheduling is fair
round-robin, the backlog is bounded with block/error backpressure, and
the lifecycle edges (submit-after-close, flush idempotency) behave.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import MappingReport
from repro.cost.events import ReferenceLoad
from repro.errors import CamConfigError, ServiceError
from repro.service import (
    MappingFrontend,
    StreamingMappingService,
)

# Threaded/process stress paths: a deadlock must fail loud in CI,
# not eat the job timeout (inert without the pytest-timeout plugin).
pytestmark = pytest.mark.timeout(120)

THRESHOLD = 3


def _reads(dataset) -> np.ndarray:
    return np.stack([record.read.codes for record in dataset.reads])


def _assert_reports_identical(ours: MappingReport,
                              theirs: MappingReport) -> None:
    assert ours.n_reads == theirs.n_reads
    assert ours.n_mapped == theirs.n_mapped
    assert ours.n_unique == theirs.n_unique
    assert ours.n_searches == theirs.n_searches
    assert ours.total_energy_joules == theirs.total_energy_joules
    assert ours.total_latency_ns == theirs.total_latency_ns
    for a, b in zip(ours.mappings, theirs.mappings, strict=True):
        assert a.read_index == b.read_index
        assert a.matched_rows == b.matched_rows
        assert a.outcome.energy_joules == b.outcome.energy_joules
        assert a.outcome.latency_ns == b.outcome.latency_ns
        assert a.outcome.n_searches == b.outcome.n_searches


def _standalone(dataset, reads, *, engine, seed, micro_batch, threshold,
                compaction) -> MappingReport:
    service = StreamingMappingService(
        dataset.segments, dataset.model, threshold=threshold,
        engine=engine, micro_batch=micro_batch, seed=seed,
        compaction=compaction,
        n_shards=(4 if engine == "sharded" else None),
        chunk_size=(7 if engine == "sharded" else None),
    )
    service.submit_many(reads)
    return service.close()


def _frontend(dataset, *, engine, **kwargs) -> MappingFrontend:
    if engine == "sharded":
        kwargs.setdefault("n_shards", 4)
        kwargs.setdefault("chunk_size", 7)
    return MappingFrontend(dataset.segments, dataset.model,
                           engine=engine, **kwargs)


def _wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("timed out waiting for condition")
        time.sleep(0.005)


def _gate_session(session) -> threading.Event:
    """Make the session's engine dispatch wait on the returned event
    (deterministic backlog control for backpressure/fairness tests)."""
    gate = threading.Event()
    pipeline = session.pipeline
    original = pipeline.run_batched

    def gated(*args, **kwargs):
        assert gate.wait(timeout=30.0), "gate never released"
        return original(*args, **kwargs)

    pipeline.run_batched = gated
    return gate


class TestSessionBitIdentity:
    """Concurrent sessions == standalone services, bit for bit."""

    @pytest.mark.parametrize("engine", ["batched", "sharded"])
    @pytest.mark.parametrize("compaction", [None, 4])
    def test_threaded_sessions_match_standalone(self, small_dataset_a,
                                                engine, compaction):
        """N client threads feed N sessions with randomized submission
        chunks, flushes and micro-batch sizes; every session must
        reproduce its standalone twin exactly."""
        reads = _reads(small_dataset_a)
        rng = np.random.default_rng(42)
        profiles = []
        for index in range(3):
            profiles.append({
                "seed": int(rng.integers(0, 1000)),
                "micro_batch": int(rng.integers(1, 9)),
                "threshold": THRESHOLD + index,
                "chunk_seed": int(rng.integers(0, 2**31 - 1)),
            })
        with _frontend(small_dataset_a, engine=engine,
                       pool_workers=3) as frontend:
            sessions = [
                frontend.session(threshold=p["threshold"], seed=p["seed"],
                                 micro_batch=p["micro_batch"],
                                 compaction=compaction)
                for p in profiles
            ]
            errors = []

            def feed(session, chunk_seed):
                try:
                    feed_rng = np.random.default_rng(chunk_seed)
                    i = 0
                    while i < reads.shape[0]:
                        step = int(feed_rng.integers(1, 7))
                        session.submit_many(reads[i:i + step])
                        if feed_rng.random() < 0.3:
                            session.flush()
                        i += step
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=feed,
                                 args=(session, p["chunk_seed"]))
                for session, p in zip(sessions, profiles, strict=True)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            results = [session.close() for session in sessions]
        for result, p in zip(results, profiles, strict=True):
            reference = _standalone(
                small_dataset_a, reads, engine=engine, seed=p["seed"],
                micro_batch=p["micro_batch"], threshold=p["threshold"],
                compaction=compaction,
            )
            _assert_reports_identical(result, reference)

    def test_single_thread_interleaved_sessions(self, small_dataset_a):
        """Interleaving submissions across sessions from one thread
        does not leak state between them."""
        reads = _reads(small_dataset_a)
        with _frontend(small_dataset_a, engine="batched") as frontend:
            a = frontend.session(threshold=THRESHOLD, seed=0,
                                 micro_batch=4)
            b = frontend.session(threshold=THRESHOLD, seed=0,
                                 micro_batch=4)
            for read in reads:
                a.submit(read)
                b.submit(read)
            ra, rb = a.close(), b.close()
        # Same seed + same reads -> the two sessions agree exactly...
        _assert_reports_identical(ra, rb)
        # ...and both equal the standalone service.
        reference = _standalone(small_dataset_a, reads, engine="batched",
                                seed=0, micro_batch=4,
                                threshold=THRESHOLD, compaction=64)
        _assert_reports_identical(ra, reference)

    def test_session_stats_match_standalone(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        with _frontend(small_dataset_a, engine="batched") as frontend:
            session = frontend.session(threshold=THRESHOLD, seed=0,
                                       micro_batch=6, compaction=2)
            session.submit_many(reads)
            session.close()
            snap = session.stats()
            merged = session.merged_stats()
        standalone = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD, micro_batch=6, seed=0, compaction=2,
        )
        standalone.submit_many(reads)
        standalone.close()
        assert merged == standalone.merged_stats()
        their_snap = standalone.stats()
        assert snap.reads_dispatched == their_snap.reads_dispatched
        assert snap.n_searches == their_snap.n_searches
        assert snap.pass_counts == their_snap.pass_counts
        assert snap.total_energy_joules == their_snap.total_energy_joules
        assert snap.compactions > 0


class TestSharedEncoding:
    @pytest.mark.parametrize("engine,n_refs", [("batched", 1),
                                               ("sharded", 4)])
    def test_reference_encoded_once_across_sessions(self, small_dataset_a,
                                                    engine, n_refs):
        reads = _reads(small_dataset_a)
        with _frontend(small_dataset_a, engine=engine) as frontend:
            assert frontend.n_shards == n_refs
            assert frontend.encode_count() == n_refs
            sessions = [frontend.session(threshold=THRESHOLD, seed=s)
                        for s in range(4)]
            for session in sessions:
                session.submit_many(reads)
                session.close()
            # Four sessions served; still exactly one encode per shard.
            assert frontend.encode_count() == n_refs
            # The reference loads live in the frontend ledger, once —
            # never in the per-session ledgers.
            assert len(frontend.ledger.of_type(ReferenceLoad)) == n_refs
            for session in sessions:
                for ledger in session.ledgers():
                    assert not ledger.of_type(ReferenceLoad)

    def test_sessions_borrow_the_same_reference_objects(self,
                                                        small_dataset_a):
        with _frontend(small_dataset_a, engine="batched") as frontend:
            a = frontend.session(threshold=THRESHOLD, seed=0)
            b = frontend.session(threshold=THRESHOLD, seed=1)
            array_a = a.pipeline.matcher.array
            array_b = b.pipeline.matcher.array
            assert array_a.stored is frontend.stored_references[0]
            assert array_b.stored is frontend.stored_references[0]
            assert array_a is not array_b
            assert array_a.ledger is not array_b.ledger

    def test_sharded_sessions_share_one_executor(self, small_dataset_a):
        with _frontend(small_dataset_a, engine="sharded",
                       shard_engine="thread") as frontend:
            a = frontend.session(threshold=THRESHOLD, seed=0)
            b = frontend.session(threshold=THRESHOLD, seed=1)
            assert not a.pipeline.owns_executor
            assert not b.pipeline.owns_executor
            assert (a.pipeline._external_executor
                    is b.pipeline._external_executor
                    is frontend._shard_executor)


class TestLifecycle:
    def test_submit_after_session_close_raises(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        with _frontend(small_dataset_a, engine="batched") as frontend:
            session = frontend.session(threshold=THRESHOLD, seed=0,
                                       micro_batch=4)
            session.submit_many(reads[:5])
            first = session.close()
            assert session.closed
            _assert_reports_identical(session.close(), first)  # idempotent
            with pytest.raises(ServiceError):
                session.submit(reads[0])
            with pytest.raises(ServiceError):
                session.flush()
            with pytest.raises(ServiceError):
                session.drain()
            # Other sessions are unaffected.
            other = frontend.session(threshold=THRESHOLD, seed=1,
                                     micro_batch=4)
            other.submit_many(reads[:5])
            assert other.close().n_reads == 5

    def test_flush_is_idempotent(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        with _frontend(small_dataset_a, engine="batched") as frontend:
            session = frontend.session(threshold=THRESHOLD, seed=0,
                                       micro_batch=16)
            session.submit_many(reads[:5])
            assert session.flush() == 5
            assert session.flush() == 0  # nothing buffered: a no-op
            assert session.flush() == 0
            report = session.drain()
            assert report.n_reads == 5
            _assert_reports_identical(session.drain(), report)

    def test_drain_keeps_session_open(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        with _frontend(small_dataset_a, engine="batched") as frontend:
            session = frontend.session(threshold=THRESHOLD, seed=0,
                                       micro_batch=4)
            session.submit_many(reads[:3])
            assert session.drain().n_reads == 3
            session.submit_many(reads[3:6])
            assert session.close().n_reads == 6

    def test_frontend_close_is_idempotent_and_final(self,
                                                    small_dataset_a):
        reads = _reads(small_dataset_a)
        frontend = _frontend(small_dataset_a, engine="batched")
        session = frontend.session(threshold=THRESHOLD, seed=0,
                                   micro_batch=4)
        session.submit_many(reads[:6])
        frontend.close()
        assert frontend.closed
        frontend.close()  # idempotent
        # Close drained the in-flight work before stopping workers.
        assert session.closed
        assert session.report.n_reads == 6
        with pytest.raises(ServiceError):
            frontend.session(threshold=THRESHOLD)
        with pytest.raises(ServiceError):
            session.submit(reads[0])

    def test_close_race_raises_instead_of_hanging(self, small_dataset_a):
        """Regression: a session that slipped past frontend.close()'s
        drain sweep (opened concurrently) used to block forever in
        close()/drain() waiting on workers that had already exited; it
        must raise ServiceError when it still holds in-flight reads,
        and close cleanly when it does not."""
        reads = _reads(small_dataset_a)
        frontend = _frontend(small_dataset_a, engine="batched")
        undrained = frontend.session(threshold=THRESHOLD, seed=0,
                                     micro_batch=16)
        idle = frontend.session(threshold=THRESHOLD, seed=1,
                                micro_batch=16)
        undrained.submit_many(reads[:3])  # buffered, below micro-batch
        # Simulate the race: stop the workers exactly as close() does,
        # but without the drain sweep that normally precedes it.
        with frontend._lock:
            frontend._running = False
            frontend._work.notify_all()
            frontend._backlog_free.notify_all()
            for session in frontend._sessions:
                session._idle.notify_all()
        for thread in frontend._threads:
            thread.join()
        with pytest.raises(ServiceError):
            undrained.close()
        assert idle.close().n_reads == 0  # no work in flight: clean

    def test_submits_racing_close_raise_instead_of_stalling_it(
            self, small_dataset_a):
        """Regression: close() drains before marking the session
        closed; a feeder racing it must be refused (ServiceError) so
        it cannot refill the queue and keep the drain from ever
        terminating."""
        reads = _reads(small_dataset_a)
        with _frontend(small_dataset_a, engine="batched",
                       pool_workers=1) as frontend:
            session = frontend.session(threshold=THRESHOLD, seed=0,
                                       micro_batch=1)
            gate = _gate_session(session)
            session.submit(reads[0])
            _wait_until(lambda: session._executing)
            closer = threading.Thread(target=session.close)
            closer.start()
            _wait_until(lambda: session._closing)
            with pytest.raises(ServiceError):
                session.submit(reads[1])  # close in progress: refused
            gate.set()
            closer.join(timeout=10.0)
            assert not closer.is_alive()
            assert session.closed
            assert session.report.n_reads == 1

    def test_autotuned_backlog_scales_with_pool_workers_override(
            self, small_dataset_a):
        with _frontend(small_dataset_a, engine="batched",
                       pool_workers=16) as frontend:
            assert frontend.max_backlog == 32

    def test_session_reports_are_safe_to_mutate(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        with _frontend(small_dataset_a, engine="batched") as frontend:
            session = frontend.session(threshold=THRESHOLD, seed=0,
                                       micro_batch=4)
            session.submit_many(reads)
            drained = session.drain()
            drained.mappings.clear()
            drained.n_reads = -1
            final = session.close()
            assert final.n_reads == reads.shape[0]
            assert len(final.mappings) == reads.shape[0]

    def test_rejects_bad_reads_and_knobs(self, small_dataset_a):
        with _frontend(small_dataset_a, engine="batched") as frontend:
            session = frontend.session(threshold=THRESHOLD, seed=0)
            with pytest.raises(CamConfigError):
                session.submit(np.zeros(3, dtype=np.uint8))
            with pytest.raises(CamConfigError):
                frontend.session(threshold=THRESHOLD, micro_batch=0)
            with pytest.raises(CamConfigError):
                frontend.session(threshold=THRESHOLD, compaction=0)
            with pytest.raises(CamConfigError):
                frontend.session(threshold=THRESHOLD, backend="no-such")
        with pytest.raises(ServiceError):
            MappingFrontend(small_dataset_a.segments,
                            small_dataset_a.model, engine="warp")
        with pytest.raises(ServiceError):
            MappingFrontend(small_dataset_a.segments,
                            small_dataset_a.model, backpressure="shrug")
        with pytest.raises(ServiceError):
            MappingFrontend(small_dataset_a.segments,
                            small_dataset_a.model, pool_workers=0)

    def test_failed_dispatch_surfaces_on_the_session(self,
                                                     small_dataset_a):
        """An engine failure poisons only its own session: waiters get
        a ServiceError instead of hanging, others keep working."""
        reads = _reads(small_dataset_a)
        with _frontend(small_dataset_a, engine="batched") as frontend:
            broken = frontend.session(threshold=THRESHOLD, seed=0,
                                      micro_batch=2)
            healthy = frontend.session(threshold=THRESHOLD, seed=1,
                                       micro_batch=4)

            def explode(*args, **kwargs):
                raise RuntimeError("array fire")

            broken.pipeline.run_batched = explode
            broken.submit_many(reads[:2])  # queues a batch that fails
            with pytest.raises(ServiceError):
                broken.drain()
            with pytest.raises(ServiceError):
                broken.submit(reads[0])
            healthy.submit_many(reads)
            assert healthy.close().n_reads == reads.shape[0]


class TestBackpressure:
    def test_error_policy_raises_and_recovers(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        with _frontend(small_dataset_a, engine="batched", pool_workers=1,
                       max_backlog=2, backpressure="error") as frontend:
            session = frontend.session(threshold=THRESHOLD, seed=0,
                                       micro_batch=1)
            gate = _gate_session(session)
            session.submit(reads[0])  # picked up, blocked at the gate
            _wait_until(lambda: session._executing)
            session.submit(reads[1])  # backlog 1
            session.submit(reads[2])  # backlog 2 == max_backlog
            with pytest.raises(ServiceError):
                session.submit(reads[3])  # full -> error policy raises
            # The rejected submit is all-or-nothing: the read was NOT
            # accepted, so retrying it cannot duplicate it.  (stats()
            # would synchronise with the gated dispatch — read the
            # counter directly.)
            with frontend._lock:
                assert session._n_submitted == 3
            gate.set()
            session.drain()      # relieves the pressure...
            session.submit(reads[3])  # ...and the retry goes through
            report = session.close()
            assert report.n_reads == 4
            _assert_reports_identical(
                report,
                _standalone(small_dataset_a, reads[:4], engine="batched",
                            seed=0, micro_batch=1, threshold=THRESHOLD,
                            compaction=64),
            )

    def test_block_policy_blocks_until_a_worker_frees_a_slot(
            self, small_dataset_a):
        reads = _reads(small_dataset_a)
        with _frontend(small_dataset_a, engine="batched", pool_workers=1,
                       max_backlog=2, backpressure="block") as frontend:
            session = frontend.session(threshold=THRESHOLD, seed=0,
                                       micro_batch=1)
            gate = _gate_session(session)
            session.submit(reads[0])
            _wait_until(lambda: session._executing)
            session.submit(reads[1])
            session.submit(reads[2])

            feeder = threading.Thread(target=session.submit,
                                      args=(reads[3],))
            feeder.start()
            time.sleep(0.1)
            assert feeder.is_alive()  # blocked on the full backlog
            gate.set()
            feeder.join(timeout=10.0)
            assert not feeder.is_alive()
            assert session.close().n_reads == 4


class TestFairScheduling:
    def test_round_robin_interleaves_sessions(self, small_dataset_a):
        """With one worker, a heavy session's queue must not starve a
        light one: completions interleave round-robin."""
        reads = _reads(small_dataset_a)
        order: "list[str]" = []
        log_lock = threading.Lock()
        with _frontend(small_dataset_a, engine="batched", pool_workers=1,
                       max_backlog=16) as frontend:
            heavy = frontend.session(threshold=THRESHOLD, seed=0,
                                     micro_batch=1)
            light = frontend.session(threshold=THRESHOLD, seed=1,
                                     micro_batch=1)
            gate = threading.Event()

            def wrap(session, label):
                original = session.pipeline.run_batched

                def logged(*args, **kwargs):
                    assert gate.wait(timeout=30.0)
                    with log_lock:
                        order.append(label)
                    return original(*args, **kwargs)

                session.pipeline.run_batched = logged

            wrap(heavy, "heavy")
            wrap(light, "light")
            heavy.submit_many(reads[:6])   # 6 queued micro-batches
            light.submit_many(reads[:2])   # 2 queued micro-batches
            gate.set()
            heavy.close()
            light.close()
        # The light session's two batches run interleaved with the
        # heavy queue (round-robin), not after it.
        assert order.count("light") == 2 and order.count("heavy") == 6
        assert "light" in order[:3]
        assert order.index("light", order.index("light") + 1) <= 4
