"""Streaming-service tests: determinism, lifecycle, observability.

The service's determinism contract: a streamed session — any
micro-batch boundaries, any mix of ``submit`` / ``submit_many`` /
``flush`` calls — is **bit-identical** to one one-shot
``run_batched`` (or sharded ``run``) execution over the same reads
with the same seeds: per-read decisions, per-read costs, and the
aggregate report.  Ledger compaction must not perturb any of it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.autotune import plan_microbatch
from repro.cam.array import CamArray
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.core.pipeline import (
    MappingReport,
    ReadMappingPipeline,
    ShardedReadMappingPipeline,
)
from repro.errors import CamConfigError, ServiceError
from repro.service import (
    DEFAULT_SERVICE_COMPACTION,
    StreamingMappingService,
    stream_mapped,
)

THRESHOLD = 3


def _reads(dataset) -> np.ndarray:
    return np.stack([record.read.codes for record in dataset.reads])


def _one_shot_batched(dataset, reads, seed=0) -> MappingReport:
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="charge", noisy=True, seed=seed)
    array.store(dataset.segments)
    pipeline = ReadMappingPipeline(
        AsmCapMatcher(array, dataset.model, MatcherConfig(), seed=seed)
    )
    return pipeline.run_batched(reads, THRESHOLD)


def _assert_reports_identical(ours: MappingReport,
                              theirs: MappingReport) -> None:
    assert ours.n_reads == theirs.n_reads
    assert ours.n_mapped == theirs.n_mapped
    assert ours.n_unique == theirs.n_unique
    assert ours.n_searches == theirs.n_searches
    assert ours.total_energy_joules == theirs.total_energy_joules
    assert ours.total_latency_ns == theirs.total_latency_ns
    for a, b in zip(ours.mappings, theirs.mappings, strict=True):
        assert a.read_index == b.read_index
        assert a.matched_rows == b.matched_rows
        assert a.outcome.energy_joules == b.outcome.energy_joules
        assert a.outcome.latency_ns == b.outcome.latency_ns
        assert a.outcome.n_searches == b.outcome.n_searches


class TestStreamedBitIdentity:
    """Streamed == one-shot, for any micro-batch boundaries."""

    def test_fixed_boundaries(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        reference = _one_shot_batched(small_dataset_a, reads)
        service = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD, micro_batch=5, seed=0,
        )
        service.submit_many(reads)
        _assert_reports_identical(service.close(), reference)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_randomized_boundaries(self, small_dataset_a, boundary_seed):
        """Any chunking of the feed reproduces the one-shot report."""
        reads = _reads(small_dataset_a)
        reference = _one_shot_batched(small_dataset_a, reads)
        rng = np.random.default_rng(boundary_seed)
        service = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD,
            micro_batch=int(rng.integers(1, 9)), seed=0,
        )
        i = 0
        while i < reads.shape[0]:
            step = int(rng.integers(1, 7))
            service.submit_many(reads[i:i + step])
            if rng.random() < 0.3:
                service.flush()
            i += step
        _assert_reports_identical(service.close(), reference)

    def test_single_submits_equal_bulk(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        one_by_one = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD, micro_batch=4, seed=0,
        )
        for read in reads:
            one_by_one.submit(read)
        bulk = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD, micro_batch=4, seed=0,
        )
        bulk.submit_many(iter(reads))
        _assert_reports_identical(one_by_one.close(), bulk.close())

    def test_compaction_does_not_perturb_results(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        reports = {}
        services = {}
        for compaction in (None, 2):
            service = StreamingMappingService(
                small_dataset_a.segments, small_dataset_a.model,
                threshold=THRESHOLD, micro_batch=6, seed=0,
                compaction=compaction,
            )
            service.submit_many(reads)
            reports[compaction] = service.close()
            services[compaction] = service
        _assert_reports_identical(reports[2], reports[None])
        assert (services[2].merged_stats()
                == services[None].merged_stats())
        assert services[2].stats().compactions > 0

    def test_sharded_engine(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        reference = ShardedReadMappingPipeline(
            small_dataset_a.segments, small_dataset_a.model, n_shards=4,
            noisy=True, seed=0, chunk_size=7,
        ).run(reads, THRESHOLD)
        service = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD, engine="sharded", n_shards=4,
            chunk_size=7, micro_batch=9, seed=0,
        )
        service.submit_many(reads)
        _assert_reports_identical(service.close(), reference)


class TestLifecycle:
    def _service(self, dataset, **kwargs):
        kwargs.setdefault("micro_batch", 8)
        return StreamingMappingService(
            dataset.segments, dataset.model, threshold=THRESHOLD,
            seed=0, **kwargs,
        )

    def test_buffer_and_flush(self, small_dataset_a):
        service = self._service(small_dataset_a)
        reads = _reads(small_dataset_a)
        service.submit_many(reads[:5])  # below the micro-batch size
        snap = service.stats()
        assert snap.reads_submitted == 5
        assert snap.reads_in_flight == 5
        assert snap.reads_dispatched == 0
        assert service.flush() == 5
        snap = service.stats()
        assert snap.reads_in_flight == 0
        assert snap.reads_dispatched == 5
        assert snap.batches_dispatched == 1

    def test_drain_keeps_service_open(self, small_dataset_a):
        service = self._service(small_dataset_a)
        reads = _reads(small_dataset_a)
        service.submit_many(reads[:3])
        report = service.drain()
        assert report.n_reads == 3
        service.submit_many(reads[3:6])  # still open
        assert service.close().n_reads == 6

    def test_close_is_idempotent_and_final(self, small_dataset_a):
        service = self._service(small_dataset_a)
        reads = _reads(small_dataset_a)
        service.submit_many(reads[:5])
        first = service.close()
        assert service.closed
        # Repeated closes dispatch nothing further and agree exactly
        # (each call returns a fresh defensive snapshot, so identity
        # is deliberately NOT guaranteed).
        _assert_reports_identical(service.close(), first)
        with pytest.raises(ServiceError):
            service.submit(reads[0])
        with pytest.raises(ServiceError):
            service.flush()
        with pytest.raises(ServiceError):
            service.drain()

    def test_context_manager_closes(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        with self._service(small_dataset_a) as service:
            service.submit_many(reads[:5])
        assert service.closed
        assert service.report.n_reads == 5

    def test_rejects_bad_reads_and_config(self, small_dataset_a):
        service = self._service(small_dataset_a)
        with pytest.raises(CamConfigError):
            service.submit(np.zeros(3, dtype=np.uint8))
        with pytest.raises(ServiceError):
            self._service(small_dataset_a, engine="warp")
        with pytest.raises(CamConfigError):
            self._service(small_dataset_a, micro_batch=0)

    def test_returned_reports_are_safe_to_mutate(self, small_dataset_a):
        """Regression: drain()/close()/report used to return the live
        internal MappingReport, so a caller clearing its mappings list
        corrupted the service aggregates and broke the streamed ==
        one-shot bit-identity contract."""
        reads = _reads(small_dataset_a)
        reference = _one_shot_batched(small_dataset_a, reads)
        service = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD, micro_batch=4, seed=0,
        )
        service.submit_many(reads[:8])
        drained = service.drain()
        # A hostile/naive caller post-processes the result in place.
        drained.mappings.clear()
        drained.n_reads = -1
        mid = service.report
        assert mid.n_reads == 8
        assert len(mid.mappings) == 8
        mid.mappings.clear()
        service.submit_many(reads[8:])
        final = service.close()
        _assert_reports_identical(final, reference)
        # And mutating the final snapshot does not perturb later reads.
        final.mappings.clear()
        _assert_reports_identical(service.close(), reference)

    def test_rejects_falsy_knobs(self, small_dataset_a):
        """Regression: compaction=0 must fail at the service boundary
        (the shared CamConfigError knob gate), not deep inside the
        ledger layer."""
        with pytest.raises(CamConfigError):
            self._service(small_dataset_a, compaction=0)
        with pytest.raises(CamConfigError):
            self._service(small_dataset_a, micro_batch=-3)
        with pytest.raises(CamConfigError):
            self._service(small_dataset_a, backend="warp-drive")

    def test_retain_mappings_false_bounds_results(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        retained = self._service(small_dataset_a, micro_batch=4)
        dropped = self._service(small_dataset_a, micro_batch=4,
                                retain_mappings=False)
        for service in (retained, dropped):
            service.submit_many(reads)
            service.close()
        assert not dropped.report.mappings
        assert len(retained.report.mappings) == reads.shape[0]
        # Aggregate totals fold identically either way.
        assert (dropped.report.total_energy_joules
                == retained.report.total_energy_joules)
        assert dropped.report.n_mapped == retained.report.n_mapped


class TestObservability:
    def test_stats_snapshot(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        service = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD, micro_batch=6, seed=0, compaction=2,
        )
        service.submit_many(reads)
        service.close()
        snap = service.stats()
        assert snap.reads_dispatched == reads.shape[0]
        assert snap.reads_in_flight == 0
        assert snap.micro_batch == 6
        assert snap.reads_mapped == service.report.n_mapped
        assert snap.n_searches == service.merged_stats().n_searches
        assert snap.pass_counts.get("EdStarPass", 0) > 0
        assert snap.total_energy_joules > 0.0
        assert snap.wall_seconds > 0.0
        assert snap.reads_per_second > 0.0
        assert snap.compactions > 0
        assert snap.ledger_events_folded > 0

    def test_default_compaction_is_on(self, small_dataset_a):
        service = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD, seed=0,
        )
        assert (service.ledgers()[0].compaction
                == DEFAULT_SERVICE_COMPACTION)

    def test_autotuned_micro_batch(self, small_dataset_a):
        service = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD, seed=0,
        )
        assert service.micro_batch == plan_microbatch(
            small_dataset_a.segments.shape[0],
            small_dataset_a.read_length,
        )


class TestStreamMapped:
    def test_yields_all_mappings_in_order(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        reference = _one_shot_batched(small_dataset_a, reads)
        service = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD, micro_batch=7, seed=0,
        )
        mappings = list(stream_mapped(service, iter(reads)))
        assert len(mappings) == reads.shape[0]
        for ours, theirs in zip(mappings, reference.mappings, strict=True):
            assert ours.read_index == theirs.read_index
            assert ours.matched_rows == theirs.matched_rows

    def test_bounded_memory_with_dropped_mappings(self, small_dataset_a):
        """retain_mappings=False + stream_mapped: every result is
        still yielded, but nothing accumulates in the service."""
        reads = _reads(small_dataset_a)
        reference = _one_shot_batched(small_dataset_a, reads)
        service = StreamingMappingService(
            small_dataset_a.segments, small_dataset_a.model,
            threshold=THRESHOLD, micro_batch=7, seed=0,
            retain_mappings=False,
        )
        mappings = []
        for mapping in stream_mapped(service, iter(reads)):
            mappings.append(mapping)
            # The aggregate report never retains per-read results...
            assert not service.report.mappings
            # ...and the hand-off buffer holds at most one batch.
            assert len(service.last_batch_mappings) <= 7
        assert len(mappings) == reads.shape[0]
        for ours, theirs in zip(mappings, reference.mappings, strict=True):
            assert ours.read_index == theirs.read_index
            assert ours.matched_rows == theirs.matched_rows
        assert service.report.total_energy_joules \
            == reference.total_energy_joules
