"""Tests for Algorithm 2 (TASR)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tasr import rotation_offsets, tasr_correct
from repro.errors import ThresholdError


class TestRotationOffsets:
    def test_both_directions(self):
        assert set(rotation_offsets(2, "both")) == {1, 2, -1, -2}

    def test_left_only(self):
        assert rotation_offsets(3, "left") == (1, 2, 3)

    def test_right_only(self):
        assert rotation_offsets(2, "right") == (-1, -2)

    def test_nr_zero(self):
        assert rotation_offsets(0, "both") == ()

    def test_invalid_direction(self):
        with pytest.raises(ThresholdError):
            rotation_offsets(2, "diagonal")

    def test_negative_nr(self):
        with pytest.raises(ThresholdError):
            rotation_offsets(-1, "both")


class TestThresholdGuard:
    def test_below_lower_bound_skips_rotations(self):
        calls = []

        def search(offset):
            calls.append(offset)
            return np.array([True])

        base = np.array([False])
        outcome = tasr_correct(base, search, threshold=3, lower_bound=6)
        assert not outcome.triggered
        assert outcome.n_extra_searches == 0
        assert calls == []
        assert np.array_equal(outcome.decisions, base)

    def test_at_lower_bound_triggers(self):
        calls = []

        def search(offset):
            calls.append(offset)
            return np.array([False])

        tasr_correct(np.array([False]), search, threshold=6, lower_bound=6,
                     nr=2, direction="both")
        assert len(calls) == 4


class TestDecisionCombination:
    def test_or_semantics(self):
        def search(offset):
            # Only the +1 rotation finds the match.
            return np.array([offset == 1, False])

        base = np.array([False, False])
        outcome = tasr_correct(base, search, threshold=6, lower_bound=2,
                               nr=2, direction="both")
        assert outcome.decisions.tolist() == [True, False]

    def test_base_matches_preserved(self):
        def search(offset):
            return np.array([False])

        base = np.array([True])
        outcome = tasr_correct(base, search, threshold=8, lower_bound=2)
        assert outcome.decisions[0]

    def test_rotation_cycles_counted(self):
        def search(offset):
            return np.array([False])

        outcome = tasr_correct(np.array([False]), search, threshold=8,
                               lower_bound=2, nr=2, direction="both")
        assert outcome.rotation_cycles == 1 + 2 + 1 + 2
        assert outcome.n_extra_searches == 4

    def test_base_not_mutated(self):
        base = np.array([False, True])
        snapshot = base.copy()
        tasr_correct(base, lambda o: np.array([True, True]), threshold=8,
                     lower_bound=2, nr=1, direction="left")
        assert np.array_equal(base, snapshot)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ThresholdError):
            tasr_correct(np.array([False]), lambda o: np.zeros(2, bool),
                         threshold=8, lower_bound=2)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ThresholdError):
            tasr_correct(np.array([False]), lambda o: np.array([False]),
                         threshold=-1, lower_bound=2)
