"""Tests for the assembled AsmCapMatcher (search flow + accounting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.errors import CamConfigError
from repro.genome.datasets import build_dataset
from repro.genome.edits import ErrorModel


@pytest.fixture(scope="module")
def dataset_a():
    return build_dataset("A", n_reads=12, read_length=128, n_segments=16,
                         seed=50)


@pytest.fixture(scope="module")
def dataset_b():
    return build_dataset("B", n_reads=12, read_length=128, n_segments=16,
                         seed=51)


def make_matcher(dataset, config=None, noisy=False, seed=0):
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="charge", noisy=noisy, seed=seed)
    array.store(dataset.segments)
    return AsmCapMatcher(array, dataset.model, config, seed=seed)


class TestSearchScheduling:
    def test_condition_a_issues_hd_search(self, dataset_a):
        """HDAC active in Condition A: base + Hamming = 2 searches."""
        matcher = make_matcher(dataset_a)
        outcome = matcher.match(dataset_a.reads[0].read.codes, threshold=2)
        assert outcome.n_searches == 2
        assert outcome.hdac is not None
        assert outcome.hdac_probability > 0

    def test_condition_a_no_tasr(self, dataset_a):
        matcher = make_matcher(dataset_a)
        outcome = matcher.match(dataset_a.reads[0].read.codes, threshold=8)
        assert outcome.tasr is not None and not outcome.tasr.triggered

    def test_condition_b_skips_hdac(self, dataset_b):
        """HDAC's p < 1 % in Condition B: no extra Hamming search."""
        matcher = make_matcher(dataset_b)
        outcome = matcher.match(dataset_b.reads[0].read.codes, threshold=4)
        assert outcome.hdac is None
        assert outcome.hdac_probability == 0.0

    def test_condition_b_triggers_tasr_above_tl(self, dataset_b):
        matcher = make_matcher(dataset_b)
        lower_bound = matcher.tasr_lower_bound()
        outcome = matcher.match(dataset_b.reads[0].read.codes,
                                threshold=lower_bound)
        assert outcome.tasr is not None and outcome.tasr.triggered
        assert outcome.n_searches == 1 + outcome.tasr.n_extra_searches

    def test_plain_config_single_search(self, dataset_a):
        matcher = make_matcher(dataset_a, MatcherConfig.plain())
        outcome = matcher.match(dataset_a.reads[0].read.codes, threshold=2)
        assert outcome.n_searches == 1
        assert outcome.hdac is None
        assert outcome.tasr is None


class TestAccounting:
    def test_latency_scales_with_searches(self, dataset_b):
        matcher = make_matcher(dataset_b)
        low = matcher.match(dataset_b.reads[0].read.codes, threshold=2)
        high = matcher.match(dataset_b.reads[0].read.codes,
                             threshold=matcher.tasr_lower_bound())
        assert high.n_searches > low.n_searches
        assert high.latency_ns > low.latency_ns
        assert high.energy_joules > low.energy_joules

    def test_latency_equals_search_sum(self, dataset_a):
        matcher = make_matcher(dataset_a)
        outcome = matcher.match(dataset_a.reads[0].read.codes, threshold=2)
        assert outcome.latency_ns == pytest.approx(
            outcome.n_searches * matcher.array.search_time_ns
        )


class TestCorrectionBehaviour:
    def test_origin_row_found_at_reasonable_threshold(self, dataset_a):
        matcher = make_matcher(dataset_a)
        found = 0
        for record in dataset_a.reads:
            outcome = matcher.match(record.read.codes, threshold=8)
            origin_row = dataset_a.origin_segment_index(record)
            found += int(outcome.decisions[origin_row])
        assert found >= len(dataset_a.reads) * 0.8

    def test_tasr_recovers_consecutive_deletion(self):
        """Inject a 2-base deletion burst: plain ED* misses the origin
        at moderate T, TASR recovers it (the Fig. 6 scenario)."""
        dataset = build_dataset("B", n_reads=1, read_length=128,
                                n_segments=8, seed=0)
        segment = dataset.segments[2]
        rng = np.random.default_rng(3)
        read = np.concatenate([
            segment[:40], segment[42:],
            rng.integers(0, 4, 2).astype(np.uint8),
        ])
        plain = make_matcher(dataset, MatcherConfig.plain())
        full = make_matcher(dataset, MatcherConfig())
        threshold = full.tasr_lower_bound()  # smallest rotating T
        plain_outcome = plain.match(read, threshold)
        full_outcome = full.match(read, threshold)
        # The burst inflates ED* beyond T for the plain matcher...
        assert not plain_outcome.decisions[2]
        # ...and rotation recovers the alignment.
        assert full_outcome.decisions[2]

    def test_hdac_reduces_false_positives(self):
        """Heavy substitutions at tiny T: HDAC must cut FPs."""
        model = ErrorModel(substitution=0.05)
        dataset = build_dataset(model, n_reads=24, read_length=128,
                                n_segments=16, seed=9)
        plain = make_matcher(dataset, MatcherConfig.plain(), seed=1)
        full = make_matcher(dataset, MatcherConfig(), seed=1)
        fp_plain = fp_full = 0
        for record in dataset.reads:
            # With ~6 substitutions expected, ED(origin) > 1 almost
            # surely, so any match at T=1 on the origin row is a FP
            # candidate; count total matches as the FP proxy.
            fp_plain += int(plain.match(record.read.codes, 1).decisions.sum())
            fp_full += int(full.match(record.read.codes, 1).decisions.sum())
        assert fp_full < fp_plain


class TestReproducibility:
    def test_same_seed_same_decisions(self, dataset_a):
        a = make_matcher(dataset_a, seed=3)
        b = make_matcher(dataset_a, seed=3)
        read = dataset_a.reads[0].read.codes
        assert np.array_equal(a.match(read, 2).decisions,
                              b.match(read, 2).decisions)


class TestBatchMatching:
    """match_batch must be bit-identical to the keyed scalar flow."""

    @pytest.mark.parametrize("condition,threshold", [
        ("A", 2),   # HDAC pass issued, TASR dormant
        ("A", 8),   # HDAC at larger T
        ("B", 2),   # neither strategy (below Tl, p ~ 0)
        ("B", 8),   # TASR rotations issued
    ])
    def test_batch_equals_keyed_scalar(self, dataset_a, dataset_b,
                                       condition, threshold):
        dataset = dataset_a if condition == "A" else dataset_b
        matcher = make_matcher(dataset, noisy=True, seed=13)
        reads = np.stack([r.read.codes for r in dataset.reads])
        batch = matcher.match_batch(reads, threshold)
        # Replay in reverse order: keyed streams make order irrelevant.
        for q in reversed(range(len(reads))):
            outcome = matcher.match(reads[q], threshold, query_key=q)
            assert np.array_equal(batch.decisions[q], outcome.decisions)
            assert batch.n_searches[q] == outcome.n_searches
            assert batch.energy_joules[q] == pytest.approx(
                outcome.energy_joules
            )
            assert batch.latency_ns[q] == pytest.approx(
                outcome.latency_ns
            )
            assert batch.hdac_probabilities[q] == pytest.approx(
                outcome.hdac_probability
            )
            assert batch.tasr_lower_bound == outcome.tasr_lower_bound

    def test_strategy_masks(self, dataset_a, dataset_b):
        reads_a = np.stack([r.read.codes for r in dataset_a.reads[:4]])
        hdac_batch = make_matcher(dataset_a).match_batch(reads_a, 2)
        assert hdac_batch.hdac_mask.all()
        assert not hdac_batch.tasr_mask.any()
        assert (hdac_batch.n_searches == 2).all()

        reads_b = np.stack([r.read.codes for r in dataset_b.reads[:4]])
        matcher_b = make_matcher(dataset_b)
        tasr_batch = matcher_b.match_batch(
            reads_b, matcher_b.tasr_lower_bound()
        )
        assert tasr_batch.tasr_mask.all()
        assert not tasr_batch.hdac_mask.any()

    def test_per_query_thresholds_mix_masks(self, dataset_a):
        """A threshold vector can enable HDAC for only some queries."""
        matcher = make_matcher(dataset_a)
        reads = np.stack([r.read.codes for r in dataset_a.reads[:4]])
        thresholds = np.array([1, 30, 2, 25])
        batch = matcher.match_batch(reads, thresholds)
        assert batch.hdac_mask.tolist() == [True, False, True, False]
        for q in range(4):
            outcome = matcher.match(reads[q], int(thresholds[q]),
                                    query_key=q)
            assert np.array_equal(batch.decisions[q], outcome.decisions)

    def test_totals_consistent(self, dataset_a):
        matcher = make_matcher(dataset_a)
        reads = np.stack([r.read.codes for r in dataset_a.reads])
        batch = matcher.match_batch(reads, 4)
        assert batch.n_queries == len(reads)
        assert batch.total_searches == batch.n_searches.sum()
        assert batch.total_energy_joules == pytest.approx(
            batch.energy_joules.sum()
        )

    def test_empty_batch(self, dataset_a):
        matcher = make_matcher(dataset_a)
        empty = np.zeros((0, dataset_a.read_length), dtype=np.uint8)
        batch = matcher.match_batch(empty, 4)
        assert batch.n_queries == 0
        assert batch.total_searches == 0

    def test_rotation_cycles_accounted(self, dataset_b):
        matcher = make_matcher(dataset_b)
        reads = np.stack([r.read.codes for r in dataset_b.reads[:5]])
        threshold = matcher.tasr_lower_bound()
        before = matcher.array.stats.n_rotation_cycles
        matcher.match_batch(reads, threshold)
        # NR = 2 in both directions: 1+2+1+2 cycles per query.
        assert matcher.array.stats.n_rotation_cycles - before == 6 * 5

    def test_bad_inputs(self, dataset_a):
        matcher = make_matcher(dataset_a)
        reads = np.stack([r.read.codes for r in dataset_a.reads[:2]])
        with pytest.raises(CamConfigError):
            matcher.match_batch(reads[0], 4)  # 1-D block
        with pytest.raises(CamConfigError):
            matcher.match_batch(reads, 4, query_keys=[1])
