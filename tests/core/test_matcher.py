"""Tests for the assembled AsmCapMatcher (search flow + accounting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.genome.datasets import build_dataset
from repro.genome.edits import ErrorModel


@pytest.fixture(scope="module")
def dataset_a():
    return build_dataset("A", n_reads=12, read_length=128, n_segments=16,
                         seed=50)


@pytest.fixture(scope="module")
def dataset_b():
    return build_dataset("B", n_reads=12, read_length=128, n_segments=16,
                         seed=51)


def make_matcher(dataset, config=None, noisy=False, seed=0):
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="charge", noisy=noisy, seed=seed)
    array.store(dataset.segments)
    return AsmCapMatcher(array, dataset.model, config, seed=seed)


class TestSearchScheduling:
    def test_condition_a_issues_hd_search(self, dataset_a):
        """HDAC active in Condition A: base + Hamming = 2 searches."""
        matcher = make_matcher(dataset_a)
        outcome = matcher.match(dataset_a.reads[0].read.codes, threshold=2)
        assert outcome.n_searches == 2
        assert outcome.hdac is not None
        assert outcome.hdac_probability > 0

    def test_condition_a_no_tasr(self, dataset_a):
        matcher = make_matcher(dataset_a)
        outcome = matcher.match(dataset_a.reads[0].read.codes, threshold=8)
        assert outcome.tasr is not None and not outcome.tasr.triggered

    def test_condition_b_skips_hdac(self, dataset_b):
        """HDAC's p < 1 % in Condition B: no extra Hamming search."""
        matcher = make_matcher(dataset_b)
        outcome = matcher.match(dataset_b.reads[0].read.codes, threshold=4)
        assert outcome.hdac is None
        assert outcome.hdac_probability == 0.0

    def test_condition_b_triggers_tasr_above_tl(self, dataset_b):
        matcher = make_matcher(dataset_b)
        lower_bound = matcher.tasr_lower_bound()
        outcome = matcher.match(dataset_b.reads[0].read.codes,
                                threshold=lower_bound)
        assert outcome.tasr is not None and outcome.tasr.triggered
        assert outcome.n_searches == 1 + outcome.tasr.n_extra_searches

    def test_plain_config_single_search(self, dataset_a):
        matcher = make_matcher(dataset_a, MatcherConfig.plain())
        outcome = matcher.match(dataset_a.reads[0].read.codes, threshold=2)
        assert outcome.n_searches == 1
        assert outcome.hdac is None
        assert outcome.tasr is None


class TestAccounting:
    def test_latency_scales_with_searches(self, dataset_b):
        matcher = make_matcher(dataset_b)
        low = matcher.match(dataset_b.reads[0].read.codes, threshold=2)
        high = matcher.match(dataset_b.reads[0].read.codes,
                             threshold=matcher.tasr_lower_bound())
        assert high.n_searches > low.n_searches
        assert high.latency_ns > low.latency_ns
        assert high.energy_joules > low.energy_joules

    def test_latency_equals_search_sum(self, dataset_a):
        matcher = make_matcher(dataset_a)
        outcome = matcher.match(dataset_a.reads[0].read.codes, threshold=2)
        assert outcome.latency_ns == pytest.approx(
            outcome.n_searches * matcher.array.search_time_ns
        )


class TestCorrectionBehaviour:
    def test_origin_row_found_at_reasonable_threshold(self, dataset_a):
        matcher = make_matcher(dataset_a)
        found = 0
        for record in dataset_a.reads:
            outcome = matcher.match(record.read.codes, threshold=8)
            origin_row = dataset_a.origin_segment_index(record)
            found += int(outcome.decisions[origin_row])
        assert found >= len(dataset_a.reads) * 0.8

    def test_tasr_recovers_consecutive_deletion(self):
        """Inject a 2-base deletion burst: plain ED* misses the origin
        at moderate T, TASR recovers it (the Fig. 6 scenario)."""
        dataset = build_dataset("B", n_reads=1, read_length=128,
                                n_segments=8, seed=0)
        segment = dataset.segments[2]
        rng = np.random.default_rng(3)
        read = np.concatenate([
            segment[:40], segment[42:],
            rng.integers(0, 4, 2).astype(np.uint8),
        ])
        plain = make_matcher(dataset, MatcherConfig.plain())
        full = make_matcher(dataset, MatcherConfig())
        threshold = full.tasr_lower_bound()  # smallest rotating T
        plain_outcome = plain.match(read, threshold)
        full_outcome = full.match(read, threshold)
        # The burst inflates ED* beyond T for the plain matcher...
        assert not plain_outcome.decisions[2]
        # ...and rotation recovers the alignment.
        assert full_outcome.decisions[2]

    def test_hdac_reduces_false_positives(self):
        """Heavy substitutions at tiny T: HDAC must cut FPs."""
        model = ErrorModel(substitution=0.05)
        dataset = build_dataset(model, n_reads=24, read_length=128,
                                n_segments=16, seed=9)
        plain = make_matcher(dataset, MatcherConfig.plain(), seed=1)
        full = make_matcher(dataset, MatcherConfig(), seed=1)
        fp_plain = fp_full = 0
        for record in dataset.reads:
            origin = dataset.origin_segment_index(record)
            # With ~6 substitutions expected, ED(origin) > 1 almost
            # surely, so any match at T=1 on the origin row is a FP
            # candidate; count total matches as the FP proxy.
            fp_plain += int(plain.match(record.read.codes, 1).decisions.sum())
            fp_full += int(full.match(record.read.codes, 1).decisions.sum())
        assert fp_full < fp_plain


class TestReproducibility:
    def test_same_seed_same_decisions(self, dataset_a):
        a = make_matcher(dataset_a, seed=3)
        b = make_matcher(dataset_a, seed=3)
        read = dataset_a.reads[0].read.codes
        assert np.array_equal(a.match(read, 2).decisions,
                              b.match(read, 2).decisions)
