"""Tests for the HDAC p-function and TASR Tl design rules."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import constants
from repro.core import policy
from repro.errors import ThresholdError
from repro.genome.edits import ErrorModel


class TestHdacProbability:
    def test_paper_formula(self):
        es, eid, t = 0.01, 0.001, 3
        expected = (es / (es + eid)
                    * math.exp(-(200 * eid + 0.5 * t)))
        assert policy.hdac_probability(es, eid, t) == pytest.approx(expected)

    def test_zero_rates_give_zero(self):
        assert policy.hdac_probability(0.0, 0.0, 1) == 0.0

    def test_pure_substitutions_maximise_share(self):
        p_pure = policy.hdac_probability(0.01, 0.0, 1)
        p_mixed = policy.hdac_probability(0.01, 0.01, 1)
        assert p_pure > p_mixed

    def test_decreases_with_threshold(self):
        values = [policy.hdac_probability(0.01, 0.001, t)
                  for t in range(1, 9)]
        assert all(a > b for a, b in zip(values, values[1:], strict=False))

    def test_decreases_with_indels(self):
        values = [policy.hdac_probability(0.01, eid, 2)
                  for eid in (0.0, 0.001, 0.01, 0.1)]
        assert all(a > b for a, b in zip(values, values[1:], strict=False))

    def test_is_probability(self):
        for t in range(20):
            p = policy.hdac_probability(0.5, 0.3, t)
            assert 0.0 <= p <= 1.0

    def test_condition_a_enables_hdac(self):
        """Condition A must keep HDAC active across the Fig. 7 sweep."""
        model = ErrorModel.condition_a()
        for t in constants.CONDITION_A_THRESHOLDS:
            p = policy.hdac_probability_for_model(model, t)
            assert policy.hdac_enabled(p)

    def test_condition_b_disables_hdac(self):
        """Condition B's indel dominance must shut HDAC off."""
        model = ErrorModel.condition_b()
        for t in constants.CONDITION_B_THRESHOLDS:
            p = policy.hdac_probability_for_model(model, t)
            assert not policy.hdac_enabled(p)

    def test_negative_rate_rejected(self):
        with pytest.raises(ThresholdError):
            policy.hdac_probability(-0.1, 0.0, 1)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ThresholdError):
            policy.hdac_probability(0.1, 0.0, -1)


class TestTasrLowerBound:
    def test_paper_formula(self):
        # Tl = ceil(gamma / eid * m)
        assert policy.tasr_lower_bound(0.01, 256) == math.ceil(
            2e-4 / 0.01 * 256
        )

    def test_condition_values(self):
        """Condition B: Tl = 6 (TASR fires at T >= 6); A: never fires."""
        model_b = ErrorModel.condition_b()
        assert policy.tasr_lower_bound_for_model(model_b, 256) == 6
        model_a = ErrorModel.condition_a()
        bound_a = policy.tasr_lower_bound_for_model(model_a, 256)
        assert bound_a > max(constants.CONDITION_A_THRESHOLDS)

    def test_zero_indels_never_triggers(self):
        bound = policy.tasr_lower_bound(0.0, 256)
        assert bound == 257
        assert not policy.tasr_enabled(256, bound)

    def test_higher_indel_rate_lowers_bound(self):
        low = policy.tasr_lower_bound(0.001, 256)
        high = policy.tasr_lower_bound(0.05, 256)
        assert high < low

    def test_bound_at_least_one(self):
        assert policy.tasr_lower_bound(0.9, 256) >= 1

    def test_invalid_inputs(self):
        with pytest.raises(ThresholdError):
            policy.tasr_lower_bound(0.01, 0)
        with pytest.raises(ThresholdError):
            policy.tasr_lower_bound(-0.01, 256)

    @given(st.floats(1e-5, 0.5), st.integers(1, 1024))
    def test_bound_always_valid(self, eid, length):
        bound = policy.tasr_lower_bound(eid, length)
        assert 1 <= bound <= length + 1


class TestEnabledHelpers:
    def test_hdac_disable_threshold(self):
        assert policy.hdac_enabled(0.011)
        assert not policy.hdac_enabled(0.009)

    def test_tasr_enabled(self):
        assert policy.tasr_enabled(6, 6)
        assert not policy.tasr_enabled(5, 6)
