"""Tests for the batch read-mapping pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.core.pipeline import ReadMappingPipeline
from repro.errors import CamConfigError
from repro.genome.datasets import build_dataset


@pytest.fixture(scope="module")
def pipeline_and_dataset():
    dataset = build_dataset("A", n_reads=16, read_length=128, n_segments=16,
                            seed=60)
    array = CamArray(rows=16, cols=128, domain="charge", noisy=False)
    array.store(dataset.segments)
    matcher = AsmCapMatcher(array, dataset.model, MatcherConfig(), seed=0)
    return ReadMappingPipeline(matcher), dataset


class TestMapping:
    def test_maps_most_reads_to_origin(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        report = pipeline.run(dataset.reads, threshold=8)
        assert report.n_reads == 16
        assert report.mapped_fraction >= 0.8
        hits = 0
        for record, mapping in zip(dataset.reads, report.mappings):
            if dataset.origin_segment_index(record) in mapping.matched_rows:
                hits += 1
        assert hits >= 13

    def test_unique_fraction_bounded(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        report = pipeline.run(dataset.reads, threshold=8)
        assert 0.0 <= report.unique_fraction <= report.mapped_fraction

    def test_aggregates_consistent(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        report = pipeline.run(dataset.reads, threshold=4)
        assert report.n_searches == sum(
            m.outcome.n_searches for m in report.mappings
        )
        assert report.total_energy_joules == pytest.approx(sum(
            m.outcome.energy_joules for m in report.mappings
        ))
        assert report.mean_latency_per_read_ns == pytest.approx(
            report.total_latency_ns / report.n_reads
        )

    def test_throughput_positive(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        report = pipeline.run(dataset.reads, threshold=4)
        assert report.reads_per_second > 0

    def test_accepts_raw_code_arrays(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        raw = [record.read.codes for record in dataset.reads[:3]]
        report = pipeline.run(raw, threshold=4)
        assert report.n_reads == 3

    def test_empty_batch_rejected(self, pipeline_and_dataset):
        pipeline, _ = pipeline_and_dataset
        with pytest.raises(CamConfigError):
            pipeline.run([], threshold=4)

    def test_map_read_indices(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        mapping = pipeline.map_read(dataset.reads[0], threshold=8, index=7)
        assert mapping.read_index == 7
        assert all(0 <= row < 16 for row in mapping.matched_rows)
