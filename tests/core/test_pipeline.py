"""Tests for the scalar, batched and sharded read-mapping pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.core.pipeline import (
    ReadMappingPipeline,
    ShardedReadMappingPipeline,
)
from repro.errors import CamConfigError
from repro.genome.datasets import build_dataset


@pytest.fixture(scope="module")
def pipeline_and_dataset():
    dataset = build_dataset("A", n_reads=16, read_length=128, n_segments=16,
                            seed=60)
    array = CamArray(rows=16, cols=128, domain="charge", noisy=False)
    array.store(dataset.segments)
    matcher = AsmCapMatcher(array, dataset.model, MatcherConfig(), seed=0)
    return ReadMappingPipeline(matcher), dataset


class TestMapping:
    def test_maps_most_reads_to_origin(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        report = pipeline.run(dataset.reads, threshold=8)
        assert report.n_reads == 16
        assert report.mapped_fraction >= 0.8
        hits = 0
        for record, mapping in zip(dataset.reads, report.mappings, strict=True):
            if dataset.origin_segment_index(record) in mapping.matched_rows:
                hits += 1
        assert hits >= 13

    def test_unique_fraction_bounded(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        report = pipeline.run(dataset.reads, threshold=8)
        assert 0.0 <= report.unique_fraction <= report.mapped_fraction

    def test_aggregates_consistent(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        report = pipeline.run(dataset.reads, threshold=4)
        assert report.n_searches == sum(
            m.outcome.n_searches for m in report.mappings
        )
        assert report.total_energy_joules == pytest.approx(sum(
            m.outcome.energy_joules for m in report.mappings
        ))
        assert report.mean_latency_per_read_ns == pytest.approx(
            report.total_latency_ns / report.n_reads
        )

    def test_throughput_positive(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        report = pipeline.run(dataset.reads, threshold=4)
        assert report.reads_per_second > 0

    def test_accepts_raw_code_arrays(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        raw = [record.read.codes for record in dataset.reads[:3]]
        report = pipeline.run(raw, threshold=4)
        assert report.n_reads == 3

    def test_empty_batch_yields_empty_report(self, pipeline_and_dataset):
        """An empty batch is a valid degenerate streaming input."""
        pipeline, _ = pipeline_and_dataset
        report = pipeline.run([], threshold=4)
        assert report.n_reads == 0
        assert report.mappings == []
        assert report.mapped_fraction == 0.0
        assert report.reads_per_second == 0.0

    def test_map_read_indices(self, pipeline_and_dataset):
        pipeline, dataset = pipeline_and_dataset
        mapping = pipeline.map_read(dataset.reads[0], threshold=8, index=7)
        assert mapping.read_index == 7
        assert all(0 <= row < 16 for row in mapping.matched_rows)

    def test_mismatched_read_widths_rejected(self, pipeline_and_dataset):
        pipeline, _ = pipeline_and_dataset
        ragged = [np.zeros(128, dtype=np.uint8), np.zeros(64, dtype=np.uint8)]
        with pytest.raises(CamConfigError):
            pipeline.run_batched(ragged, threshold=4)


@pytest.fixture(scope="module")
def noisy_dataset():
    return build_dataset("A", n_reads=24, read_length=128, n_segments=32,
                         seed=61)


def make_noisy_pipeline(dataset, seed=9):
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="charge", noisy=True, seed=seed)
    array.store(dataset.segments)
    matcher = AsmCapMatcher(array, dataset.model, MatcherConfig(), seed=seed)
    return ReadMappingPipeline(matcher)


class TestBatchedPipeline:
    def test_batched_equals_keyed_scalar_loop(self, noisy_dataset):
        """run_batched must be bit-identical to the keyed scalar path."""
        pipeline = make_noisy_pipeline(noisy_dataset)
        batched = pipeline.run_batched(noisy_dataset.reads, threshold=8)
        for index, record in enumerate(noisy_dataset.reads):
            outcome = pipeline.matcher.match(record.read.codes, 8,
                                             query_key=index)
            mapping = batched.mappings[index]
            assert np.array_equal(mapping.outcome.decisions,
                                  outcome.decisions)
            assert mapping.outcome.n_searches == outcome.n_searches
            assert mapping.outcome.energy_joules == pytest.approx(
                outcome.energy_joules
            )

    def test_batched_aggregates_consistent(self, noisy_dataset):
        pipeline = make_noisy_pipeline(noisy_dataset)
        report = pipeline.run_batched(noisy_dataset.reads, threshold=8)
        assert report.n_reads == len(noisy_dataset.reads)
        assert report.n_searches == sum(
            m.outcome.n_searches for m in report.mappings
        )
        assert report.total_energy_joules == pytest.approx(sum(
            m.outcome.energy_joules for m in report.mappings
        ))

    def test_batched_empty_batch(self, noisy_dataset):
        pipeline = make_noisy_pipeline(noisy_dataset)
        assert pipeline.run_batched([], threshold=4).n_reads == 0

    def test_batched_is_deterministic(self, noisy_dataset):
        a = make_noisy_pipeline(noisy_dataset, seed=5)
        b = make_noisy_pipeline(noisy_dataset, seed=5)
        ra = a.run_batched(noisy_dataset.reads, threshold=8)
        rb = b.run_batched(noisy_dataset.reads, threshold=8)
        for ma, mb in zip(ra.mappings, rb.mappings, strict=True):
            assert ma.matched_rows == mb.matched_rows


class TestShardedPipeline:
    @pytest.fixture(scope="class")
    def sharded(self, noisy_dataset):
        return ShardedReadMappingPipeline(
            noisy_dataset.segments, noisy_dataset.model, n_shards=4,
            noisy=True, seed=3, chunk_size=7,
        )

    def test_partitions_all_rows(self, sharded, noisy_dataset):
        assert sharded.n_shards == 4
        covered = []
        for start, stop in sharded.shard_ranges:
            covered.extend(range(start, stop))
        assert covered == list(range(noisy_dataset.n_segments))

    def test_run_equals_map_read(self, sharded, noisy_dataset):
        """Scalar wrapper and chunked threaded batch are bit-identical."""
        report = sharded.run(noisy_dataset.reads, threshold=8)
        for index, record in enumerate(noisy_dataset.reads):
            single = sharded.map_read(record, 8, index=index)
            mapping = report.mappings[index]
            assert single.matched_rows == mapping.matched_rows
            assert np.array_equal(single.outcome.decisions,
                                  mapping.outcome.decisions)
            assert single.outcome.n_searches == mapping.outcome.n_searches
            assert single.outcome.energy_joules == pytest.approx(
                mapping.outcome.energy_joules
            )

    def test_global_row_indices(self, sharded, noisy_dataset):
        """Matched rows are reported in whole-reference coordinates."""
        report = sharded.run(noisy_dataset.reads, threshold=8)
        hits = 0
        for record, mapping in zip(noisy_dataset.reads, report.mappings, strict=True):
            origin = noisy_dataset.origin_segment_index(record)
            hits += int(origin in mapping.matched_rows)
        assert hits >= len(noisy_dataset.reads) * 0.8

    def test_matches_unsharded_noiseless(self, noisy_dataset):
        """With noise and strategies off, sharding is purely structural."""
        sharded = ShardedReadMappingPipeline(
            noisy_dataset.segments, noisy_dataset.model, n_shards=3,
            config=MatcherConfig.plain(), noisy=False,
        )
        array = CamArray(rows=noisy_dataset.n_segments,
                         cols=noisy_dataset.read_length, noisy=False)
        array.store(noisy_dataset.segments)
        flat = ReadMappingPipeline(AsmCapMatcher(
            array, noisy_dataset.model, MatcherConfig.plain()
        ))
        sharded_report = sharded.run(noisy_dataset.reads, threshold=8)
        flat_report = flat.run(noisy_dataset.reads, threshold=8)
        for a, b in zip(sharded_report.mappings, flat_report.mappings, strict=True):
            assert a.matched_rows == b.matched_rows

    def test_more_shards_than_rows(self, noisy_dataset):
        pipeline = ShardedReadMappingPipeline(
            noisy_dataset.segments[:3], noisy_dataset.model, n_shards=8,
            noisy=False,
        )
        assert pipeline.n_shards == 3
        report = pipeline.run(noisy_dataset.reads, threshold=8)
        assert report.n_reads == len(noisy_dataset.reads)

    def test_latency_is_shard_max_energy_is_sum(self, sharded,
                                                noisy_dataset):
        report = sharded.run(noisy_dataset.reads[:4], threshold=8)
        search_time = sharded.matchers[0].array.search_time_ns
        for mapping in report.mappings:
            # Latency counts one shard's (parallel) search chain...
            assert mapping.outcome.latency_ns <= (
                mapping.outcome.n_searches * search_time
            )
            # ...while n_searches/energy sum over every shard.
            assert mapping.outcome.n_searches >= sharded.n_shards

    def test_empty_batch(self, sharded):
        assert sharded.run([], threshold=4).n_reads == 0

    def test_invalid_configs(self, noisy_dataset):
        with pytest.raises(CamConfigError):
            ShardedReadMappingPipeline(
                np.zeros((0, 8), dtype=np.uint8), noisy_dataset.model
            )
        with pytest.raises(CamConfigError):
            ShardedReadMappingPipeline(
                noisy_dataset.segments, noisy_dataset.model, chunk_size=0
            )

    def test_max_workers_zero_rejected(self, noisy_dataset):
        """Regression: max_workers=0 used to be swallowed into the
        autotune fallback by a falsy `or`; it must raise like
        chunk_size<=0 does (0 is a mistake, None requests autotune)."""
        for bad in (0, -2):
            with pytest.raises(CamConfigError):
                ShardedReadMappingPipeline(
                    noisy_dataset.segments, noisy_dataset.model,
                    n_shards=2, max_workers=bad,
                )
        autotuned = ShardedReadMappingPipeline(
            noisy_dataset.segments, noisy_dataset.model, n_shards=2,
            max_workers=None, noisy=False,
        )
        assert autotuned.max_workers >= 1

    def test_executor_persists_across_runs(self, noisy_dataset):
        """Regression: run() used to build and tear down a
        ThreadPoolExecutor per call; the pipeline must reuse one
        persistent pool across runs and release it on close()."""
        pipeline = ShardedReadMappingPipeline(
            noisy_dataset.segments, noisy_dataset.model, n_shards=2,
            noisy=False, seed=3, engine="thread",
        )
        assert pipeline.owns_executor
        assert pipeline._pool is None  # lazy until the first run
        pipeline.run(noisy_dataset.reads[:3], threshold=8)
        pool = pipeline._pool
        assert pool is not None
        pipeline.run(noisy_dataset.reads[3:6], threshold=8)
        assert pipeline._pool is pool
        pipeline.close()
        assert pipeline._pool is None
        pipeline.close()  # idempotent
        # The pipeline stays usable: a later run re-creates the pool.
        report = pipeline.run(noisy_dataset.reads[:2], threshold=8)
        assert report.n_reads == 2
        assert pipeline._pool is not None and pipeline._pool is not pool
        pipeline.close()

    def test_context_manager_closes_executor(self, noisy_dataset):
        with ShardedReadMappingPipeline(
                noisy_dataset.segments, noisy_dataset.model, n_shards=2,
                noisy=False, engine="thread") as pipeline:
            pipeline.run(noisy_dataset.reads[:2], threshold=8)
            assert pipeline._pool is not None
        assert pipeline._pool is None

    def test_injected_executor_is_shared_not_owned(self, noisy_dataset):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=2) as executor:
            pipeline = ShardedReadMappingPipeline(
                noisy_dataset.segments, noisy_dataset.model, n_shards=2,
                noisy=False, executor=executor,
            )
            assert not pipeline.owns_executor
            report = pipeline.run(noisy_dataset.reads[:3], threshold=8)
            assert report.n_reads == 3
            pipeline.close()  # must NOT shut the injected executor down
            assert executor.submit(lambda: 42).result() == 42


class TestStoredShardConstruction:
    def test_stored_shards_bit_identical_to_segments(self, noisy_dataset):
        """A pipeline over pre-encoded shard references reproduces the
        segment-matrix construction exactly (same seeds, same ranges,
        same decisions and costs) — encode once, build many."""
        from repro.core.pipeline import encode_shard_references

        reference = ShardedReadMappingPipeline(
            noisy_dataset.segments, noisy_dataset.model, n_shards=3,
            noisy=True, seed=5, chunk_size=7,
        )
        shards, chunk = encode_shard_references(
            noisy_dataset.segments, n_shards=3, chunk_size=7
        )
        shared = ShardedReadMappingPipeline(
            shards, noisy_dataset.model, n_shards=None, noisy=True,
            seed=5, chunk_size=chunk,
        )
        assert shared.n_shards == reference.n_shards
        assert shared.shard_ranges == reference.shard_ranges
        ours = shared.run(noisy_dataset.reads, threshold=8)
        theirs = reference.run(noisy_dataset.reads, threshold=8)
        assert ours.total_energy_joules == theirs.total_energy_joules
        for a, b in zip(ours.mappings, theirs.mappings, strict=True):
            assert a.matched_rows == b.matched_rows
            assert a.outcome.energy_joules == b.outcome.energy_joules
            assert a.outcome.latency_ns == b.outcome.latency_ns
        # Every pipeline built from the same shards shares the encode.
        assert sum(s.n_encodes for s in shards) == len(shards)
        another = ShardedReadMappingPipeline(
            shards, noisy_dataset.model, n_shards=None, seed=5,
            chunk_size=chunk,
        )
        another.run(noisy_dataset.reads[:2], threshold=8)
        assert sum(s.n_encodes for s in shards) == len(shards)

    def test_stored_shard_count_conflict_rejected(self, noisy_dataset):
        from repro.core.pipeline import encode_shard_references

        shards, _ = encode_shard_references(noisy_dataset.segments,
                                            n_shards=3)
        with pytest.raises(CamConfigError):
            ShardedReadMappingPipeline(shards, noisy_dataset.model,
                                       n_shards=2)

    @pytest.mark.slow
    def test_sharded_stress_10k_reads(self):
        """Nightly lane: a 10k-read workload across 4 shards."""
        dataset = build_dataset("A", n_reads=64, read_length=64,
                                n_segments=64, seed=77)
        rng = np.random.default_rng(78)
        reads = rng.integers(0, 4, (10_000, 64)).astype(np.uint8)
        # Seed some true positives among the random reads.
        reads[::100] = dataset.segments[rng.integers(0, 64, 100)]
        pipeline = ShardedReadMappingPipeline(
            dataset.segments, dataset.model, n_shards=4, noisy=True,
            seed=1,
        )
        report = pipeline.run(reads, threshold=6)
        assert report.n_reads == 10_000
        assert report.n_mapped >= 100  # every seeded copy must map
        for probe in (0, 1_234, 9_999):
            single = pipeline.map_read(reads[probe], 6, index=probe)
            assert single.matched_rows == \
                report.mappings[probe].matched_rows
