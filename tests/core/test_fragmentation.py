"""Tests for long-read fragmentation over the CAM array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.core.fragmentation import FragmentedMatcher
from repro.errors import CamConfigError, ThresholdError
from repro.genome.generator import generate_reference


@pytest.fixture
def long_segments(rng):
    """8 segments of 2 fragments x 64 bases each."""
    reference = generate_reference(8 * 128 + 64, seed=130,
                                   with_repeats=False)
    return np.stack([
        reference.codes[i * 128 : (i + 1) * 128] for i in range(8)
    ])


@pytest.fixture
def matcher(long_segments):
    array = CamArray(rows=16, cols=64, domain="charge", noisy=False)
    return FragmentedMatcher(array, long_segments, min_fragment_matches=2)


class TestLayout:
    def test_geometry(self, matcher):
        assert matcher.n_segments == 8
        assert matcher.n_fragments == 2
        assert matcher.read_length == 128

    def test_fragment_rows_layout(self, matcher, long_segments):
        stored = matcher._array.stored_segments()
        # Fragment-major: rows 0..7 hold fragment 0, rows 8..15 fragment 1.
        assert np.array_equal(stored[3], long_segments[3][:64])
        assert np.array_equal(stored[8 + 3], long_segments[3][64:])

    def test_capacity_check(self, long_segments):
        small = CamArray(rows=8, cols=64, noisy=False)
        with pytest.raises(CamConfigError):
            FragmentedMatcher(small, long_segments)

    def test_length_multiple_check(self, rng):
        array = CamArray(rows=16, cols=64, noisy=False)
        segments = rng.integers(0, 4, (4, 100)).astype(np.uint8)
        with pytest.raises(CamConfigError):
            FragmentedMatcher(array, segments)

    def test_min_matches_validation(self, long_segments):
        array = CamArray(rows=16, cols=64, noisy=False)
        with pytest.raises(ThresholdError):
            FragmentedMatcher(array, long_segments, min_fragment_matches=3)


class TestMatching:
    def test_exact_read_matches_origin(self, matcher, long_segments):
        outcome = matcher.match(long_segments[5], threshold=0)
        assert outcome.decisions[5]
        assert outcome.fragment_matches[5].all()
        assert outcome.n_searches == 2

    def test_random_read_matches_nothing(self, matcher, rng):
        read = rng.integers(0, 4, 128).astype(np.uint8)
        outcome = matcher.match(read, threshold=4)
        assert not outcome.decisions.any()

    def test_edited_read_within_budget(self, matcher, long_segments, rng):
        read = long_segments[2].copy()
        read[10] = (read[10] + 1) % 4   # one edit in fragment 0
        read[90] = (read[90] + 1) % 4   # one edit in fragment 1
        outcome = matcher.match(read, threshold=2)
        assert outcome.per_fragment_threshold == 1
        assert outcome.decisions[2]

    def test_budget_split_is_ceiling(self, matcher):
        assert matcher.per_fragment_threshold(3) == 2
        assert matcher.per_fragment_threshold(4) == 2
        assert matcher.per_fragment_threshold(0) == 0

    def test_min_matches_one_is_permissive(self, long_segments, rng):
        array = CamArray(rows=16, cols=64, noisy=False)
        lenient = FragmentedMatcher(array, long_segments,
                                    min_fragment_matches=1)
        # Corrupt fragment 1 completely: fragment 0 alone should carry.
        read = long_segments[4].copy()
        read[64:] = rng.integers(0, 4, 64).astype(np.uint8)
        outcome = lenient.match(read, threshold=2)
        assert outcome.decisions[4]

    def test_wrong_read_length(self, matcher, rng):
        with pytest.raises(CamConfigError):
            matcher.match(rng.integers(0, 4, 64).astype(np.uint8), 2)

    def test_costs_scale_with_fragments(self, matcher, long_segments):
        outcome = matcher.match(long_segments[0], threshold=0)
        assert outcome.energy_joules > 0
        assert outcome.latency_ns == pytest.approx(2 * 0.9)
