"""Sweep-engine equivalence tests: one search pass per threshold curve.

The contract everything rests on: every random draw of the matching
flow is keyed by ``(query_key, pass)`` — never by the threshold — so a
threshold sweep that computes each pass once and re-applies the
sense-amp references must be **bit-identical** to running the scalar
(or batched) path once per threshold with the same keys.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.edam import EdamMatcher
from repro.cam.array import CamArray
from repro.cam.cell import MatchMode
from repro.cam.sense_amp import SenseAmplifier
from repro.core.hdac import hdac_correct_batch, hdac_correct_sweep
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.errors import CamConfigError, ThresholdError
from repro.eval.confusion import f1_from_decisions
from repro.eval.ground_truth import label_dataset
from repro.genome.datasets import build_dataset


def _reads_matrix(dataset):
    return np.stack([record.read.codes for record in dataset.reads])


def _fresh_matcher(dataset, config, *, array_seed=5, matcher_seed=6):
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="charge", noisy=True, seed=array_seed)
    array.store(dataset.segments)
    return AsmCapMatcher(array, dataset.model, config, seed=matcher_seed)


CONDITIONS = {
    "A": list(range(1, 9)),
    "B": list(range(2, 17, 2)),
}


class TestSearchSweepEquivalence:
    """CamArray.search_sweep slice t == search_batch at thresholds[t]."""

    @pytest.mark.parametrize("mode", [MatchMode.ED_STAR, MatchMode.HAMMING])
    def test_matches_search_batch_per_threshold(self, small_dataset_a, mode):
        dataset = small_dataset_a
        reads = _reads_matrix(dataset)
        keys = [(q, 7) for q in range(reads.shape[0])]
        thresholds = np.array([1, 3, 6, 12])

        def fresh_array():
            array = CamArray(rows=dataset.n_segments,
                             cols=dataset.read_length,
                             domain="charge", noisy=True, seed=3)
            array.store(dataset.segments)
            return array

        sweep = fresh_array().search_sweep(reads, thresholds, mode,
                                           noise_keys=keys)
        batch_array = fresh_array()
        for t_index, threshold in enumerate(thresholds):
            batch = batch_array.search_batch(reads, int(threshold), mode,
                                             noise_keys=keys)
            assert np.array_equal(sweep.matches[t_index], batch.matches)
            assert np.array_equal(sweep.mismatch_counts,
                                  batch.mismatch_counts)
            assert np.array_equal(sweep.energy_per_query_joules,
                                  batch.energy_per_query_joules)

    def test_voltages_shared_across_thresholds(self, small_dataset_a):
        """The sweep's whole point: one noise draw for every threshold."""
        dataset = small_dataset_a
        reads = _reads_matrix(dataset)
        array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                         noisy=True, seed=3)
        array.store(dataset.segments)
        keys = [(q,) for q in range(reads.shape[0])]
        sweep = array.search_sweep(reads, np.array([1, 4, 8]),
                                   noise_keys=keys)
        assert sweep.v_ml.shape == reads.shape[:1] + (dataset.n_segments,)
        assert sweep.matches.shape == (3,) + sweep.v_ml.shape

    def test_sweep_records_physical_not_scalar_cost(self, small_dataset_a):
        dataset = small_dataset_a
        reads = _reads_matrix(dataset)
        array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                         noisy=True, seed=3)
        array.store(dataset.segments)
        array.search_sweep(reads, np.array([1, 4, 8]))
        assert array.stats.n_searches == reads.shape[0]

    def test_validation(self, small_dataset_a):
        dataset = small_dataset_a
        reads = _reads_matrix(dataset)
        array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                         seed=3)
        array.store(dataset.segments)
        with pytest.raises(ThresholdError):
            array.search_sweep(reads, np.array([[1, 2]]))
        with pytest.raises(ThresholdError):
            array.search_sweep(reads, np.array([], dtype=int))
        with pytest.raises(ThresholdError):
            array.search_sweep(reads, np.array([dataset.read_length + 1]))
        with pytest.raises(CamConfigError):
            array.search_sweep(reads, np.array([1]), noise_keys=[(0, 1)])


class TestMatchSweepBitIdentity:
    """The satellite's property: sweep F1 series == scalar F1 series."""

    @pytest.mark.parametrize("condition", ["A", "B"])
    @pytest.mark.parametrize(
        "config", [MatcherConfig(), MatcherConfig.plain()],
        ids=["hdac+tasr", "plain"])
    def test_f1_series_bit_identical_to_scalar(self, condition, config):
        thresholds = CONDITIONS[condition]
        dataset = build_dataset(condition, n_reads=24, read_length=128,
                                n_segments=32, seed=11)
        reads = _reads_matrix(dataset)
        truth = label_dataset(dataset, max(thresholds))

        sweep = _fresh_matcher(dataset, config).match_sweep(reads,
                                                            thresholds)
        scalar = _fresh_matcher(dataset, config)
        for t_index, threshold in enumerate(thresholds):
            labels = truth.labels(threshold)
            scalar_decisions = np.stack([
                scalar.match(reads[q], threshold, query_key=q).decisions
                for q in range(reads.shape[0])
            ])
            sweep_f1 = f1_from_decisions(sweep.decisions[t_index], labels)
            scalar_f1 = f1_from_decisions(scalar_decisions, labels)
            assert sweep_f1 == scalar_f1  # bit-identical, not approx
            assert np.array_equal(sweep.decisions[t_index],
                                  scalar_decisions)

    @pytest.mark.parametrize("condition", ["A", "B"])
    def test_cost_accounting_matches_scalar(self, condition):
        thresholds = CONDITIONS[condition]
        dataset = build_dataset(condition, n_reads=12, read_length=96,
                                n_segments=16, seed=2)
        reads = _reads_matrix(dataset)
        sweep = _fresh_matcher(dataset, MatcherConfig()).match_sweep(
            reads, thresholds)
        scalar = _fresh_matcher(dataset, MatcherConfig())
        for t_index, threshold in enumerate(thresholds):
            for q in range(reads.shape[0]):
                outcome = scalar.match(reads[q], threshold, query_key=q)
                assert outcome.n_searches == sweep.n_searches[t_index, q]
                assert outcome.energy_joules == pytest.approx(
                    sweep.energy_joules[t_index, q])
                assert outcome.latency_ns == pytest.approx(
                    sweep.latency_ns[t_index, q])

    def test_matches_match_batch_slices(self, small_dataset_b):
        dataset = small_dataset_b
        reads = _reads_matrix(dataset)
        thresholds = [2, 6, 10, 14]
        keys = list(range(100, 100 + reads.shape[0]))
        sweep = _fresh_matcher(dataset, MatcherConfig()).match_sweep(
            reads, thresholds, query_keys=keys)
        batch = _fresh_matcher(dataset, MatcherConfig())
        for t_index, threshold in enumerate(thresholds):
            outcome = batch.match_batch(reads, threshold, query_keys=keys)
            assert np.array_equal(sweep.decisions[t_index],
                                  outcome.decisions)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000),
           array_seed=st.integers(0, 1000),
           n_reads=st.integers(1, 12))
    def test_property_sweep_equals_scalar(self, seed, array_seed, n_reads):
        """Fuzzed over dataset/array seeds and block sizes."""
        thresholds = [1, 2, 5, 8]
        dataset = build_dataset("A", n_reads=n_reads, read_length=64,
                                n_segments=12, seed=seed)
        reads = _reads_matrix(dataset)
        config = MatcherConfig()
        sweep = _fresh_matcher(dataset, config,
                               array_seed=array_seed).match_sweep(
            reads, thresholds)
        scalar = _fresh_matcher(dataset, config, array_seed=array_seed)
        for t_index, threshold in enumerate(thresholds):
            for q in range(n_reads):
                assert np.array_equal(
                    sweep.decisions[t_index, q],
                    scalar.match(reads[q], threshold,
                                 query_key=q).decisions,
                )

    def test_at_threshold_accessor(self, small_dataset_a):
        dataset = small_dataset_a
        reads = _reads_matrix(dataset)
        sweep = _fresh_matcher(dataset, MatcherConfig()).match_sweep(
            reads, [2, 4])
        assert np.array_equal(sweep.at_threshold(4), sweep.decisions[1])
        with pytest.raises(CamConfigError):
            sweep.at_threshold(3)

    def test_validation(self, small_dataset_a):
        dataset = small_dataset_a
        reads = _reads_matrix(dataset)
        matcher = _fresh_matcher(dataset, MatcherConfig())
        with pytest.raises(CamConfigError):
            matcher.match_sweep(reads[0], [1, 2])
        with pytest.raises(CamConfigError):
            matcher.match_sweep(reads, [])
        with pytest.raises(CamConfigError):
            matcher.match_sweep(reads, [1, 2], query_keys=[1])


class TestEdamSweep:
    @pytest.mark.parametrize("enable_sr", [False, True])
    def test_bit_identical_to_keyed_scalar(self, small_dataset_b,
                                           enable_sr):
        dataset = small_dataset_b
        reads = _reads_matrix(dataset)
        thresholds = np.array([2, 6, 12])

        def fresh():
            array = CamArray(rows=dataset.n_segments,
                             cols=dataset.read_length,
                             domain="current", noisy=True, seed=9)
            matcher = EdamMatcher(array=array, enable_sr=enable_sr)
            matcher.store(dataset.segments)
            return matcher

        sweep = fresh().match_sweep(reads, thresholds)
        scalar = fresh()
        for t_index, threshold in enumerate(thresholds):
            for q in range(reads.shape[0]):
                outcome = scalar.match(reads[q], int(threshold),
                                       query_key=q)
                assert np.array_equal(sweep[t_index, q],
                                      outcome.decisions)


class TestSenseAmpSweep:
    def test_matches_scalar_decide(self):
        sa = SenseAmplifier()
        v_ml = np.linspace(0.0, 1.0, 64).reshape(4, 16)
        thresholds = np.array([0, 3, 9, 16])
        sweep = sa.decide_sweep(v_ml, thresholds, 16)
        for t_index, threshold in enumerate(thresholds):
            assert np.array_equal(sweep[t_index],
                                  sa.decide(v_ml, int(threshold), 16))

    def test_offset_sigma_rejected(self):
        sa = SenseAmplifier(offset_sigma=0.01)
        with pytest.raises(ThresholdError):
            sa.decide_sweep(np.zeros((2, 4)), np.array([1]), 4)

    def test_threshold_shape_rejected(self):
        sa = SenseAmplifier()
        with pytest.raises(ThresholdError):
            sa.decide_sweep(np.zeros((2, 4)), np.array([[1]]), 4)


class TestHdacSweep:
    def test_slices_match_batch_correction(self, rng):
        n_thresholds, n_queries, n_rows = 3, 5, 17
        ed = rng.random((n_thresholds, n_queries, n_rows)) < 0.5
        hd = rng.random((n_thresholds, n_queries, n_rows)) < 0.5
        p = np.array([0.0, 0.4, 1.0])
        states = np.arange(1, n_queries + 1, dtype=np.uint64) * 977
        swept = hdac_correct_sweep(ed, hd, p, states)
        for t in range(n_thresholds):
            batch = hdac_correct_batch(ed[t], hd[t],
                                       np.full(n_queries, p[t]), states)
            assert np.array_equal(swept[t], batch)

    def test_validation(self):
        block = np.zeros((2, 3, 4), dtype=bool)
        states = np.arange(3, dtype=np.uint64)
        with pytest.raises(ThresholdError):
            hdac_correct_sweep(block, block[0], np.zeros(2), states)
        with pytest.raises(ThresholdError):
            hdac_correct_sweep(block, block, np.zeros(3), states)
        with pytest.raises(ThresholdError):
            hdac_correct_sweep(block, block, np.array([0.5, 1.5]), states)
        with pytest.raises(ThresholdError):
            hdac_correct_sweep(block, block, np.zeros(2),
                               states[:2])
