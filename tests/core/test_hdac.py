"""Tests for Algorithm 1 (HDAC)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hdac import hdac_correct
from repro.errors import ThresholdError


class TestAgreementCases:
    def test_agreeing_decisions_untouched(self, rng):
        decisions = np.array([True, False, True, False])
        outcome = hdac_correct(decisions, decisions.copy(), p=1.0, rng=rng)
        assert np.array_equal(outcome.decisions, decisions)
        assert outcome.n_disagreements == 0
        assert outcome.n_hd_selected == 0

    def test_p_zero_keeps_ed_star(self, rng):
        ed = np.array([True, True, False])
        hd = np.array([False, False, True])
        outcome = hdac_correct(ed, hd, p=0.0, rng=rng)
        assert np.array_equal(outcome.decisions, ed)
        assert outcome.n_disagreements == 3
        assert outcome.n_hd_selected == 0

    def test_p_one_takes_hamming(self, rng):
        ed = np.array([True, True, False])
        hd = np.array([False, False, True])
        outcome = hdac_correct(ed, hd, p=1.0, rng=rng)
        assert np.array_equal(outcome.decisions, hd)
        assert outcome.n_hd_selected == 3


class TestProbabilisticSelection:
    def test_selection_rate_matches_p(self):
        rng = np.random.default_rng(0)
        n = 20_000
        ed = np.ones(n, dtype=bool)
        hd = np.zeros(n, dtype=bool)
        outcome = hdac_correct(ed, hd, p=0.3, rng=rng)
        rate = outcome.n_hd_selected / n
        assert rate == pytest.approx(0.3, abs=0.02)
        assert outcome.decisions.sum() == n - outcome.n_hd_selected

    def test_only_disagreeing_rows_touched(self, rng):
        ed = np.array([True, True, False, False])
        hd = np.array([True, False, False, True])
        outcome = hdac_correct(ed, hd, p=1.0, rng=rng)
        # Rows 0 and 2 agree and must be preserved.
        assert outcome.decisions[0] == ed[0]
        assert outcome.decisions[2] == ed[2]
        assert outcome.n_disagreements == 2

    def test_deterministic_given_seed(self):
        ed = np.random.default_rng(1).random(100) < 0.5
        hd = np.random.default_rng(2).random(100) < 0.5
        a = hdac_correct(ed, hd, 0.5, np.random.default_rng(7))
        b = hdac_correct(ed, hd, 0.5, np.random.default_rng(7))
        assert np.array_equal(a.decisions, b.decisions)


class TestCorrectionSemantics:
    def test_substitution_hiding_fp_corrected(self, rng):
        """The Fig. 5 scenario: ED* says match (hidden substitutions),
        HD says mismatch; with p = 1 the FP is corrected."""
        ed_star_match = np.array([True])
        hamming_mismatch = np.array([False])
        outcome = hdac_correct(ed_star_match, hamming_mismatch, 1.0, rng)
        assert not outcome.decisions[0]


class TestValidation:
    def test_shape_mismatch(self, rng):
        with pytest.raises(ThresholdError):
            hdac_correct(np.array([True]), np.array([True, False]), 0.5, rng)

    def test_invalid_probability(self, rng):
        with pytest.raises(ThresholdError):
            hdac_correct(np.array([True]), np.array([False]), 1.5, rng)

    def test_inputs_not_mutated(self, rng):
        ed = np.array([True, False])
        hd = np.array([False, True])
        ed_copy, hd_copy = ed.copy(), hd.copy()
        hdac_correct(ed, hd, 1.0, rng)
        assert np.array_equal(ed, ed_copy)
        assert np.array_equal(hd, hd_copy)
