"""Tests for the process shard engine and the pipeline integration.

The binding invariant under test: for **any** worker count and any
scheduling, ``engine="process"`` produces decisions, per-read costs
and reports bit-identical to ``engine="thread"`` — and failure modes
(dead worker, task error, closed engine) surface as clear
:class:`~repro.errors.ServiceError`\\ s, never as hangs.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import numpy as np
import pytest

from repro.arch import autotune
from repro.core.pipeline import (
    ShardedReadMappingPipeline,
    encode_shard_references,
)
from repro.errors import CamConfigError, LedgerCompactionError, ServiceError
from repro.genome.edits import ErrorModel
from repro.kernels import get_backend
from repro.parallel import ProcessShardEngine, ShardTask

# Threaded/process stress paths: a deadlock must fail loud in CI,
# not eat the job timeout (inert without the pytest-timeout plugin).
pytestmark = pytest.mark.timeout(120)

THRESHOLD = 8


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(7)
    segments = rng.integers(0, 4, size=(48, 80), dtype=np.uint8)
    model = ErrorModel(substitution=0.02, insertion=0.01, deletion=0.01)
    reads = [segments[(i * 5) % 48] for i in range(25)]
    return segments, model, reads


def _reports_identical(a, b) -> None:
    assert a.n_reads == b.n_reads
    assert a.n_mapped == b.n_mapped
    assert a.n_unique == b.n_unique
    assert a.n_searches == b.n_searches
    assert a.total_energy_joules == b.total_energy_joules
    assert a.total_latency_ns == b.total_latency_ns
    for left, right in zip(a.mappings, b.mappings, strict=True):
        assert left.read_index == right.read_index
        assert left.matched_rows == right.matched_rows
        assert left.outcome.energy_joules == right.outcome.energy_joules
        assert left.outcome.latency_ns == right.outcome.latency_ns
        np.testing.assert_array_equal(left.outcome.decisions,
                                      right.outcome.decisions)


class TestBitIdentity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_worker_count_invariance(self, workload, n_workers):
        segments, model, reads = workload
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="thread") as thread_pipe:
            baseline = thread_pipe.run(reads, THRESHOLD)
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="process", max_workers=n_workers) as process_pipe:
            assert process_pipe.engine == "process"
            report = process_pipe.run(reads, THRESHOLD)
            _reports_identical(baseline, report)

    @pytest.mark.parametrize("compaction", [None, 16])
    def test_compaction_invariance(self, workload, compaction):
        segments, model, reads = workload
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                ledger_compaction=compaction,
                engine="thread") as thread_pipe:
            baseline = thread_pipe.run(reads, THRESHOLD)
            thread_stats = thread_pipe.merged_stats()
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                ledger_compaction=compaction,
                engine="process", max_workers=2) as process_pipe:
            report = process_pipe.run(reads, THRESHOLD)
            process_stats = process_pipe.merged_stats()
        _reports_identical(baseline, report)
        # Integer counters are exact; the float totals group their
        # additions per worker task instead of per event, so they
        # agree to float precision, not bit-for-bit.
        assert process_stats.n_searches == thread_stats.n_searches
        assert (process_stats.n_rotation_cycles
                == thread_stats.n_rotation_cycles)
        assert process_stats.total_energy_joules == pytest.approx(
            thread_stats.total_energy_joules, rel=1e-12)
        assert process_stats.total_latency_ns == pytest.approx(
            thread_stats.total_latency_ns, rel=1e-12)

    def test_map_read_parity(self, workload):
        segments, model, reads = workload
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="process", max_workers=2) as pipe:
            batch = pipe.run(reads[:4], THRESHOLD)
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="process", max_workers=2) as pipe:
            single = pipe.map_read(reads[2], THRESHOLD, index=2)
        assert single.matched_rows == batch.mappings[2].matched_rows
        assert (single.outcome.energy_joules
                == batch.mappings[2].outcome.energy_joules)

    def test_prebuilt_shards_match_raw_matrix(self, workload):
        segments, model, reads = workload
        shards, chunk = encode_shard_references(segments, n_shards=2,
                                                chunk_size=8)
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="process", max_workers=2) as raw_pipe:
            raw = raw_pipe.run(reads, THRESHOLD)
        with ShardedReadMappingPipeline(
                shards, model, n_shards=None, seed=5, chunk_size=chunk,
                engine="process", max_workers=2) as shared_pipe:
            shared = shared_pipe.run(reads, THRESHOLD)
        _reports_identical(raw, shared)


class TestLedgerViews:
    def test_merged_ledger_raises_on_process_engine(self, workload):
        segments, model, reads = workload
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="process", max_workers=1) as pipe:
            pipe.run(reads[:8], THRESHOLD)
            with pytest.raises(LedgerCompactionError,
                               match="process boundary"):
                pipe.merged_ledger()

    def test_ledger_observability_counts_worker_folds(self, workload):
        segments, model, reads = workload
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="thread") as pipe:
            pipe.run(reads, THRESHOLD)
            thread_counts = pipe.ledger_observability()[0]
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="process", max_workers=2) as pipe:
            pipe.run(reads, THRESHOLD)
            (pass_counts, live, folded, population,
             compactions) = pipe.ledger_observability()
        # Same physical passes ran, whichever side of the process
        # boundary recorded them.
        assert pass_counts == thread_counts
        assert folded > 0
        # ceil(25 / 8) chunks x 2 shards worker-side folds.
        assert compactions == 8
        # Only the broadcast ledger stays live in the parent.
        assert live == 4
        assert population == 0


class TestWorkerBackendResolution:
    def test_env_var_reaches_workers(self, workload, monkeypatch):
        segments, model, reads = workload
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "bitpacked")
        planned_before = autotune._PLANNED_BACKEND
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="process", max_workers=2) as pipe:
            report = pipe.run(reads, THRESHOLD)
            engine = pipe.process_engine()
            assert engine.worker_backends() == ("bitpacked", "bitpacked")
            assert engine.worker_encode_counts() == (0, 0)
        # The spawn must not have perturbed the parent's backend plan.
        assert autotune._PLANNED_BACKEND == planned_before
        monkeypatch.delenv("REPRO_KERNEL_BACKEND")
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="thread") as thread_pipe:
            _reports_identical(thread_pipe.run(reads, THRESHOLD), report)

    def test_explicit_backend_name_reaches_tasks(self, workload):
        segments, model, reads = workload
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="process", max_workers=1,
                backend="bitpacked") as pipe:
            report = pipe.run(reads[:8], THRESHOLD)
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5, chunk_size=8,
                engine="thread", backend="bitpacked") as thread_pipe:
            _reports_identical(thread_pipe.run(reads[:8], THRESHOLD),
                               report)

    def test_backend_instance_rejected(self, workload):
        segments, model, _ = workload
        with pytest.raises(CamConfigError, match="registry name"):
            ShardedReadMappingPipeline(
                segments, model, n_shards=2, engine="process",
                backend=get_backend("numpy-gemm"),
            )


class TestEngineLifecycle:
    def test_engine_is_lazy_and_close_respawns(self, workload):
        segments, model, reads = workload
        pipe = ShardedReadMappingPipeline(
            segments, model, n_shards=2, seed=5, chunk_size=8,
            engine="process", max_workers=1)
        try:
            assert pipe.process_engine() is None
            first = pipe.run(reads[:8], THRESHOLD)
            engine = pipe.process_engine()
            assert engine is not None and engine.started
            pipe.close()
            assert engine.closed
            assert pipe.process_engine() is None
            # The pipeline stays usable: a later run spawns a fresh
            # pool, and the keyed streams keep it bit-identical.
            again = pipe.run(reads[:8], THRESHOLD)
            _reports_identical(first, again)
        finally:
            pipe.close()

    def test_closed_engine_refuses_work(self, workload):
        segments, model, _ = workload
        shards, _ = encode_shard_references(segments, n_shards=2)
        engine = ProcessShardEngine(shards, n_workers=1)
        engine.close()
        with pytest.raises(ServiceError, match="closed"):
            engine.run_tasks([])

    def test_double_close_is_idempotent(self, workload):
        segments, model, _ = workload
        shards, _ = encode_shard_references(segments, n_shards=2)
        engine = ProcessShardEngine(shards, n_workers=1)
        engine.start()
        engine.close()
        engine.close()
        assert engine.closed

    def test_requires_sealed_shards_and_workers(self, workload):
        segments, model, _ = workload
        shards, _ = encode_shard_references(segments, n_shards=2)
        with pytest.raises(CamConfigError, match="at least one shard"):
            ProcessShardEngine(())
        with pytest.raises(CamConfigError, match="n_workers"):
            ProcessShardEngine(shards, n_workers=0)

    def test_injected_engine_must_match(self, workload):
        segments, model, _ = workload
        shards, _ = encode_shard_references(segments, n_shards=2)
        engine = ProcessShardEngine(shards, n_workers=1)
        try:
            with pytest.raises(CamConfigError, match="resolved"):
                ShardedReadMappingPipeline(
                    segments, model, n_shards=2, engine="thread",
                    process_engine=engine)
            with pytest.raises(CamConfigError, match="shards"):
                ShardedReadMappingPipeline(
                    segments, model, n_shards=3, engine="process",
                    process_engine=engine)
            pipe = ShardedReadMappingPipeline(
                segments, model, n_shards=2, engine="process",
                process_engine=engine)
            assert not pipe.owns_process_engine
            pipe.close()
            # close() leaves the injected engine to its owner.
            assert not engine.closed
        finally:
            engine.close()

    def test_concurrent_callers_are_serialised(self, workload):
        """Frontend sessions share one engine across dispatch threads;
        concurrent run_tasks calls must never drain each other's
        results (regression: unserialised calls interleaved on the
        single result queue and hung)."""
        segments, model, reads = workload
        shards, _ = encode_shard_references(segments, n_shards=2)

        def tasks_for(seed: int) -> "list[ShardTask]":
            return [
                ShardTask(shard_index=s,
                          codes=np.asarray(reads[seed])[None, :],
                          keys=(seed,), threshold=THRESHOLD, seed=seed,
                          config=None, error_model=model)
                for s in range(2)
            ]

        with ProcessShardEngine(shards, n_workers=2) as engine:
            expected = {seed: engine.run_tasks(tasks_for(seed))
                        for seed in (1, 2, 3)}
            raced: "dict[int, list]" = {}
            failures: "list[Exception]" = []

            def drive(seed: int) -> None:
                try:
                    for _ in range(3):
                        raced[seed] = engine.run_tasks(tasks_for(seed))
                except Exception as exc:  # pragma: no cover - fail loud
                    failures.append(exc)

            threads = [threading.Thread(target=drive, args=(seed,))
                       for seed in (1, 2, 3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(thread.is_alive() for thread in threads)
            assert not failures
            for seed in (1, 2, 3):
                for (got, _), (want, _) in zip(raced[seed],
                                               expected[seed], strict=True):
                    np.testing.assert_array_equal(got.decisions,
                                                  want.decisions)
                    assert got.energy_joules == want.energy_joules
                    assert got.latency_ns == want.latency_ns


class TestFailureModes:
    def test_killed_worker_raises_not_hangs(self, workload):
        segments, model, reads = workload
        shards, _ = encode_shard_references(segments, n_shards=2)
        engine = ProcessShardEngine(shards, n_workers=1)
        try:
            engine.start()
            (pid,) = engine.worker_pids()
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            task = ShardTask(shard_index=0,
                             codes=np.asarray(reads[0])[None, :],
                             keys=(0,), threshold=THRESHOLD, seed=5,
                             config=None, error_model=model)
            with pytest.raises(ServiceError, match="died with exit code"):
                engine.run_tasks([task])
            assert time.monotonic() < deadline
            assert engine.broken
            with pytest.raises(ServiceError, match="broken"):
                engine.run_tasks([task])
        finally:
            engine.close()

    def test_task_error_embeds_traceback_and_keeps_engine(self, workload):
        segments, model, reads = workload
        shards, _ = encode_shard_references(segments, n_shards=2)
        engine = ProcessShardEngine(shards, n_workers=1)
        try:
            bad = ShardTask(shard_index=0,
                            codes=np.zeros((1, 3), dtype=np.uint8),
                            keys=(0,), threshold=THRESHOLD, seed=5,
                            config=None, error_model=model)
            with pytest.raises(ServiceError,
                               match="failed in a worker process"):
                engine.run_tasks([bad])
            assert not engine.broken
            good = ShardTask(shard_index=0,
                             codes=np.asarray(reads[0])[None, :],
                             keys=(0,), threshold=THRESHOLD, seed=5,
                             config=None, error_model=model)
            (outcome, summary), = engine.run_tasks([good])
            assert outcome.decisions.shape[0] == 1
            assert summary.stats.n_searches >= 1
        finally:
            engine.close()


class TestNoLeaks:
    def test_no_resource_tracker_warnings(self, workload, tmp_path):
        """A full create/run/close cycle plus an *abandoned* engine
        must leave no shared-memory segments and print no
        ``resource_tracker`` leak noise at interpreter exit."""
        script = tmp_path / "leak_probe.py"
        script.write_text(textwrap.dedent("""
            import gc
            import numpy as np

            def main():
                from repro.core.pipeline import ShardedReadMappingPipeline
                from repro.genome.edits import ErrorModel
                rng = np.random.default_rng(7)
                segments = rng.integers(0, 4, size=(48, 80),
                                        dtype=np.uint8)
                model = ErrorModel(substitution=0.02, insertion=0.01,
                                   deletion=0.01)
                reads = [segments[i] for i in range(6)]
                pipe = ShardedReadMappingPipeline(
                    segments, model, n_shards=2, seed=5, chunk_size=8,
                    engine="process", max_workers=1)
                pipe.run(reads, 8)
                names = [owner.name
                         for owner in pipe.process_engine()._owners]
                pipe.close()
                from multiprocessing import shared_memory
                for name in names:
                    try:
                        shared_memory.SharedMemory(name=name).close()
                    except FileNotFoundError:
                        pass
                    else:
                        raise SystemExit(f"segment {name} survived close")
                # Abandon a second engine entirely: the finalize guard
                # must unlink at garbage collection / interpreter exit.
                pipe = ShardedReadMappingPipeline(
                    segments, model, n_shards=2, seed=5, chunk_size=8,
                    engine="process", max_workers=1)
                pipe.run(reads, 8)
                del pipe
                gc.collect()
                print("LEAK-PROBE-OK")

            if __name__ == "__main__":
                main()
        """))
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src
        result = subprocess.run(
            [sys.executable, str(script)], capture_output=True,
            text=True, timeout=300, env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "LEAK-PROBE-OK" in result.stdout
        assert "resource_tracker" not in result.stderr
        assert "leaked" not in result.stderr


class TestEngineResolution:
    def test_env_var_selects_process(self, workload, monkeypatch):
        segments, model, reads = workload
        monkeypatch.setenv(autotune.ENGINE_ENV, "process")
        with ShardedReadMappingPipeline(
                segments, model, n_shards=2, seed=5,
                chunk_size=8, max_workers=1) as pipe:
            assert pipe.engine == "process"
            assert pipe.run(reads[:4], THRESHOLD).n_reads == 4

    def test_env_var_rejects_unknown(self, workload, monkeypatch):
        segments, model, _ = workload
        monkeypatch.setenv(autotune.ENGINE_ENV, "warp")
        with pytest.raises(CamConfigError, match="engine"):
            ShardedReadMappingPipeline(segments, model, n_shards=2)

    def test_knob_rejects_unknown(self, workload):
        segments, model, _ = workload
        with pytest.raises(CamConfigError, match="engine"):
            ShardedReadMappingPipeline(segments, model, n_shards=2,
                                       engine="warp")

    def test_default_resolution_on_small_host_is_thread(self, workload,
                                                        monkeypatch):
        segments, model, _ = workload
        monkeypatch.delenv(autotune.ENGINE_ENV, raising=False)
        # This reference is tiny and the plan is CPU-gated, so the
        # autotuned default must stay on threads (backward compatible).
        with ShardedReadMappingPipeline(segments, model,
                                        n_shards=2) as pipe:
            assert pipe.engine == autotune.plan_engine(
                segments.shape[0], segments.shape[1], n_shards=2)
