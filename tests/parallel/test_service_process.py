"""Service-layer tests for ``shard_engine="process"``.

The streaming service and the multi-session frontend must keep their
bit-identity contracts whichever fan-out engine runs underneath — and
the ``shard_engine`` knob must be validated at every boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CamConfigError, ServiceError
from repro.genome.edits import ErrorModel
from repro.knobs import validate_service_knobs
from repro.service.frontend import MappingFrontend
from repro.service.stream import StreamingMappingService

# Threaded/process stress paths: a deadlock must fail loud in CI,
# not eat the job timeout (inert without the pytest-timeout plugin).
pytestmark = pytest.mark.timeout(120)

THRESHOLD = 8


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(11)
    segments = rng.integers(0, 4, size=(48, 80), dtype=np.uint8)
    model = ErrorModel(substitution=0.02, insertion=0.01, deletion=0.01)
    reads = [segments[(i * 5) % 48] for i in range(25)]
    return segments, model, reads


def _reports_identical(a, b) -> None:
    assert a.n_reads == b.n_reads
    assert a.total_energy_joules == b.total_energy_joules
    assert a.total_latency_ns == b.total_latency_ns
    assert ([m.matched_rows for m in a.mappings]
            == [m.matched_rows for m in b.mappings])


class TestStreamingService:
    def _run(self, workload, shard_engine):
        segments, model, reads = workload
        with StreamingMappingService(
                segments, model, threshold=THRESHOLD, engine="sharded",
                n_shards=2, micro_batch=4, seed=3, max_workers=2,
                shard_engine=shard_engine) as service:
            service.submit_many(reads)
            report = service.drain()
            return report, service.stats(), service.shard_engine

    def test_process_stream_is_bit_identical(self, workload):
        thread_report, thread_stats, thread_kind = self._run(workload,
                                                             "thread")
        process_report, process_stats, process_kind = self._run(
            workload, "process")
        assert (thread_kind, process_kind) == ("thread", "process")
        _reports_identical(thread_report, process_report)
        assert process_stats.n_searches == thread_stats.n_searches
        assert process_stats.pass_counts == thread_stats.pass_counts
        assert process_stats.reads_dispatched == \
            thread_stats.reads_dispatched
        # The worker-side folds are visible as observability evidence.
        assert process_stats.ledger_events_folded > 0
        assert process_stats.compactions > 0

    def test_shard_engine_on_batched_engine_rejected(self, workload):
        segments, model, _ = workload
        with pytest.raises(ServiceError, match="sharded"):
            StreamingMappingService(segments, model, threshold=THRESHOLD,
                                    engine="batched",
                                    shard_engine="process")

    def test_batched_service_has_no_shard_engine(self, workload):
        segments, model, _ = workload
        with StreamingMappingService(segments, model,
                                     threshold=THRESHOLD) as service:
            assert service.shard_engine is None

    def test_invalid_shard_engine_rejected(self, workload):
        segments, model, _ = workload
        with pytest.raises(CamConfigError, match="engine"):
            StreamingMappingService(segments, model, threshold=THRESHOLD,
                                    engine="sharded", shard_engine="warp")


class TestKnobValidation:
    def test_engine_knob_names(self):
        validate_service_knobs(engine=None)
        validate_service_knobs(engine="thread")
        validate_service_knobs(engine="process")
        with pytest.raises(CamConfigError, match="engine"):
            validate_service_knobs(engine="fork")


class TestFrontend:
    def _run(self, workload, shard_engine):
        segments, model, reads = workload
        with MappingFrontend(segments, model, engine="sharded",
                             n_shards=2,
                             shard_engine=shard_engine) as frontend:
            first = frontend.session(threshold=THRESHOLD, seed=3,
                                     micro_batch=4)
            second = frontend.session(threshold=THRESHOLD, seed=11,
                                      micro_batch=5)
            first.submit_many(reads)
            second.submit_many(reads[:13])
            reports = (first.close(), second.close())
            return (reports, first.stats(), frontend.shard_engine,
                    frontend.encode_count())

    def test_sessions_bit_identical_across_engines(self, workload):
        thread_run = self._run(workload, "thread")
        process_run = self._run(workload, "process")
        assert (thread_run[2], process_run[2]) == ("thread", "process")
        for thread_report, process_report in zip(thread_run[0],
                                                 process_run[0], strict=True):
            _reports_identical(thread_report, process_report)
        assert process_run[1].n_searches == thread_run[1].n_searches
        assert process_run[1].pass_counts == thread_run[1].pass_counts

    def test_sessions_share_one_process_engine(self, workload):
        segments, model, reads = workload
        with MappingFrontend(segments, model, engine="sharded",
                             n_shards=2,
                             shard_engine="process") as frontend:
            engine = frontend.process_engine()
            assert engine is not None
            first = frontend.session(threshold=THRESHOLD, seed=3,
                                     micro_batch=4)
            second = frontend.session(threshold=THRESHOLD, seed=11,
                                      micro_batch=4)
            assert first.pipeline.process_engine() is engine
            assert second.pipeline.process_engine() is engine
            first.submit_many(reads[:8])
            second.submit_many(reads[:8])
            first.close()
            second.close()
            # One spawn, one share: the encode-once economics extend
            # across every session.
            assert frontend.encode_count() == 2
            assert engine.worker_encode_counts() == tuple(
                0 for _ in range(engine.n_workers)
            )
        assert engine.closed

    def test_shard_engine_on_batched_frontend_rejected(self, workload):
        segments, model, _ = workload
        with pytest.raises(ServiceError, match="sharded"):
            MappingFrontend(segments, model, engine="batched",
                            shard_engine="process")

    def test_batched_frontend_has_no_shard_engine(self, workload):
        segments, model, _ = workload
        with MappingFrontend(segments, model) as frontend:
            assert frontend.shard_engine is None
            assert frontend.process_engine() is None
