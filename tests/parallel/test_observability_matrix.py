"""Observability across the engine x compaction matrix.

``merged_stats()`` / ``ledger_observability()`` are the operator's
whole-system evidence, and the determinism contract extends to them:
the integer counters must be identical across the thread engine, the
process engine, compacted ledgers and append-only ledgers for the
same seeded run — compaction and fan-out change *where* events fold,
never *what* they count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import ShardedReadMappingPipeline
from repro.genome.edits import ErrorModel

# Threaded/process stress paths: a deadlock must fail loud in CI,
# not eat the job timeout (inert without the pytest-timeout plugin).
pytestmark = pytest.mark.timeout(120)

THRESHOLD = 8
N_SHARDS = 2
COMPACTIONS = (None, 8)
ENGINES = ("thread", "process")


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0xBEEF)
    segments = rng.integers(0, 4, size=(96, 64), dtype=np.uint8)
    reads = [segments[(j * 11) % 96].copy() for j in range(20)]
    return segments, reads


def _run(workload, engine: str, compaction: "int | None"):
    segments, reads = workload
    pipeline = ShardedReadMappingPipeline(
        segments, ErrorModel(substitution=0.02, insertion=0.01,
                             deletion=0.01),
        n_shards=N_SHARDS, seed=5, max_workers=1,
        # Small chunks so the run produces enough ledger events for
        # the compaction bound to actually engage.
        chunk_size=4,
        ledger_compaction=compaction, engine=engine,
    )
    try:
        report = pipeline.run(reads, threshold=THRESHOLD)
        stats = pipeline.merged_stats()
        observability = pipeline.ledger_observability()
        return report, stats, observability
    finally:
        pipeline.close()


@pytest.fixture(scope="module")
def matrix(workload):
    """One run per engine x compaction cell."""
    return {
        (engine, compaction): _run(workload, engine, compaction)
        for engine in ENGINES
        for compaction in COMPACTIONS
    }


class TestMergedStatsMatrix:
    def test_integer_counters_identical_across_matrix(self, matrix):
        baseline = matrix[("thread", None)][1]
        assert baseline.n_searches > 0
        for key, (_, stats, _) in matrix.items():
            assert stats.n_searches == baseline.n_searches, key
            assert stats.n_rotation_cycles == \
                baseline.n_rotation_cycles, key

    def test_thread_float_totals_exact_under_compaction(self, matrix):
        # Same engine, same fold order: compaction restores the folded
        # prefix exactly, so even the float totals are bit-identical.
        plain = matrix[("thread", None)][1]
        compacted = matrix[("thread", 8)][1]
        assert compacted.total_energy_joules == \
            plain.total_energy_joules
        assert compacted.total_latency_ns == plain.total_latency_ns

    def test_process_float_totals_match_to_precision(self, matrix):
        # Process workers fold per task, so float grouping differs:
        # the contract is float-precision agreement, not bit identity.
        plain = matrix[("thread", None)][1]
        for compaction in COMPACTIONS:
            stats = matrix[("process", compaction)][1]
            assert stats.total_energy_joules == pytest.approx(
                plain.total_energy_joules, rel=1e-12)
            assert stats.total_latency_ns == pytest.approx(
                plain.total_latency_ns, rel=1e-12)

    def test_reports_bit_identical_across_matrix(self, matrix):
        baseline = matrix[("thread", None)][0]
        for key, (report, _, _) in matrix.items():
            assert report.n_mapped == baseline.n_mapped, key
            assert report.total_energy_joules == \
                baseline.total_energy_joules, key
            assert report.total_latency_ns == \
                baseline.total_latency_ns, key
            assert [m.matched_rows for m in report.mappings] == \
                [m.matched_rows for m in baseline.mappings], key


class TestLedgerObservabilityMatrix:
    def test_pass_counts_identical_across_matrix(self, matrix):
        baseline = matrix[("thread", None)][2][0]
        assert baseline  # at least one pass kind counted
        for key, (_, _, observability) in matrix.items():
            assert observability[0] == baseline, key

    def test_thread_append_only_never_compacts(self, matrix):
        _, live, folded, _, compactions = matrix[("thread", None)][2]
        assert compactions == 0
        assert folded == 0
        assert live > 0

    def test_thread_compaction_bounds_live_events(self, matrix):
        _, live_plain, _, _, _ = matrix[("thread", None)][2]
        _, live, folded, _, compactions = matrix[("thread", 8)][2]
        assert compactions > 0
        assert folded > 0
        assert live < live_plain

    def test_process_folds_at_worker_boundary(self, matrix):
        # Worker-side folds count as compactions even without a
        # ledger bound — the fold at the process boundary is real.
        for compaction in COMPACTIONS:
            _, _, folded, _, compactions = \
                matrix[("process", compaction)][2]
            assert compactions > 0, compaction
            assert folded > 0, compaction

    def test_population_stays_with_live_events(self, matrix):
        # Population is a property of *live* events: the thread engine
        # reports it (shrinking as compaction folds events away); the
        # process engine folds worker-side, so no live shard events —
        # and no population — ever cross the boundary.
        plain = matrix[("thread", None)][2][3]
        compacted = matrix[("thread", 8)][2][3]
        assert plain > 0
        assert 0 < compacted < plain
        for compaction in COMPACTIONS:
            assert matrix[("process", compaction)][2][3] == 0
