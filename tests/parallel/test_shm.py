"""Tests for the shared-memory stored-reference transport.

The process engine's substrate: sharing must be a bit-exact,
zero-copy, encode-free roundtrip, and every corrupted / foreign /
vanished segment must fail loudly with
:class:`~repro.errors.CamConfigError` — never with silently wrong
mismatch counts.
"""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.cam.array import StoredReference
from repro.errors import CamConfigError
from repro.kernels import ENCODED_REFERENCE_FIELDS, encoded_reference_arrays
from repro.parallel import (
    SHM_MAGIC,
    attach_stored_reference,
    share_stored_reference,
)
from repro.parallel.shm import _HEADER, _aligned

# Threaded/process stress paths: a deadlock must fail loud in CI,
# not eat the job timeout (inert without the pytest-timeout plugin).
pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def reference() -> StoredReference:
    rng = np.random.default_rng(42)
    segments = rng.integers(0, 4, size=(32, 96), dtype=np.uint8)
    return StoredReference.encode(segments)


def _segment_layout(name: str) -> "tuple[int, int]":
    """``(payload_start, payload_length)`` parsed from a live segment."""
    shm = shared_memory.SharedMemory(name=name)
    try:
        _, _, meta_length, _, _, payload_length = _HEADER.unpack_from(
            shm.buf, 0
        )
        return _aligned(_HEADER.size + meta_length), payload_length
    finally:
        shm.close()


class TestRoundtrip:
    def test_attach_is_bit_exact(self, reference):
        with share_stored_reference(reference) as owner:
            with attach_stored_reference(owner.handle) as attachment:
                original = dict(
                    encoded_reference_arrays(reference.encoded())
                )
                mirrored = dict(
                    encoded_reference_arrays(
                        attachment.reference.encoded())
                )
                assert tuple(mirrored) == ENCODED_REFERENCE_FIELDS
                for name in ENCODED_REFERENCE_FIELDS:
                    assert original[name].dtype == mirrored[name].dtype
                    np.testing.assert_array_equal(
                        original[name], mirrored[name]
                    )

    def test_attached_reference_is_sealed_without_encoding(self, reference):
        with share_stored_reference(reference) as owner:
            with attach_stored_reference(owner.handle) as attachment:
                mirrored = attachment.reference
                assert mirrored.sealed
                assert mirrored.n_encodes == 0
                mirrored.encoded()
                # Reading the cached encoding must never count as an
                # encode pass — the worker-side encode-once evidence.
                assert mirrored.n_encodes == 0

    def test_attached_views_are_read_only(self, reference):
        with share_stored_reference(reference) as owner:
            with attach_stored_reference(owner.handle) as attachment:
                arrays = dict(encoded_reference_arrays(
                    attachment.reference.encoded()
                ))
                for name in ENCODED_REFERENCE_FIELDS:
                    with pytest.raises(ValueError):
                        arrays[name].flat[0] = 0

    def test_accepts_bare_segment_name(self, reference):
        with share_stored_reference(reference) as owner:
            with attach_stored_reference(owner.name) as attachment:
                assert attachment.reference.sealed


class TestSharePreconditions:
    def test_unsealed_reference_rejected(self):
        with pytest.raises(CamConfigError, match="sealed"):
            share_stored_reference(StoredReference(rows=4, cols=8))


class TestValidation:
    def test_unknown_name(self):
        with pytest.raises(CamConfigError, match="no shared reference"):
            attach_stored_reference("asmcap-test-no-such-segment")

    def _corrupt(self, name: str, offset: int) -> None:
        shm = shared_memory.SharedMemory(name=name)
        try:
            shm.buf[offset] ^= 0xFF
        finally:
            shm.close()

    def test_bad_magic(self, reference):
        with share_stored_reference(reference) as owner:
            self._corrupt(owner.name, 0)
            with pytest.raises(CamConfigError, match="bad magic"):
                attach_stored_reference(owner.handle)

    def test_bad_version(self, reference):
        with share_stored_reference(reference) as owner:
            # The version field sits right after the 8-byte magic.
            self._corrupt(owner.name, len(SHM_MAGIC))
            with pytest.raises(CamConfigError, match="header version"):
                attach_stored_reference(owner.handle)

    def test_meta_corruption(self, reference):
        with share_stored_reference(reference) as owner:
            self._corrupt(owner.name, _HEADER.size)
            with pytest.raises(CamConfigError, match="meta checksum"):
                attach_stored_reference(owner.handle)

    def test_payload_corruption(self, reference):
        with share_stored_reference(reference) as owner:
            payload_start, payload_length = _segment_layout(owner.name)
            assert payload_length > 0
            self._corrupt(owner.name, payload_start + payload_length - 1)
            with pytest.raises(CamConfigError, match="payload checksum"):
                attach_stored_reference(owner.handle)

    def test_truncated_header(self, reference):
        shm = shared_memory.SharedMemory(create=True, size=4)
        try:
            with pytest.raises(CamConfigError,
                               match="smaller than a header"):
                attach_stored_reference(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_truncated_payload(self, reference):
        with share_stored_reference(reference) as owner:
            # Lie about the payload length: promise more bytes than
            # the segment holds.
            shm = shared_memory.SharedMemory(name=owner.name)
            try:
                struct.pack_into("<Q", shm.buf, _HEADER.size - 8,
                                 1 << 62)
            finally:
                shm.close()
            with pytest.raises(CamConfigError, match="truncated"):
                attach_stored_reference(owner.handle)


class TestLifecycle:
    def test_owner_close_is_idempotent(self, reference):
        owner = share_stored_reference(reference)
        name = owner.name
        owner.close()
        owner.close()
        assert owner.closed
        assert owner.nbytes == 0
        with pytest.raises(CamConfigError, match="closed"):
            owner.handle
        with pytest.raises(CamConfigError, match="no shared reference"):
            attach_stored_reference(name)

    def test_attach_close_is_idempotent(self, reference):
        with share_stored_reference(reference) as owner:
            attachment = attach_stored_reference(owner.handle)
            attachment.close()
            attachment.close()
            assert attachment.closed
            with pytest.raises(CamConfigError, match="closed"):
                attachment.reference

    def test_attachment_survives_while_owner_lives(self, reference):
        with share_stored_reference(reference) as owner:
            first = attach_stored_reference(owner.handle)
            second = attach_stored_reference(owner.handle)
            np.testing.assert_array_equal(
                first.reference.encoded().segments,
                second.reference.encoded().segments,
            )
            first.close()
            # The second attachment still reads the same pages.
            assert second.reference.sealed
            second.close()
