"""End-to-end integration tests across module boundaries.

These tests wire the whole stack together the way the experiments do
(genome -> distance ground truth -> CAM -> strategies -> evaluation)
and check cross-cutting invariants no single module can see.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import ArchConfig, AsmCapAccelerator, BatchScheduler
from repro.baselines import CmCpuBaseline, EdamMatcher, ResmaBaseline
from repro.cam import CamArray, MatchMode
from repro.core import MatcherConfig
from repro.distance import (
    best_semiglobal_hit,
    edit_distance,
    landau_vishkin,
    myers_edit_distance,
)
from repro.eval import AccuracyExperiment, asmcap_plain_system, label_dataset
from repro.genome import DnaSequence, build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("A", n_reads=16, read_length=128, n_segments=32,
                         seed=200)


class TestDigitalConsistency:
    """Noiseless hardware must agree exactly with the software kernels."""

    def test_all_exact_kernels_agree_on_dataset_pairs(self, dataset):
        truth = label_dataset(dataset, 8)
        for r, record in enumerate(dataset.reads[:6]):
            for s in range(0, dataset.n_segments, 7):
                segment = DnaSequence(dataset.segments[s])
                dp = edit_distance(segment, record.read)
                assert myers_edit_distance(segment, record.read) == dp
                assert landau_vishkin(segment, record.read, 10) == \
                    min(dp, 11)
                assert (truth.distances[r, s] <= truth.band) == \
                    (dp <= truth.band)

    def test_noiseless_asmcap_equals_noiseless_edam(self, dataset):
        """Same digital matching rule, different analog domain."""
        charge = CamArray(rows=32, cols=128, domain="charge", noisy=False)
        charge.store(dataset.segments)
        edam = EdamMatcher(rows=32, cols=128, noisy=False)
        edam.store(dataset.segments)
        for record in dataset.reads:
            for threshold in (1, 4, 8):
                a = charge.search(record.read.codes, threshold).matches
                e = edam.match(record.read.codes, threshold).decisions
                assert np.array_equal(a, e)

    def test_cam_match_implies_low_ed_star_not_low_ed(self, dataset):
        """A CAM 'match' bounds ED*, and ED* <= HD, but ED can exceed
        the threshold (that is the FP HDAC exists to fix)."""
        array = CamArray(rows=32, cols=128, noisy=False)
        array.store(dataset.segments)
        threshold = 2
        for record in dataset.reads:
            result = array.search(record.read.codes, threshold)
            counts_hd = array.mismatch_counts(record.read.codes,
                                              MatchMode.HAMMING)
            for s in np.flatnonzero(result.matches):
                assert result.mismatch_counts[s] <= threshold
                assert result.mismatch_counts[s] <= counts_hd[s]


class TestMappingAgreesWithAlignment:
    def test_cam_matches_confirmed_by_semiglobal(self, dataset):
        """Rows the CAM matches at a loose threshold must be placements
        semiglobal alignment also scores well."""
        array = CamArray(rows=32, cols=128, noisy=False)
        array.store(dataset.segments)
        for record in dataset.reads[:8]:
            result = array.search(record.read.codes, threshold=8)
            for s in np.flatnonzero(result.matches):
                segment = DnaSequence(dataset.segments[s])
                hit = best_semiglobal_hit(record.read, segment)
                assert hit.distance <= 10


class TestSystemLevel:
    def test_accelerator_agrees_with_single_array(self, dataset):
        """One functional array == plain CamArray behaviour."""
        config = ArchConfig(array_rows=32, array_cols=128, n_arrays=4)
        accelerator = AsmCapAccelerator(
            config, error_model=dataset.model,
            matcher_config=MatcherConfig.plain(),
            n_functional_arrays=1, noisy=False,
        )
        accelerator.load_reference(dataset.segments)
        array = CamArray(rows=32, cols=128, noisy=False)
        array.store(dataset.segments)
        for record in dataset.reads[:5]:
            system = accelerator.match_read(record.read.codes, 6)
            local = array.search(record.read.codes, 6)
            assert np.array_equal(system.matches, local.matches)

    def test_scheduler_consistent_with_accelerator_energy(self, dataset):
        """Stream-phase energy per read ~ accelerator estimate."""
        scheduler = BatchScheduler(ArchConfig.paper_system(),
                                   searches_per_read=1.0)
        schedule = scheduler.schedule(n_reads=1000, n_segments=512)
        accelerator = AsmCapAccelerator(ArchConfig.paper_system(),
                                        n_functional_arrays=1, noisy=False)
        estimate = accelerator.estimate_read_cost()
        per_read = schedule.stream_energy_joules / 1000
        assert per_read == pytest.approx(estimate.energy_joules, rel=0.05)


class TestBaselineAccuracyGroundTruth:
    def test_cm_and_resma_are_exact(self, dataset):
        """Both CM baselines decide exactly like the ground truth."""
        cm = CmCpuBaseline()
        resma = ResmaBaseline()
        truth = label_dataset(dataset, 6)
        for r, record in enumerate(dataset.reads[:5]):
            for s in range(0, dataset.n_segments, 11):
                segment = DnaSequence(dataset.segments[s])
                expected = bool(truth.labels(6)[r, s])
                assert cm.match(segment, record.read, 6).decision == expected
                assert resma.match(segment, record.read, 6).decision == \
                    expected


class TestExperimentReproducibility:
    def test_full_experiment_deterministic(self, dataset):
        first = AccuracyExperiment(dataset, [2, 4], seed=9).evaluate(
            "x", asmcap_plain_system
        ).f1_series()
        second = AccuracyExperiment(dataset, [2, 4], seed=9).evaluate(
            "x", asmcap_plain_system
        ).f1_series()
        assert first == second
