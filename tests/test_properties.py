"""Cross-cutting property-based tests (hypothesis).

Invariants that span modules — the relationships the paper's whole
argument rests on — fuzzed over random sequences, error models and
hardware parameters.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cam.array import CamArray
from repro.cam.cell import MatchMode
from repro.cam.energy import search_energy_per_row, vml_variance_eq2
from repro.core.policy import hdac_probability, tasr_lower_bound
from repro.distance.ed_star import ed_star
from repro.distance.edit_distance import edit_distance
from repro.distance.hamming import hamming_distance
from repro.genome.sequence import DnaSequence

equal_length_pair = st.integers(2, 48).flatmap(
    lambda n: st.tuples(
        st.text(alphabet="ACGT", min_size=n, max_size=n),
        st.text(alphabet="ACGT", min_size=n, max_size=n),
    )
)


class TestDistanceHierarchy:
    """ED* <= HD and ED <= HD for equal lengths; all zero on identity."""

    @settings(max_examples=120, deadline=None)
    @given(equal_length_pair)
    def test_ed_star_below_hamming(self, pair):
        segment, read = DnaSequence(pair[0]), DnaSequence(pair[1])
        assert ed_star(segment, read) <= hamming_distance(segment, read)

    @settings(max_examples=120, deadline=None)
    @given(equal_length_pair)
    def test_edit_below_hamming(self, pair):
        a, b = DnaSequence(pair[0]), DnaSequence(pair[1])
        assert edit_distance(a, b) <= hamming_distance(a, b)

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=1, max_size=48))
    def test_identity_everywhere(self, text):
        seq = DnaSequence(text)
        assert ed_star(seq, seq) == 0
        assert hamming_distance(seq, seq) == 0
        assert edit_distance(seq, seq) == 0


class TestThresholdMonotonicity:
    """Raising T can only add matches (for any fixed noiseless array)."""

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_matches_monotone_in_threshold(self, seed):
        rng = np.random.default_rng(seed)
        segments = rng.integers(0, 4, (8, 24)).astype(np.uint8)
        read = rng.integers(0, 4, 24).astype(np.uint8)
        array = CamArray(rows=8, cols=24, noisy=False)
        array.store(segments)
        previous = array.search(read, 0).matches
        for threshold in range(1, 25):
            current = array.search(read, threshold).matches
            assert (previous <= current).all()
            previous = current

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_hamming_mode_never_matches_more(self, seed):
        """HD counts dominate ED* counts, so HD matches are a subset."""
        rng = np.random.default_rng(seed)
        segments = rng.integers(0, 4, (8, 24)).astype(np.uint8)
        read = rng.integers(0, 4, 24).astype(np.uint8)
        array = CamArray(rows=8, cols=24, noisy=False)
        array.store(segments)
        for threshold in (0, 3, 8):
            ed_matches = array.search(read, threshold,
                                      MatchMode.ED_STAR).matches
            hd_matches = array.search(read, threshold,
                                      MatchMode.HAMMING).matches
            assert (hd_matches <= ed_matches).all()


class TestPolicyProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.floats(0.0, 0.5), st.floats(0.0, 0.5), st.integers(0, 32))
    def test_hdac_probability_bounded(self, es, eid, threshold):
        p = hdac_probability(es, eid, threshold)
        assert 0.0 <= p <= 1.0

    @settings(max_examples=100, deadline=None)
    @given(st.floats(1e-6, 0.5), st.integers(1, 30),
           st.floats(1e-6, 0.5), st.integers(0, 32))
    def test_hdac_monotone_in_indels(self, es, threshold_scale, eid,
                                     threshold):
        p_low = hdac_probability(0.01, eid / 2, threshold)
        p_high = hdac_probability(0.01, eid, threshold)
        assert p_high <= p_low + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(st.floats(1e-5, 0.9), st.integers(1, 2048))
    def test_tasr_bound_in_range(self, eid, length):
        bound = tasr_lower_bound(eid, length)
        assert 1 <= bound <= length + 1


class TestEnergyProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 512))
    def test_energy_symmetric_in_mismatch_count(self, n_cells):
        counts = np.arange(n_cells + 1)
        energy = search_energy_per_row(counts, n_cells)
        assert np.allclose(energy, energy[::-1])

    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 512))
    def test_variance_nonnegative_and_bounded(self, n_cells):
        counts = np.arange(n_cells + 1)
        variance = vml_variance_eq2(counts, n_cells)
        assert (variance >= 0).all()
        # Peak variance at N/2 bounds everything.
        assert variance.max() == pytest.approx(
            float(vml_variance_eq2(n_cells // 2, n_cells)), rel=0.5
        )


class TestBatchScalarEquivalence:
    """search_batch and per-query search are bit-identical.

    Fuzzed over random query blocks, geometries and thresholds, in both
    analog domains and both match modes — the invariant the batched
    engine (and everything sharded on top of it) rests on.
    """

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1),
           st.sampled_from(["charge", "current"]),
           st.sampled_from([MatchMode.ED_STAR, MatchMode.HAMMING]))
    def test_sequential_stream_matches_scalar_loop(self, seed, domain,
                                                   mode):
        """Un-keyed batches replay the scalar sequential noise stream."""
        rng = np.random.default_rng(seed)
        rows, cols = int(rng.integers(1, 12)), int(rng.integers(2, 24))
        n_queries = int(rng.integers(1, 8))
        threshold = int(rng.integers(0, cols + 1))
        segments = rng.integers(0, 4, (rows, cols)).astype(np.uint8)
        queries = rng.integers(0, 4, (n_queries, cols)).astype(np.uint8)
        batch_array = CamArray(rows=rows, cols=cols, domain=domain,
                               noisy=True, seed=seed)
        batch_array.store(segments)
        scalar_array = CamArray(rows=rows, cols=cols, domain=domain,
                                noisy=True, seed=seed)
        scalar_array.store(segments)
        batch = batch_array.search_batch(queries, threshold, mode)
        for q in range(n_queries):
            scalar = scalar_array.search(queries[q], threshold, mode)
            assert np.array_equal(batch.matches[q], scalar.matches)
            assert np.array_equal(batch.mismatch_counts[q],
                                  scalar.mismatch_counts)
            assert np.allclose(batch.v_ml[q], scalar.v_ml)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1),
           st.sampled_from(["charge", "current"]),
           st.sampled_from([MatchMode.ED_STAR, MatchMode.HAMMING]))
    def test_keyed_batch_matches_keyed_scalar(self, seed, domain, mode):
        """Keyed draws depend only on the key: order cannot matter."""
        rng = np.random.default_rng(seed)
        rows, cols = int(rng.integers(1, 12)), int(rng.integers(2, 24))
        n_queries = int(rng.integers(1, 8))
        threshold = int(rng.integers(0, cols + 1))
        segments = rng.integers(0, 4, (rows, cols)).astype(np.uint8)
        queries = rng.integers(0, 4, (n_queries, cols)).astype(np.uint8)
        array = CamArray(rows=rows, cols=cols, domain=domain,
                         noisy=True, seed=seed)
        array.store(segments)
        keys = [(int(k), 7) for k in rng.integers(0, 1 << 32, n_queries)]
        batch = array.search_batch(queries, threshold, mode,
                                   noise_keys=keys)
        for q in reversed(range(n_queries)):
            scalar = array.search(queries[q], threshold, mode,
                                  noise_key=keys[q])
            assert np.array_equal(batch.matches[q], scalar.matches)
            assert np.array_equal(batch.mismatch_counts[q],
                                  scalar.mismatch_counts)
            assert np.allclose(batch.v_ml[q], scalar.v_ml)


class TestStorageRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 16),
           st.integers(1, 32))
    def test_store_then_read_back(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        segments = rng.integers(0, 4, (rows, cols)).astype(np.uint8)
        array = CamArray(rows=rows, cols=cols, noisy=False)
        array.store(segments)
        assert np.array_equal(array.stored_segments(), segments)
        # Every stored row matches itself exactly at T = 0.
        for r in range(rows):
            result = array.search(segments[r], 0)
            assert result.matches[r]
