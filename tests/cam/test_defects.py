"""Tests for array defect injection and graceful degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.cam.defects import DefectiveArray, DefectMap
from repro.errors import CamConfigError


@pytest.fixture
def clean_array(rng):
    array = CamArray(rows=16, cols=32, noisy=False)
    array.store(rng.integers(0, 4, (16, 32)).astype(np.uint8))
    return array


class TestDefectMap:
    def test_sampling_rates(self, rng):
        defects = DefectMap.sample(100_000, 0.01, 0.02, rng)
        assert defects.stuck_match.mean() == pytest.approx(0.01, abs=0.002)
        assert defects.stuck_mismatch.mean() == pytest.approx(0.02,
                                                              abs=0.002)
        # A row cannot be stuck both ways.
        assert not (defects.stuck_match & defects.stuck_mismatch).any()

    def test_zero_rates_no_defects(self, rng):
        defects = DefectMap.sample(100, 0.0, 0.0, rng)
        assert defects.n_defective == 0

    def test_apply_overrides(self, rng):
        defects = DefectMap(
            stuck_match=np.array([True, False, False]),
            stuck_mismatch=np.array([False, True, False]),
        )
        patched = defects.apply(np.array([False, True, True]))
        assert patched.tolist() == [True, False, True]

    def test_apply_shape_checked(self):
        defects = DefectMap(stuck_match=np.zeros(3, bool),
                            stuck_mismatch=np.zeros(3, bool))
        with pytest.raises(CamConfigError):
            defects.apply(np.zeros(4, bool))

    def test_invalid_rates(self, rng):
        with pytest.raises(CamConfigError):
            DefectMap.sample(10, 1.5, 0.0, rng)


class TestDefectiveArray:
    def test_stuck_match_row_always_matches(self, clean_array, rng):
        defects = DefectMap(stuck_match=np.zeros(16, bool),
                            stuck_mismatch=np.zeros(16, bool))
        defects.stuck_match[7] = True
        wrapped = DefectiveArray(clean_array, defects)
        read = rng.integers(0, 4, 32).astype(np.uint8)
        result = wrapped.search(read, threshold=0)
        assert result.matches[7]

    def test_stuck_mismatch_row_never_matches(self, clean_array):
        defects = DefectMap(stuck_match=np.zeros(16, bool),
                            stuck_mismatch=np.zeros(16, bool))
        defects.stuck_mismatch[3] = True
        wrapped = DefectiveArray(clean_array, defects)
        stored = clean_array.stored_segments()[3]
        result = wrapped.search(stored, threshold=0)
        assert not result.matches[3]  # exact match suppressed by defect

    def test_healthy_rows_unaffected(self, clean_array, rng):
        defects = DefectMap(stuck_match=np.zeros(16, bool),
                            stuck_mismatch=np.zeros(16, bool))
        defects.stuck_match[0] = True
        wrapped = DefectiveArray(clean_array, defects)
        read = rng.integers(0, 4, 32).astype(np.uint8)
        clean = clean_array.search(read, 4).matches
        patched = wrapped.search(read, 4).matches
        assert np.array_equal(clean[1:], patched[1:])

    def test_shape_mismatch_rejected(self, clean_array):
        defects = DefectMap(stuck_match=np.zeros(8, bool),
                            stuck_mismatch=np.zeros(8, bool))
        with pytest.raises(CamConfigError):
            DefectiveArray(clean_array, defects)

    def test_accuracy_degrades_smoothly(self, rng):
        """More defects -> monotonically worse mapping, never a crash."""
        segments = rng.integers(0, 4, (32, 64)).astype(np.uint8)
        recovered = []
        for rate in (0.0, 0.1, 0.4):
            array = CamArray(rows=32, cols=64, noisy=False)
            array.store(segments)
            defects = DefectMap.sample(32, 0.0, rate,
                                       np.random.default_rng(5))
            wrapped = DefectiveArray(array, defects)
            hits = sum(
                int(wrapped.search(segments[r], 0).matches[r])
                for r in range(32)
            )
            recovered.append(hits)
        assert recovered[0] == 32
        assert recovered[0] >= recovered[1] >= recovered[2]
        assert recovered[2] < 32
