"""Tests for the TASR shift-register bank."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.shift_register import ShiftRegisterBank
from repro.errors import CamConfigError


@pytest.fixture
def bank(rng):
    bank = ShiftRegisterBank(8)
    bank.enable()
    bank.load(rng.integers(0, 4, 8).astype(np.uint8))
    return bank


class TestRotation:
    def test_rotate_left(self, bank):
        original = bank.contents()
        rotated = bank.rotate_left(1)
        assert np.array_equal(rotated, np.roll(original, -1))

    def test_rotate_right(self, bank):
        original = bank.contents()
        rotated = bank.rotate_right(2)
        assert np.array_equal(rotated, np.roll(original, 2))

    def test_left_then_right_restores(self, bank):
        original = bank.contents()
        bank.rotate_left(3)
        bank.rotate_right(3)
        assert np.array_equal(bank.contents(), original)

    def test_full_rotation_restores(self, bank):
        original = bank.contents()
        bank.rotate_left(8)
        assert np.array_equal(bank.contents(), original)

    def test_zero_rotation_costs_nothing(self, bank):
        bank.rotate_left(0)
        assert bank.shift_cycles == 0


class TestCycleAccounting:
    def test_cycles_count_per_base(self, bank):
        bank.rotate_left(3)
        bank.rotate_right(2)
        assert bank.shift_cycles == 5

    def test_net_rotation_tracked(self, bank):
        bank.rotate_left(3)
        bank.rotate_right(1)
        assert bank.net_rotation == 2

    def test_reset_counters(self, bank):
        bank.rotate_left(4)
        bank.reset_counters()
        assert bank.shift_cycles == 0

    def test_load_resets_rotation(self, bank, rng):
        bank.rotate_left(2)
        bank.load(rng.integers(0, 4, 8).astype(np.uint8))
        assert bank.net_rotation == 0


class TestGuards:
    def test_rotate_before_load(self):
        bank = ShiftRegisterBank(4)
        bank.enable()
        with pytest.raises(CamConfigError):
            bank.rotate_left()

    def test_rotate_while_disabled(self, bank):
        bank.disable()
        with pytest.raises(CamConfigError):
            bank.rotate_left()

    def test_wrong_width(self, bank):
        with pytest.raises(CamConfigError):
            bank.load(np.zeros(5, dtype=np.uint8))

    def test_invalid_codes(self, bank):
        with pytest.raises(CamConfigError):
            bank.load(np.full(8, 9, dtype=np.uint8))

    def test_invalid_width(self):
        with pytest.raises(CamConfigError):
            ShiftRegisterBank(0)

    def test_contents_are_copies(self, bank):
        before = bank.contents()
        view = bank.contents()
        view[0] = (view[0] + 1) % 4
        assert np.array_equal(bank.contents(), before)
