"""Tests for the counter-based keyed noise streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.keyed_noise import (
    fold_key,
    fold_key_block,
    fold_key_from,
    standard_normals,
    uniforms,
)


class TestFolding:
    def test_fold_is_deterministic(self):
        assert fold_key((1, 2, 3)) == fold_key((1, 2, 3))

    def test_fold_separates_nearby_keys(self):
        states = {fold_key((seed, tag)) for seed in range(4)
                  for tag in range(4)}
        assert len(states) == 16

    def test_fold_is_order_sensitive(self):
        assert fold_key((1, 2)) != fold_key((2, 1))

    def test_fold_from_continues_prefix(self):
        assert fold_key_from(fold_key((7, 8)), (9, 10)) == \
            fold_key((7, 8, 9, 10))

    def test_fold_block_matches_scalar_folds(self):
        prefix = fold_key((42,))
        columns = np.array([[0, 5], [1, 5], [2, 9]])
        block = fold_key_block(prefix, columns)
        for q, (a, b) in enumerate(columns.tolist()):
            assert int(block[q]) == fold_key((42, a, b))

    def test_fold_block_1d_columns(self):
        prefix = fold_key((3,))
        block = fold_key_block(prefix, np.arange(5))
        for q in range(5):
            assert int(block[q]) == fold_key((3, q))

    def test_negative_components_mask_consistently(self):
        assert fold_key((-1,)) == fold_key((0xFFFFFFFFFFFFFFFF,))


class TestStreams:
    def test_uniforms_in_unit_interval(self):
        draws = uniforms(fold_key((1,)), np.arange(10_000))
        assert (draws >= 0.0).all() and (draws < 1.0).all()
        assert abs(draws.mean() - 0.5) < 0.02

    def test_uniform_counters_are_independent_of_order(self):
        state = fold_key((2,))
        forward = uniforms(state, np.arange(16))
        backward = uniforms(state, np.arange(15, -1, -1))
        assert np.allclose(forward, backward[::-1])

    def test_normals_rowwise_match_scalar(self):
        """Row q of a block equals a scalar call with that state."""
        states = fold_key_block(fold_key((9,)), np.arange(6))
        block = standard_normals(states, 13)
        assert block.shape == (6, 13)
        for q in range(6):
            assert np.allclose(block[q],
                               standard_normals(int(states[q]), 13))

    @pytest.mark.parametrize("n", [1, 2, 7, 8])
    def test_normals_odd_and_even_lengths(self, n):
        draws = standard_normals(fold_key((4,)), n)
        assert draws.shape == (n,)
        assert np.isfinite(draws).all()

    def test_normals_are_standard(self):
        draws = standard_normals(fold_key((11,)), 200_000)
        assert abs(draws.mean()) < 0.02
        assert abs(draws.std() - 1.0) < 0.02

    def test_distinct_states_give_distinct_streams(self):
        a = standard_normals(fold_key((1, 0)), 32)
        b = standard_normals(fold_key((1, 1)), 32)
        assert not np.allclose(a, b)
