"""Tests for the assembled CAM array (both domains)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.cam.cell import MatchMode
from repro.distance.ed_star import ed_star_batch
from repro.distance.hamming import hamming_distance_batch
from repro.errors import CamConfigError, ThresholdError


@pytest.fixture
def stored_segments(rng):
    return rng.integers(0, 4, (16, 32)).astype(np.uint8)


@pytest.fixture
def charge_array(stored_segments):
    array = CamArray(rows=16, cols=32, domain="charge", noisy=False, seed=0)
    array.store(stored_segments)
    return array


@pytest.fixture
def current_array(stored_segments):
    array = CamArray(rows=16, cols=32, domain="current", noisy=False, seed=0)
    array.store(stored_segments)
    return array


class TestConfiguration:
    def test_invalid_domain(self):
        with pytest.raises(CamConfigError):
            CamArray(domain="optical")

    def test_search_times_match_table1(self):
        assert CamArray(rows=4, cols=4, domain="charge").search_time_ns == 0.9
        assert CamArray(rows=4, cols=4, domain="current").search_time_ns == 2.4

    def test_empty_array_search_rejected(self, rng):
        array = CamArray(rows=4, cols=8, domain="charge")
        with pytest.raises(CamConfigError):
            array.search(rng.integers(0, 4, 8).astype(np.uint8), 2)


class TestDigitalCounts:
    def test_ed_star_counts_match_kernel(self, charge_array,
                                         stored_segments, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        counts = charge_array.mismatch_counts(read, MatchMode.ED_STAR)
        assert np.array_equal(counts, ed_star_batch(stored_segments, read))

    def test_hamming_counts_match_kernel(self, charge_array,
                                         stored_segments, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        counts = charge_array.mismatch_counts(read, MatchMode.HAMMING)
        assert np.array_equal(counts,
                              hamming_distance_batch(stored_segments, read))

    def test_stored_read_matches_itself(self, charge_array, stored_segments):
        result = charge_array.search(stored_segments[3], threshold=0)
        assert result.matches[3]
        assert result.mismatch_counts[3] == 0


class TestNoiselessSearch:
    def test_decisions_equal_digital_threshold(self, charge_array,
                                               stored_segments, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        for threshold in (0, 2, 8, 31):
            result = charge_array.search(read, threshold)
            expected = result.mismatch_counts <= threshold
            assert np.array_equal(result.matches, expected)

    def test_current_domain_same_digital_behaviour(self, current_array,
                                                   charge_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        charge = charge_array.search(read, 4)
        current = current_array.search(read, 4)
        assert np.array_equal(charge.matches, current.matches)

    def test_voltage_polarity(self, charge_array, current_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        v_charge = charge_array.search(read, 4).v_ml
        v_current = current_array.search(read, 4).v_ml
        # Complementary transfer functions (same digital counts).
        assert np.allclose(v_charge + v_current, 1.2)

    def test_threshold_out_of_range(self, charge_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        with pytest.raises(ThresholdError):
            charge_array.search(read, 33)

    def test_wrong_read_width(self, charge_array):
        with pytest.raises(CamConfigError):
            charge_array.search(np.zeros(31, dtype=np.uint8), 2)


class TestNoisySearch:
    def test_noise_moves_voltages(self, stored_segments, rng):
        noisy = CamArray(rows=16, cols=32, domain="charge", noisy=True,
                         seed=1)
        noisy.store(stored_segments)
        clean = CamArray(rows=16, cols=32, domain="charge", noisy=False,
                         seed=1)
        clean.store(stored_segments)
        read = rng.integers(0, 4, 32).astype(np.uint8)
        v_noisy = noisy.search(read, 4).v_ml
        v_clean = clean.search(read, 4).v_ml
        assert not np.allclose(v_noisy, v_clean)

    def test_charge_domain_noise_rarely_flips(self, stored_segments):
        """566 >> 32 levels: the charge domain decides reliably."""
        rng = np.random.default_rng(5)
        array = CamArray(rows=16, cols=32, domain="charge", noisy=True,
                         seed=2)
        array.store(stored_segments)
        flips = 0
        for _ in range(50):
            read = rng.integers(0, 4, 32).astype(np.uint8)
            result = array.search(read, 4)
            expected = result.mismatch_counts <= 4
            flips += int((result.matches != expected).sum())
        assert flips == 0

    def test_current_domain_noise_flips_boundary(self, rng):
        """EDAM's noise floor must flip decisions at the boundary."""
        cols = 256
        segments = rng.integers(0, 4, (1, cols)).astype(np.uint8)
        array = CamArray(rows=1, cols=cols, domain="current", noisy=True,
                         seed=3)
        array.store(segments)
        # Substitute a few bases, then set the threshold exactly at the
        # resulting digital ED* so the row sits on the decision boundary.
        read = segments[0].copy()
        for i in (50, 100, 150, 200):
            read[i] = (read[i] + 2) % 4
        from repro.cam.cell import MatchMode
        boundary = int(array.mismatch_counts(read, MatchMode.ED_STAR)[0])
        assert boundary >= 1
        flips = 0
        trials = 400
        for _ in range(trials):
            result = array.search(read, boundary)
            if not result.matches[0]:
                flips += 1
        assert 0 < flips < trials  # noisy boundary, not deterministic


class TestCostAccounting:
    def test_energy_positive_and_recorded(self, charge_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        result = charge_array.search(read, 4)
        assert result.energy_joules > 0
        assert charge_array.stats.total_energy_joules == pytest.approx(
            result.energy_joules
        )

    def test_current_domain_costs_more_energy(self, charge_array,
                                              current_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        e_charge = charge_array.search(read, 4).energy_joules
        e_current = current_array.search(read, 4).energy_joules
        assert e_current > e_charge

    def test_stats_accumulate(self, charge_array, rng):
        for _ in range(3):
            charge_array.search(rng.integers(0, 4, 32).astype(np.uint8), 4)
        assert charge_array.stats.n_searches == 3
        assert charge_array.stats.total_latency_ns == pytest.approx(3 * 0.9)


class TestRotatedSearch:
    def test_rotation_applied(self, charge_array, stored_segments):
        # Store a segment, search its right-rotated version with a left
        # rotation: the rotations cancel and the row matches exactly.
        rotated_read = np.roll(stored_segments[5], 1)
        result = charge_array.search_rotated(rotated_read, 0, rotation=1)
        assert result.matches[5]
        assert result.mismatch_counts[5] == 0

    def test_rotation_cycles_recorded(self, charge_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        charge_array.search_rotated(read, 4, rotation=2)
        charge_array.search_rotated(read, 4, rotation=-3)
        assert charge_array.stats.n_rotation_cycles == 5
