"""Tests for the assembled CAM array (both domains)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray, StoredReference
from repro.cam.cell import MatchMode
from repro.distance.ed_star import ed_star_batch
from repro.distance.hamming import hamming_distance_batch
from repro.errors import CamConfigError, ThresholdError


@pytest.fixture
def stored_segments(rng):
    return rng.integers(0, 4, (16, 32)).astype(np.uint8)


@pytest.fixture
def charge_array(stored_segments):
    array = CamArray(rows=16, cols=32, domain="charge", noisy=False, seed=0)
    array.store(stored_segments)
    return array


@pytest.fixture
def current_array(stored_segments):
    array = CamArray(rows=16, cols=32, domain="current", noisy=False, seed=0)
    array.store(stored_segments)
    return array


class TestConfiguration:
    def test_invalid_domain(self):
        with pytest.raises(CamConfigError):
            CamArray(domain="optical")

    def test_search_times_match_table1(self):
        assert CamArray(rows=4, cols=4, domain="charge").search_time_ns == 0.9
        assert CamArray(rows=4, cols=4, domain="current").search_time_ns == 2.4

    def test_empty_array_search_rejected(self, rng):
        array = CamArray(rows=4, cols=8, domain="charge")
        with pytest.raises(CamConfigError):
            array.search(rng.integers(0, 4, 8).astype(np.uint8), 2)


class TestDigitalCounts:
    def test_ed_star_counts_match_kernel(self, charge_array,
                                         stored_segments, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        counts = charge_array.mismatch_counts(read, MatchMode.ED_STAR)
        assert np.array_equal(counts, ed_star_batch(stored_segments, read))

    def test_hamming_counts_match_kernel(self, charge_array,
                                         stored_segments, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        counts = charge_array.mismatch_counts(read, MatchMode.HAMMING)
        assert np.array_equal(counts,
                              hamming_distance_batch(stored_segments, read))

    def test_stored_read_matches_itself(self, charge_array, stored_segments):
        result = charge_array.search(stored_segments[3], threshold=0)
        assert result.matches[3]
        assert result.mismatch_counts[3] == 0


class TestNoiselessSearch:
    def test_decisions_equal_digital_threshold(self, charge_array,
                                               stored_segments, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        for threshold in (0, 2, 8, 31):
            result = charge_array.search(read, threshold)
            expected = result.mismatch_counts <= threshold
            assert np.array_equal(result.matches, expected)

    def test_current_domain_same_digital_behaviour(self, current_array,
                                                   charge_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        charge = charge_array.search(read, 4)
        current = current_array.search(read, 4)
        assert np.array_equal(charge.matches, current.matches)

    def test_voltage_polarity(self, charge_array, current_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        v_charge = charge_array.search(read, 4).v_ml
        v_current = current_array.search(read, 4).v_ml
        # Complementary transfer functions (same digital counts).
        assert np.allclose(v_charge + v_current, 1.2)

    def test_threshold_out_of_range(self, charge_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        with pytest.raises(ThresholdError):
            charge_array.search(read, 33)

    def test_wrong_read_width(self, charge_array):
        with pytest.raises(CamConfigError):
            charge_array.search(np.zeros(31, dtype=np.uint8), 2)


class TestNoisySearch:
    def test_noise_moves_voltages(self, stored_segments, rng):
        noisy = CamArray(rows=16, cols=32, domain="charge", noisy=True,
                         seed=1)
        noisy.store(stored_segments)
        clean = CamArray(rows=16, cols=32, domain="charge", noisy=False,
                         seed=1)
        clean.store(stored_segments)
        read = rng.integers(0, 4, 32).astype(np.uint8)
        v_noisy = noisy.search(read, 4).v_ml
        v_clean = clean.search(read, 4).v_ml
        assert not np.allclose(v_noisy, v_clean)

    def test_charge_domain_noise_rarely_flips(self, stored_segments):
        """566 >> 32 levels: the charge domain decides reliably."""
        rng = np.random.default_rng(5)
        array = CamArray(rows=16, cols=32, domain="charge", noisy=True,
                         seed=2)
        array.store(stored_segments)
        flips = 0
        for _ in range(50):
            read = rng.integers(0, 4, 32).astype(np.uint8)
            result = array.search(read, 4)
            expected = result.mismatch_counts <= 4
            flips += int((result.matches != expected).sum())
        assert flips == 0

    def test_current_domain_noise_flips_boundary(self, rng):
        """EDAM's noise floor must flip decisions at the boundary."""
        cols = 256
        segments = rng.integers(0, 4, (1, cols)).astype(np.uint8)
        array = CamArray(rows=1, cols=cols, domain="current", noisy=True,
                         seed=3)
        array.store(segments)
        # Substitute a few bases, then set the threshold exactly at the
        # resulting digital ED* so the row sits on the decision boundary.
        read = segments[0].copy()
        for i in (50, 100, 150, 200):
            read[i] = (read[i] + 2) % 4
        from repro.cam.cell import MatchMode
        boundary = int(array.mismatch_counts(read, MatchMode.ED_STAR)[0])
        assert boundary >= 1
        flips = 0
        trials = 400
        for _ in range(trials):
            result = array.search(read, boundary)
            if not result.matches[0]:
                flips += 1
        assert 0 < flips < trials  # noisy boundary, not deterministic


class TestCostAccounting:
    def test_energy_positive_and_recorded(self, charge_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        result = charge_array.search(read, 4)
        assert result.energy_joules > 0
        assert charge_array.stats.total_energy_joules == pytest.approx(
            result.energy_joules
        )

    def test_current_domain_costs_more_energy(self, charge_array,
                                              current_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        e_charge = charge_array.search(read, 4).energy_joules
        e_current = current_array.search(read, 4).energy_joules
        assert e_current > e_charge

    def test_stats_accumulate(self, charge_array, rng):
        for _ in range(3):
            charge_array.search(rng.integers(0, 4, 32).astype(np.uint8), 4)
        assert charge_array.stats.n_searches == 3
        assert charge_array.stats.total_latency_ns == pytest.approx(3 * 0.9)


class TestBatchSearch:
    def test_counts_match_scalar_all_modes(self, charge_array,
                                           stored_segments, rng):
        reads = rng.integers(0, 4, (9, 32)).astype(np.uint8)
        for mode in (MatchMode.ED_STAR, MatchMode.HAMMING):
            counts = charge_array.mismatch_counts_batch(reads, mode)
            for q in range(9):
                assert np.array_equal(
                    counts[q], charge_array.mismatch_counts(reads[q], mode)
                )

    def test_dual_counts_match_single_mode(self, charge_array, rng):
        reads = rng.integers(0, 4, (6, 32)).astype(np.uint8)
        ed, hd = charge_array.mismatch_counts_batch_dual(reads)
        assert np.array_equal(
            ed, charge_array.mismatch_counts_batch(reads, MatchMode.ED_STAR)
        )
        assert np.array_equal(
            hd, charge_array.mismatch_counts_batch(reads, MatchMode.HAMMING)
        )

    def test_sequential_stream_equivalence(self, stored_segments, rng):
        """Un-keyed batch == consecutive scalar searches, same seed."""
        reads = rng.integers(0, 4, (5, 32)).astype(np.uint8)
        for domain in ("charge", "current"):
            batch_array = CamArray(rows=16, cols=32, domain=domain,
                                   noisy=True, seed=8)
            batch_array.store(stored_segments)
            scalar_array = CamArray(rows=16, cols=32, domain=domain,
                                    noisy=True, seed=8)
            scalar_array.store(stored_segments)
            batch = batch_array.search_batch(reads, 6)
            for q in range(5):
                scalar = scalar_array.search(reads[q], 6)
                assert np.array_equal(batch.matches[q], scalar.matches)
                assert np.allclose(batch.v_ml[q], scalar.v_ml)

    def test_keyed_noise_is_order_independent(self, stored_segments, rng):
        """Keyed scalar replay in any order matches the batch rows."""
        reads = rng.integers(0, 4, (5, 32)).astype(np.uint8)
        array = CamArray(rows=16, cols=32, domain="charge", noisy=True,
                         seed=4)
        array.store(stored_segments)
        keys = [(100 + q, 1) for q in range(5)]
        batch = array.search_batch(reads, 6, noise_keys=keys)
        for q in reversed(range(5)):
            scalar = array.search(reads[q], 6, noise_key=keys[q])
            assert np.allclose(batch.v_ml[q], scalar.v_ml)
            assert np.array_equal(batch.matches[q], scalar.matches)

    def test_per_query_thresholds(self, charge_array, rng):
        reads = rng.integers(0, 4, (4, 32)).astype(np.uint8)
        thresholds = np.array([0, 4, 16, 32])
        batch = charge_array.search_batch(reads, thresholds)
        for q in range(4):
            scalar = charge_array.search(reads[q], int(thresholds[q]))
            assert np.array_equal(batch.matches[q], scalar.matches)

    def test_energy_matches_scalar(self, charge_array, current_array, rng):
        reads = rng.integers(0, 4, (3, 32)).astype(np.uint8)
        for array in (charge_array, current_array):
            batch = array.search_batch(reads, 5)
            for q in range(3):
                scalar = array.search(reads[q], 5)
                assert batch.energy_per_query_joules[q] == pytest.approx(
                    scalar.energy_joules
                )
            assert batch.energy_joules == pytest.approx(
                batch.energy_per_query_joules.sum()
            )

    def test_batch_stats_recorded(self, stored_segments, rng):
        array = CamArray(rows=16, cols=32, noisy=False)
        array.store(stored_segments)
        reads = rng.integers(0, 4, (6, 32)).astype(np.uint8)
        array.search_batch(reads, 4)
        assert array.stats.n_searches == 6
        assert array.stats.total_latency_ns == pytest.approx(6 * 0.9)

    def test_empty_batch(self, charge_array):
        batch = charge_array.search_batch(
            np.zeros((0, 32), dtype=np.uint8), 4
        )
        assert batch.n_queries == 0
        assert batch.matches.shape == (0, 16)
        assert batch.energy_joules == 0.0
        assert batch.amortised_latency_per_query_ns == 0.0

    def test_bad_shapes_rejected(self, charge_array, rng):
        with pytest.raises(CamConfigError):
            charge_array.search_batch(np.zeros((2, 31), dtype=np.uint8), 4)
        with pytest.raises(ThresholdError):
            charge_array.search_batch(
                rng.integers(0, 4, (2, 32)).astype(np.uint8),
                np.array([2, 33]),
            )
        with pytest.raises(CamConfigError):
            charge_array.search_batch(
                rng.integers(0, 4, (2, 32)).astype(np.uint8), 4,
                noise_keys=[(0, 0)],
            )

    def test_non_dna_query_codes_use_fallback(self, charge_array, rng):
        """Query codes outside ACGT still search (comparison fallback)."""
        reads = rng.integers(0, 9, (5, 32)).astype(np.uint8)
        assert reads.max() > 3
        counts = charge_array.mismatch_counts_batch(reads,
                                                    MatchMode.ED_STAR)
        for q in range(5):
            assert np.array_equal(
                counts[q],
                charge_array.mismatch_counts(reads[q], MatchMode.ED_STAR),
            )


class TestRotatedSearch:
    def test_rotation_applied(self, charge_array, stored_segments):
        # Store a segment, search its right-rotated version with a left
        # rotation: the rotations cancel and the row matches exactly.
        rotated_read = np.roll(stored_segments[5], 1)
        result = charge_array.search_rotated(rotated_read, 0, rotation=1)
        assert result.matches[5]
        assert result.mismatch_counts[5] == 0

    def test_rotation_cycles_recorded(self, charge_array, rng):
        read = rng.integers(0, 4, 32).astype(np.uint8)
        charge_array.search_rotated(read, 4, rotation=2)
        charge_array.search_rotated(read, 4, rotation=-3)
        assert charge_array.stats.n_rotation_cycles == 5


class TestStoredReference:
    """The shareable stored-segment/encoding split behind CamArray."""

    def test_encode_seals_and_precomputes(self, stored_segments):
        ref = StoredReference.encode(stored_segments)
        assert ref.sealed
        assert ref.rows == 16 and ref.cols == 32
        assert ref.n_segments == 16
        # Encoded exactly once, eagerly, at seal time.
        assert ref.n_encodes == 1
        assert np.array_equal(ref.segments, stored_segments)
        with pytest.raises(CamConfigError):
            ref.store(stored_segments)
        # The shared caches are read-only.
        with pytest.raises(ValueError):
            ref.segments[0, 0] = 1
        with pytest.raises(ValueError):
            ref.stored_onehot()[0, 0] = 0.5

    def test_encode_rejects_bad_segments(self):
        with pytest.raises(CamConfigError):
            StoredReference.encode(np.zeros((0, 8), dtype=np.uint8))
        with pytest.raises(CamConfigError):
            StoredReference(4, 8).seal()  # empty plane

    def test_borrowing_arrays_share_without_reencoding(
            self, stored_segments, rng):
        ref = StoredReference.encode(stored_segments)
        arrays = [CamArray(domain="charge", noisy=True, seed=s, stored=ref)
                  for s in range(4)]
        reads = rng.integers(0, 4, (6, 32)).astype(np.uint8)
        for array in arrays:
            assert array.shares_stored_reference
            assert array.stored is ref
            assert array.rows == 16 and array.cols == 32
            array.search_batch(reads, 4,
                               noise_keys=[(q, 0) for q in range(6)])
        # Four arrays searched; the reference was encoded once, ever.
        assert ref.n_encodes == 1
        # store() on a borrowing array must not mutate the shared state.
        with pytest.raises(CamConfigError):
            arrays[0].store(stored_segments)

    def test_unsealed_reference_cannot_be_borrowed(self):
        with pytest.raises(CamConfigError):
            CamArray(stored=StoredReference(4, 8))

    def test_shared_array_bit_identical_to_private(
            self, stored_segments, rng):
        """An array borrowing a sealed reference makes the same keyed
        decisions as one that privately stored the same segments with
        the same seed (the session bit-identity anchor)."""
        private = CamArray(rows=16, cols=32, domain="charge", noisy=True,
                           seed=9)
        private.store(stored_segments)
        shared = CamArray(domain="charge", noisy=True, seed=9,
                          stored=StoredReference.encode(stored_segments))
        reads = rng.integers(0, 4, (8, 32)).astype(np.uint8)
        keys = [(q, 1) for q in range(8)]
        ours = shared.search_batch(reads, 5, noise_keys=keys)
        theirs = private.search_batch(reads, 5, noise_keys=keys)
        assert np.array_equal(ours.matches, theirs.matches)
        assert np.array_equal(ours.v_ml, theirs.v_ml)
        assert np.array_equal(ours.mismatch_counts,
                              theirs.mismatch_counts)
        assert ours.energy_joules == theirs.energy_joules

    def test_sessions_keep_private_ledgers_and_noise(
            self, stored_segments, rng):
        ref = StoredReference.encode(stored_segments)
        a = CamArray(domain="charge", noisy=True, seed=1, stored=ref)
        b = CamArray(domain="charge", noisy=True, seed=2, stored=ref)
        read = rng.integers(0, 4, (1, 32)).astype(np.uint8)
        ra = a.search_batch(read, 4, noise_keys=[(0, 0)])
        assert len(a.ledger) == 1
        assert len(b.ledger) == 0  # ledgers are per-array, not shared
        rb = b.search_batch(read, 4, noise_keys=[(0, 0)])
        # Different seeds -> different keyed noise over the same counts.
        assert np.array_equal(ra.mismatch_counts, rb.mismatch_counts)
        assert not np.array_equal(ra.v_ml, rb.v_ml)
