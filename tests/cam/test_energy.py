"""Tests for the Eq. (1)/(2) energy and variance models."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.cam.energy import (
    search_energy_eq1,
    search_energy_per_row,
    typical_genome_energy_ratio,
    vml_variance_eq2,
    worst_case_mismatch,
)
from repro.errors import CamConfigError


class TestEq1:
    def test_zero_at_extremes(self):
        assert search_energy_eq1(0, 256, 256) == pytest.approx(0.0)
        assert search_energy_eq1(256, 256, 256) == pytest.approx(0.0)

    def test_peak_at_half(self):
        counts = np.arange(257)
        energy = search_energy_eq1(counts, 256, 256)
        assert int(np.argmax(energy)) == 128

    def test_known_value(self):
        # E = M * n(N-n)/N * C * V^2
        expected = (256 * 128 * 128 / 256
                    * constants.MIM_CAPACITOR_FARADS
                    * constants.VDD_VOLTS**2)
        assert search_energy_eq1(128, 256, 256) == pytest.approx(expected)

    def test_scales_linearly_with_rows(self):
        single = search_energy_eq1(64, 1, 256)
        many = search_energy_eq1(64, 100, 256)
        assert many == pytest.approx(100 * single)

    def test_per_row_sum_matches_eq1_for_uniform_counts(self):
        counts = np.full(256, 100)
        per_row = search_energy_per_row(counts, 256).sum()
        aggregate = search_energy_eq1(100, 256, 256)
        assert per_row == pytest.approx(float(aggregate))

    def test_invalid_counts(self):
        with pytest.raises(CamConfigError):
            search_energy_eq1(300, 256, 256)
        with pytest.raises(CamConfigError):
            search_energy_eq1(10, 0, 256)


class TestEq2:
    def test_symmetry(self):
        """Variance is symmetric around N/2 (n and N-n swap roles)."""
        variance_low = vml_variance_eq2(30, 256)
        variance_high = vml_variance_eq2(226, 256)
        assert variance_low == pytest.approx(float(variance_high))

    def test_known_worst_case(self):
        # Var = n(N-n)/N^3 * sigma^2 * V^2 at n = N/2.
        expected = (128 * 128 / 256**3
                    * constants.ASMCAP_CAPACITOR_SIGMA**2
                    * constants.VDD_VOLTS**2)
        assert vml_variance_eq2(128, 256) == pytest.approx(expected)

    def test_vanishes_at_extremes(self):
        assert vml_variance_eq2(0, 256) == pytest.approx(0.0)
        assert vml_variance_eq2(256, 256) == pytest.approx(0.0)


class TestHelpers:
    def test_worst_case_mismatch(self):
        assert worst_case_mismatch(256) == 128
        assert worst_case_mismatch(7) == 3

    def test_typical_ratio_below_one(self):
        ratio = typical_genome_energy_ratio(256)
        assert 0.0 < ratio < 1.0

    def test_typical_ratio_at_peak_is_one(self):
        assert typical_genome_energy_ratio(256, 0.5) == pytest.approx(1.0)

    def test_invalid_fraction(self):
        with pytest.raises(CamConfigError):
            typical_genome_energy_ratio(256, 1.5)
