"""Tests for the SRAM storage plane."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.sram import SramPlane
from repro.errors import CamConfigError


class TestStorage:
    def test_write_and_read_row(self, rng):
        plane = SramPlane(4, 16)
        segment = rng.integers(0, 4, 16).astype(np.uint8)
        plane.write_row(2, segment)
        assert np.array_equal(plane.read_row(2), segment)

    def test_written_mask(self, rng):
        plane = SramPlane(4, 8)
        plane.write_row(1, rng.integers(0, 4, 8).astype(np.uint8))
        assert plane.written_mask.tolist() == [False, True, False, False]
        assert plane.n_written == 1

    def test_write_all(self, rng):
        plane = SramPlane(8, 8)
        segments = rng.integers(0, 4, (5, 8)).astype(np.uint8)
        plane.write_all(segments)
        assert plane.n_written == 5
        assert np.array_equal(plane.data[:5], segments)

    def test_read_unwritten_row_raises(self):
        plane = SramPlane(2, 4)
        with pytest.raises(CamConfigError):
            plane.read_row(0)

    def test_clear(self, rng):
        plane = SramPlane(2, 4)
        plane.write_row(0, rng.integers(0, 4, 4).astype(np.uint8))
        plane.clear()
        assert plane.n_written == 0

    def test_row_out_of_range(self, rng):
        plane = SramPlane(2, 4)
        with pytest.raises(CamConfigError):
            plane.write_row(5, rng.integers(0, 4, 4).astype(np.uint8))

    def test_wrong_width(self, rng):
        plane = SramPlane(2, 4)
        with pytest.raises(CamConfigError):
            plane.write_row(0, rng.integers(0, 4, 5).astype(np.uint8))

    def test_bad_codes(self):
        plane = SramPlane(2, 4)
        with pytest.raises(CamConfigError):
            plane.write_row(0, np.array([0, 1, 2, 9], dtype=np.uint8))

    def test_too_many_segments(self, rng):
        plane = SramPlane(2, 4)
        with pytest.raises(CamConfigError):
            plane.write_all(rng.integers(0, 4, (3, 4)).astype(np.uint8))

    def test_data_view_is_read_only(self, rng):
        plane = SramPlane(2, 4)
        with pytest.raises(ValueError):
            plane.data[0, 0] = 1

    def test_invalid_geometry(self):
        with pytest.raises(CamConfigError):
            SramPlane(0, 4)


class TestFaultInjection:
    def test_zero_rate_no_flips(self, rng):
        plane = SramPlane(4, 16)
        segments = rng.integers(0, 4, (4, 16)).astype(np.uint8)
        plane.write_all(segments)
        assert plane.inject_bit_flips(0.0, rng) == 0
        assert np.array_equal(plane.data, segments)

    def test_flips_stay_in_alphabet(self, rng):
        plane = SramPlane(8, 32)
        plane.write_all(rng.integers(0, 4, (8, 32)).astype(np.uint8))
        plane.inject_bit_flips(0.5, rng)
        assert int(plane.data.max()) <= 3

    def test_full_rate_flips_everything(self, rng):
        plane = SramPlane(2, 8)
        segments = rng.integers(0, 4, (2, 8)).astype(np.uint8)
        plane.write_all(segments)
        flips = plane.inject_bit_flips(1.0, rng)
        assert flips == 2 * 2 * 8
        assert np.array_equal(plane.data, segments ^ 3)

    def test_invalid_rate(self, rng):
        plane = SramPlane(2, 4)
        with pytest.raises(CamConfigError):
            plane.inject_bit_flips(1.5, rng)


class TestBookkeeping:
    def test_transistor_count(self):
        assert SramPlane(2, 4).transistor_count() == 2 * 4 * 2 * 6

    def test_capacity_bits(self):
        assert SramPlane(256, 256).capacity_bits() == 256 * 256 * 2
