"""Tests for the single-cell comparison logic."""

from __future__ import annotations

import pytest

from repro.cam.cell import NO_NEIGHBOR, AsmCapCell, MatchMode, PartialMatch
from repro.errors import CamConfigError


class TestConstruction:
    def test_stored_base(self):
        assert AsmCapCell(2).stored_base == "G"

    def test_invalid_code(self):
        with pytest.raises(CamConfigError):
            AsmCapCell(4)


class TestCompare:
    def test_co_located_match(self):
        cell = AsmCapCell(1)  # stores C
        result = cell.compare(0, 1, 3)
        assert result == PartialMatch(o_l=False, o_c=True, o_r=False)

    def test_left_match(self):
        cell = AsmCapCell(1)
        assert cell.compare(1, 0, 3).o_l

    def test_right_match(self):
        cell = AsmCapCell(1)
        assert cell.compare(0, 3, 1).o_r

    def test_no_neighbor_never_matches(self):
        cell = AsmCapCell(0)
        result = cell.compare(NO_NEIGHBOR, 1, NO_NEIGHBOR)
        assert not (result.o_l or result.o_c or result.o_r)


class TestModeMux:
    def test_ed_star_mode_ors_planes(self):
        cell = AsmCapCell(2)
        # Only the left neighbour matches: ED* counts it as matched.
        assert cell.output(2, 0, 1, MatchMode.ED_STAR) == 0
        # Hamming mode ignores neighbours: mismatched.
        assert cell.output(2, 0, 1, MatchMode.HAMMING) == 1

    def test_all_mismatch(self):
        cell = AsmCapCell(3)
        assert cell.output(0, 1, 2, MatchMode.ED_STAR) == 1
        assert cell.output(0, 1, 2, MatchMode.HAMMING) == 1

    def test_select_signal_values(self):
        assert MatchMode.ED_STAR.select_signal == 1
        assert MatchMode.HAMMING.select_signal == 0


class TestCapacitorDrive:
    def test_mismatch_drives_vdd(self):
        cell = AsmCapCell(3)
        volts = cell.capacitor_bottom_voltage(0, 1, 2, MatchMode.ED_STAR, 1.2)
        assert volts == 1.2

    def test_match_drives_gnd(self):
        cell = AsmCapCell(1)
        volts = cell.capacitor_bottom_voltage(0, 1, 2, MatchMode.ED_STAR, 1.2)
        assert volts == 0.0


def test_transistor_budget_is_positive_and_stable():
    """The area model depends on this constant; lock its value."""
    assert AsmCapCell.TRANSISTOR_COUNT == 28
