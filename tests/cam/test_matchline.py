"""Tests for the matchline transfer functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.matchline import ChargeDomainMatchline, CurrentDomainMatchline
from repro.errors import CamConfigError


class TestChargeDomain:
    def test_linear_transfer(self):
        ml = ChargeDomainMatchline(vdd=1.2)
        volts = ml.ideal_voltage(np.array([0, 64, 128, 256]), 256)
        assert volts.tolist() == pytest.approx([0.0, 0.3, 0.6, 1.2])

    def test_level_spacing(self):
        assert ChargeDomainMatchline(vdd=1.2).level_spacing(256) == \
            pytest.approx(1.2 / 256)

    def test_scalar_input(self):
        assert ChargeDomainMatchline(vdd=1.0).ideal_voltage(5, 10) == \
            pytest.approx(0.5)

    def test_out_of_range_counts(self):
        with pytest.raises(CamConfigError):
            ChargeDomainMatchline().ideal_voltage(300, 256)

    def test_no_precharge_needed(self):
        assert not ChargeDomainMatchline.REQUIRES_PRECHARGE
        assert not ChargeDomainMatchline.REQUIRES_SAMPLING


class TestCurrentDomain:
    def test_sampled_voltage_falls_with_mismatches(self):
        ml = CurrentDomainMatchline(vdd=1.2)
        volts = ml.sampled_voltage(np.array([0, 128, 256]), 256)
        assert volts.tolist() == pytest.approx([1.2, 0.6, 0.0])

    def test_time_dependence(self):
        ml = CurrentDomainMatchline(vdd=1.2)
        early = ml.voltage_at(128, 256, 0.5)
        nominal = ml.voltage_at(128, 256, 1.0)
        assert early > nominal

    def test_voltage_saturates_at_gnd(self):
        ml = CurrentDomainMatchline(vdd=1.2)
        assert ml.voltage_at(256, 256, 2.0) == pytest.approx(0.0)

    def test_complementary_to_charge_domain(self):
        """Both domains span the same N-level scale (design point)."""
        charge = ChargeDomainMatchline(vdd=1.2)
        current = CurrentDomainMatchline(vdd=1.2)
        counts = np.arange(0, 257, 32)
        assert np.allclose(
            charge.ideal_voltage(counts, 256)
            + current.sampled_voltage(counts, 256),
            1.2,
        )

    def test_precharge_and_sampling_required(self):
        assert CurrentDomainMatchline.REQUIRES_PRECHARGE
        assert CurrentDomainMatchline.REQUIRES_SAMPLING

    def test_invalid_cells(self):
        with pytest.raises(CamConfigError):
            CurrentDomainMatchline().sampled_voltage(0, 0)
