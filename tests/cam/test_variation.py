"""Tests for the device-variation models — including the paper's
distinguishable-state counts (44 and 566), which must come out exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.cam.energy import vml_variance_eq2
from repro.cam.variation import ChargeDomainVariation, CurrentDomainVariation
from repro.errors import CamConfigError


class TestChargeDomain:
    def test_sigma_matches_eq2(self):
        model = ChargeDomainVariation()
        counts = np.array([0, 10, 128, 250, 256])
        sigma = model.sigma_vml(counts, 256)
        expected = np.sqrt(vml_variance_eq2(counts, 256))
        assert np.allclose(sigma, expected)

    def test_sigma_zero_at_extremes(self):
        model = ChargeDomainVariation()
        assert model.sigma_vml(0, 256) == pytest.approx(0.0)
        assert model.sigma_vml(256, 256) == pytest.approx(0.0)

    def test_sigma_peaks_at_half(self):
        model = ChargeDomainVariation()
        counts = np.arange(257)
        sigma = model.sigma_vml(counts, 256)
        assert int(np.argmax(sigma)) == 128

    def test_paper_states_count(self):
        assert ChargeDomainVariation().distinguishable_states() == \
            constants.ASMCAP_DISTINGUISHABLE_STATES

    def test_worst_case_consistent_with_sigma(self):
        model = ChargeDomainVariation()
        assert model.worst_case_sigma(256) == pytest.approx(
            float(model.sigma_vml(128, 256)), rel=1e-6
        )

    def test_zero_variation_rejected_for_states(self):
        with pytest.raises(CamConfigError):
            ChargeDomainVariation(sigma_rel=0.0).distinguishable_states()

    def test_noise_sampling_statistics(self, rng):
        model = ChargeDomainVariation()
        counts = np.full(20_000, 128)
        noise = model.sample_noise(counts, 256, rng)
        expected_sigma = float(model.sigma_vml(128, 256))
        assert abs(noise.std() - expected_sigma) / expected_sigma < 0.05
        assert abs(noise.mean()) < expected_sigma / 10

    def test_out_of_range_counts(self):
        with pytest.raises(CamConfigError):
            ChargeDomainVariation().sigma_vml(-1, 256)


class TestCurrentDomain:
    def test_paper_states_count(self):
        assert CurrentDomainVariation().distinguishable_states() == \
            constants.EDAM_DISTINGUISHABLE_STATES

    def test_noise_floor_consistent_with_states(self):
        model = CurrentDomainVariation()
        states = model.distinguishable_states()
        floor = model.sensing_noise_floor()
        # At exactly S levels the spacing equals 2*separation*sigma.
        spacing = model.vdd / states
        assert spacing >= 2 * constants.SIGMA_SEPARATION * floor
        # One more state would violate the rule.
        assert model.vdd / (states + 1) < 2 * constants.SIGMA_SEPARATION * floor * (states + 1) / states

    def test_uniform_floor_applied_to_all_counts(self):
        model = CurrentDomainVariation()
        sigma = model.sigma_vml(np.array([1, 50, 200]), 256)
        assert np.allclose(sigma, model.sensing_noise_floor())

    def test_count_dependent_mode(self):
        model = CurrentDomainVariation(count_dependent=True)
        sigma = model.sigma_vml(np.array([4, 16, 64]), 256)
        # sqrt scaling: quadrupling the count doubles sigma.
        assert sigma[1] == pytest.approx(2 * sigma[0])
        assert sigma[2] == pytest.approx(2 * sigma[1])

    def test_count_dependent_worst_case_matches_states_bound(self):
        """The optimistic model's worst case gives the same 44 states."""
        model = CurrentDomainVariation(count_dependent=True)
        sigma_wc = model.worst_case_sigma(44)
        spacing = model.vdd / 44
        assert spacing >= 2 * constants.SIGMA_SEPARATION * sigma_wc
        sigma_wc_45 = model.worst_case_sigma(45)
        assert model.vdd / 45 < 2 * constants.SIGMA_SEPARATION * sigma_wc_45

    def test_timing_jitter_adds(self):
        quiet = CurrentDomainVariation()
        jittery = CurrentDomainVariation(timing_jitter_rel=0.05)
        assert float(jittery.sigma_vml(128, 256)) > \
            float(quiet.sigma_vml(128, 256))

    def test_asmcap_noise_is_much_lower_at_threshold(self):
        """The core reliability claim: near small thresholds the charge
        domain's sigma sits far below the current domain's floor."""
        charge = ChargeDomainVariation()
        current = CurrentDomainVariation()
        for threshold in (1, 4, 8, 16):
            assert (float(charge.sigma_vml(threshold, 256)) * 5
                    < float(current.sigma_vml(threshold, 256)))
