"""Tests for the sense-amplifier threshold comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.sense_amp import SenseAmplifier
from repro.errors import ThresholdError


class TestReferenceVoltage:
    def test_midpoint_rule(self):
        sa = SenseAmplifier(vdd=1.2, rising=True)
        assert sa.reference_voltage(4, 256) == pytest.approx(4.5 / 256 * 1.2)

    def test_strict_paper_rule(self):
        sa = SenseAmplifier(vdd=1.2, rising=True, strict_paper_rule=True)
        assert sa.reference_voltage(4, 256) == pytest.approx(4 / 256 * 1.2)

    def test_falling_polarity(self):
        sa = SenseAmplifier(vdd=1.2, rising=False)
        assert sa.reference_voltage(4, 256) == pytest.approx(
            (1 - 4.5 / 256) * 1.2
        )

    def test_threshold_out_of_range(self):
        sa = SenseAmplifier()
        with pytest.raises(ThresholdError):
            sa.reference_voltage(-1, 256)
        with pytest.raises(ThresholdError):
            sa.reference_voltage(257, 256)


class TestDecide:
    def test_rising_decisions(self):
        sa = SenseAmplifier(vdd=1.2, rising=True)
        # counts 3, 4 -> match at T=4; count 5 -> mismatch.
        v = np.array([3, 4, 5]) / 256 * 1.2
        assert sa.decide(v, 4, 256).tolist() == [True, True, False]

    def test_falling_decisions(self):
        sa = SenseAmplifier(vdd=1.2, rising=False)
        v = (1 - np.array([3, 4, 5]) / 256) * 1.2
        assert sa.decide(v, 4, 256).tolist() == [True, True, False]

    def test_exactly_at_threshold_matches(self):
        """The midpoint rule puts count T strictly on the match side."""
        sa = SenseAmplifier(vdd=1.2, rising=True)
        v_at_t = np.array([8.0]) / 256 * 1.2
        assert sa.decide(v_at_t, 8, 256).tolist() == [True]

    def test_offset_requires_rng(self):
        sa = SenseAmplifier(offset_sigma=0.001)
        with pytest.raises(ThresholdError):
            sa.decide(np.array([0.5]), 4, 256)

    def test_offset_perturbs_boundary(self, rng):
        sa = SenseAmplifier(vdd=1.2, rising=True, offset_sigma=0.05)
        v = np.full(5000, 4.5 / 256 * 1.2)  # exactly on the boundary
        decisions = sa.decide(v, 4, 256, rng=rng)
        fraction = decisions.mean()
        assert 0.4 < fraction < 0.6  # offset splits boundary 50/50
