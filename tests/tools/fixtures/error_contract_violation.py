"""Contractlint fixture: seeded CL4xx error-contract violations."""


def guard(value):
    assert value >= 0  # expect: CL402
    if value > 100:
        raise ValueError("too large")  # expect: CL401
    return value
