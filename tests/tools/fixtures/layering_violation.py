"""Contractlint fixture: seeded CL5xx layering violations."""

from repro.service import StreamingMappingService  # expect: CL501

__all__ = ["StreamingMappingService"]
