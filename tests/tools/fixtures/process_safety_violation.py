"""Contractlint fixture: seeded CL2xx process-safety violations."""

from dataclasses import dataclass

from repro.kernels.base import KernelBackend  # expect: CL201

pending_tasks = []  # expect: CL202


@dataclass
class ShardTask:
    backend: KernelBackend  # expect: CL203
    rows: int = 0
