"""Contractlint fixture: seeded CL3xx knob-hygiene violations."""

DEFAULT_WORKERS = 4


class Plan:
    max_workers = DEFAULT_WORKERS


def configure(micro_batch, max_workers=0):  # expect: CL303
    plan = Plan()
    workers = max_workers or plan.max_workers  # expect: CL301
    batch = micro_batch if micro_batch else 8  # expect: CL301
    if not micro_batch:  # expect: CL302
        batch = 8
    return workers, batch
