"""Contractlint fixture: the clean twin of process_safety_violation."""

from dataclasses import dataclass

_PENDING_LIMIT = 4


@dataclass
class ShardTask:
    backend_name: "str | None"
    rows: int = 0


def resolve(backend_name):
    from repro.kernels import get_backend

    return get_backend(backend_name)
