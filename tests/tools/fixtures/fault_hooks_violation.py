"""Contractlint fixture: seeded CL6xx fault-hook violations."""

from repro.faults.hooks import fire as _fire_fault


def persist(buf, path, point):
    _fire_fault("refstore.sav", buf=buf)  # expect: CL601
    _fire_fault(point, path=path)  # expect: CL602


def reachable_points(self):
    return ("refstore.open", "refstore.warp")  # expect: CL604
