"""Contractlint fixture: the clean twin of layering_violation."""

from repro.cam import CamArray

__all__ = ["CamArray"]
