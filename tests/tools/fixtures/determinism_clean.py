"""Contractlint fixture: the clean twin of determinism_violation."""

import random
import time

import numpy as np


def keyed_entropy(seed):
    rng = np.random.default_rng(seed)
    lottery = random.Random(seed)
    started = time.perf_counter()
    return rng.random(), lottery.random(), started
