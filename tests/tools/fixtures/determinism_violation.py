"""Contractlint fixture: seeded CL1xx determinism violations."""

import random
import time
import uuid

import numpy as np


def entropy_soup():
    stamp = time.time()  # expect: CL101
    token = uuid.uuid4()  # expect: CL101
    rng = np.random.default_rng()  # expect: CL102
    lottery = random.Random()  # expect: CL102
    draw = np.random.rand(3)  # expect: CL103
    pick = random.random()  # expect: CL103
    return stamp, token, rng, lottery, draw, pick
