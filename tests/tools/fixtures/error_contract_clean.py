"""Contractlint fixture: the clean twin of error_contract_violation."""

from repro.errors import CamConfigError


def guard(value):
    if value < 0:
        raise CamConfigError("value must be non-negative")
    if value > 100:
        raise NotImplementedError("large values need the sharded path")
    return value
