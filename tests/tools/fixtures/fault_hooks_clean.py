"""Contractlint fixture: the clean twin of fault_hooks_violation."""

from repro.faults.hooks import fire as _fire_fault


def persist(buf, path):
    _fire_fault("refstore.save", buf=buf, path=path)


def reachable_points(self):
    return ("refstore.save", "refstore.open")
