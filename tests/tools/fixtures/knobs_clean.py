"""Contractlint fixture: the clean twin of knobs_violation."""

DEFAULT_WORKERS = 4


def configure(micro_batch=None, max_workers=None):
    workers = DEFAULT_WORKERS if max_workers is None else max_workers
    batch = 8 if micro_batch is None else micro_batch
    return workers, batch
