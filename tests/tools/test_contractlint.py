"""Golden-fixture tests for every contractlint checker.

Each checker has a seeded-violation fixture and a clean twin under
``tests/tools/fixtures/``.  Violation fixtures annotate every
offending line with ``# expect: CLxxx`` markers; the test asserts the
linter reports **exactly** that multiset of ``(line, code)`` pairs —
no misses, no extras, right lines.  Clean twins must produce zero
findings, which pins the checkers' false-positive boundary (seeded
RNGs, function-level imports, ``is None`` tests, typed raises,
downward imports, registered hook points).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from tools.contractlint import LintConfig, RepoContext, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: Knob names pinned for fixture runs (the production run reads them
#: from src/repro/knobs.py; fixtures must not depend on the tree).
KNOBS = ("micro_batch", "compaction", "max_workers", "backend",
         "engine", "shard_engine")

#: Hook points pinned for fixture runs.
HOOKS = ("refstore.save", "refstore.open")

_MARKER = re.compile(r"#\s*expect:\s*([A-Z0-9, ]+)$")


def make_repo(*, closure=(), hook_points=HOOKS) -> RepoContext:
    """A RepoContext independent of cwd and of the real tree."""
    repo = RepoContext(root=Path("."), config=LintConfig(),
                       knob_names=KNOBS, hook_points=hook_points)
    repo.shared["process_safety.closure"] = set(closure)
    return repo


def expected_markers(source: str) -> "list[tuple[int, str]]":
    """The ``(line, code)`` pairs declared by ``# expect:`` markers."""
    out = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _MARKER.search(line)
        if match:
            for code in match.group(1).split(","):
                out.append((lineno, code.strip()))
    return sorted(out)


def lint_fixture(name: str, rel_path: str, repo=None):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    findings = lint_source(source, rel_path, repo=repo or make_repo())
    return source, findings


#: (violation fixture, clean twin, rel_path it impersonates, repo kwargs)
CHECKER_CASES = [
    pytest.param("determinism_violation.py", "determinism_clean.py",
                 "src/repro/cam/fixture.py", {}, id="determinism"),
    pytest.param("process_safety_violation.py", "process_safety_clean.py",
                 "src/repro/parallel/fixture.py",
                 {"closure": ("src/repro/parallel/fixture.py",)},
                 id="process-safety"),
    pytest.param("knobs_violation.py", "knobs_clean.py",
                 "src/repro/cam/fixture.py", {}, id="knobs"),
    pytest.param("error_contract_violation.py", "error_contract_clean.py",
                 "src/repro/cam/fixture.py", {}, id="error-contract"),
    pytest.param("layering_violation.py", "layering_clean.py",
                 "src/repro/cam/fixture.py", {}, id="layering"),
    pytest.param("fault_hooks_violation.py", "fault_hooks_clean.py",
                 "src/repro/cam/fixture.py", {}, id="fault-hooks"),
]


class TestGoldenFixtures:
    @pytest.mark.parametrize("violation, clean, rel_path, repo_kwargs",
                             CHECKER_CASES)
    def test_violation_fixture_flags_exactly_the_marked_lines(
            self, violation, clean, rel_path, repo_kwargs):
        source, findings = lint_fixture(violation, rel_path,
                                        make_repo(**repo_kwargs))
        expected = expected_markers(source)
        assert expected, f"{violation} declares no # expect: markers"
        got = sorted((f.line, f.code) for f in findings)
        assert got == expected

    @pytest.mark.parametrize("violation, clean, rel_path, repo_kwargs",
                             CHECKER_CASES)
    def test_clean_twin_produces_zero_findings(
            self, violation, clean, rel_path, repo_kwargs):
        _, findings = lint_fixture(clean, rel_path,
                                   make_repo(**repo_kwargs))
        assert findings == []

    @pytest.mark.parametrize("violation, clean, rel_path, repo_kwargs",
                             CHECKER_CASES)
    def test_findings_carry_rel_path_and_messages(
            self, violation, clean, rel_path, repo_kwargs):
        _, findings = lint_fixture(violation, rel_path,
                                   make_repo(**repo_kwargs))
        for finding in findings:
            assert finding.path == rel_path
            assert finding.message
            assert finding.render().startswith(f"{rel_path}:{finding.line}:")


class TestExactMessages:
    """One exact-message pin per checker family (golden renderings)."""

    def test_cl101_message(self):
        _, findings = lint_fixture("determinism_violation.py",
                                   "src/repro/cam/fixture.py")
        cl101 = [f for f in findings if f.code == "CL101"]
        assert cl101[0].message == (
            "'time.time' reads wall-clock/OS entropy; decisions must "
            "be keyed by explicit seeds")

    def test_cl301_message_names_the_fix(self):
        _, findings = lint_fixture("knobs_violation.py",
                                   "src/repro/cam/fixture.py")
        messages = [f.message for f in findings if f.code == "CL301"]
        assert ("'max_workers or ...' silently swallows falsy explicit "
                "values (the PR 5 max_workers=0 bug); use 'max_workers "
                "if max_workers is not None else ...'") in messages

    def test_cl402_message(self):
        _, findings = lint_fixture("error_contract_violation.py",
                                   "src/repro/cam/fixture.py")
        cl402 = [f for f in findings if f.code == "CL402"]
        assert cl402[0].message == (
            "assert vanishes under 'python -O'; restructure or raise "
            "a typed repro.errors error")

    def test_cl601_message_lists_known_points(self):
        _, findings = lint_fixture("fault_hooks_violation.py",
                                   "src/repro/cam/fixture.py")
        cl601 = [f for f in findings if f.code == "CL601"]
        assert "refstore.sav" in cl601[0].message
        assert "refstore.save" in cl601[0].message  # the known list


class TestKnobCheckerCatchesThePr5Bug:
    """ISSUE acceptance: the falsy-`or` checker provably catches the
    reverted PR 5 pattern — ``max_workers=0`` silently autotuning
    instead of raising."""

    PR5_PATTERN = (
        "class ProcessShardEngine:\n"
        "    def __init__(self, max_workers, plan):\n"
        "        self._max_workers = max_workers or plan.max_workers\n"
    )

    def test_pr5_pattern_is_flagged(self):
        findings = lint_source(self.PR5_PATTERN,
                               "src/repro/parallel/engine.py",
                               repo=make_repo())
        assert [(f.code, f.line) for f in findings] == [("CL301", 3)]

    def test_pr5_fix_is_clean(self):
        fixed = self.PR5_PATTERN.replace(
            "max_workers or plan.max_workers",
            "max_workers if max_workers is not None else plan.max_workers")
        assert lint_source(fixed, "src/repro/parallel/engine.py",
                           repo=make_repo()) == []

    def test_attribute_spelling_is_flagged_too(self):
        source = ("def plan(self, config):\n"
                  "    return config.micro_batch or 8\n")
        findings = lint_source(source, "src/repro/core/planner.py",
                               repo=make_repo())
        assert [f.code for f in findings] == ["CL301"]
