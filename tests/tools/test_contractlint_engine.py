"""Engine-level contractlint tests: suppressions, config, repo facts,
finalize checks, the CLI contract, and the self-run gate.

The self-run test is the binding one: the repo's own tree must lint
clean, which is what lets CI fail on *any* finding without a baseline
file.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.contractlint import all_codes, lint_source, run_lint
from tools.contractlint.core import (
    LintConfig,
    load_config,
    parse_suppressions,
    read_hook_points,
    read_knob_names,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


# -- suppression grammar (CL001/CL002 audit trail) ---------------------------


class TestSuppressions:
    RAISE = 'raise ValueError("boom")'
    PATH = "src/repro/cam/fixture.py"

    def test_reasoned_suppression_suppresses(self):
        source = (f"def f():\n    {self.RAISE}  "
                  f"# contractlint: disable=CL401 -- fixture exercises "
                  f"the suppression path\n")
        assert lint_source(source, self.PATH) == []

    def test_reasonless_suppression_is_cl001_and_keeps_the_finding(self):
        source = f"def f():\n    {self.RAISE}  # contractlint: disable=CL401\n"
        codes = sorted(f.code for f in lint_source(source, self.PATH))
        assert codes == ["CL001", "CL401"]

    def test_unknown_code_is_cl002(self):
        source = (f"def f():\n    {self.RAISE}  "
                  f"# contractlint: disable=CL999 -- no such contract\n")
        codes = sorted(f.code for f in lint_source(source, self.PATH))
        assert codes == ["CL002", "CL401"]

    def test_multiple_codes_one_comment(self):
        source = ("def f(value):\n"
                  "    assert value\n"
                  '    raise ValueError("boom")  '
                  "# contractlint: disable=CL401,CL402 -- multi-code demo\n")
        # Only the CL401 on the commented line is suppressed; the
        # assert on line 2 still reports.
        assert [f.code for f in lint_source(source, self.PATH)] == ["CL402"]

    def test_docstring_quoting_the_grammar_is_not_a_suppression(self):
        source = ('"""Docs: write # contractlint: disable=CL401 -- why."""\n'
                  "def f():\n"
                  '    raise ValueError("boom")\n')
        assert parse_suppressions(source) == []
        assert [f.code for f in lint_source(source, self.PATH)] == ["CL401"]

    def test_suppression_dataclass_fields(self):
        (supp,) = parse_suppressions(
            "x = 1  # contractlint: disable=CL101, CL301 -- calibration\n")
        assert supp.line == 1
        assert supp.codes == ("CL101", "CL301")
        assert supp.reason == "calibration"


# -- configuration -----------------------------------------------------------


class TestConfig:
    def test_allow_matches_whole_path_segments(self):
        config = LintConfig(allow={"CL102": ("src/repro/cam",)})
        assert config.allows("CL102", "src/repro/cam/array.py")
        assert config.allows("CL102", "src/repro/cam")
        assert not config.allows("CL102", "src/repro/camera.py")
        assert not config.allows("CL101", "src/repro/cam/array.py")

    def test_load_config_reads_pyproject_table(self, tmp_path):
        pytest.importorskip("tomllib")  # stdlib from 3.11
        (tmp_path / "pyproject.toml").write_text(
            '[tool.contractlint.allow]\nCL102 = ["src/repro/legacy"]\n')
        config = load_config(tmp_path)
        assert config.allow == {"CL102": ("src/repro/legacy",)}

    def test_load_config_without_pyproject_is_empty(self, tmp_path):
        assert load_config(tmp_path) == LintConfig()


# -- repo facts read from source, never imported ------------------------------


class TestRepoFacts:
    def test_knob_names_read_from_this_repo(self):
        knobs = read_knob_names(REPO_ROOT)
        assert set(knobs) >= {"micro_batch", "compaction", "max_workers",
                              "backend", "engine", "shard_engine"}

    def test_hook_points_read_from_this_repo(self):
        points = read_hook_points(REPO_ROOT)
        assert "refstore.save" in points
        assert "service.stream.dispatch" in points
        assert len(points) >= 9

    def test_knob_names_track_the_validator_signature(self, tmp_path):
        knobs_py = tmp_path / "src" / "repro" / "knobs.py"
        knobs_py.parent.mkdir(parents=True)
        knobs_py.write_text(
            "def validate_service_knobs(micro_batch=None, *, warp=None):\n"
            "    return None\n")
        knobs = read_knob_names(tmp_path)
        assert "warp" in knobs          # new knob picked up automatically
        assert "shard_engine" in knobs  # the alias rides along

    def test_missing_tree_falls_back(self, tmp_path):
        assert "micro_batch" in read_knob_names(tmp_path)
        assert read_hook_points(tmp_path) == ()


# -- repo-wide finalize checks on a synthetic tree ----------------------------


def _make_mini_repo(root: Path) -> None:
    """A minimal lintable tree: two hook points, one of them fired."""
    (root / "pyproject.toml").write_text("[project]\nname = 'mini'\n")
    pkg = root / "src" / "repro"
    (pkg / "faults").mkdir(parents=True)
    (pkg / "faults" / "plan.py").write_text(
        'HOOK_POINTS = (\n    "alpha.one",\n    "beta.two",\n)\n')
    (pkg / "cam").mkdir()
    (pkg / "cam" / "mod.py").write_text(
        "from repro.faults.hooks import fire as _fire_fault\n\n\n"
        "def save(buf):\n"
        '    _fire_fault("alpha.one", buf=buf)\n')


class TestFinalize:
    def test_unfired_hook_point_is_cl603_on_full_scan(self, tmp_path):
        _make_mini_repo(tmp_path)
        findings = run_lint(tmp_path)
        assert [(f.code, f.path) for f in findings] == [
            ("CL603", "src/repro/faults/plan.py")]
        assert "beta.two" in findings[0].message

    def test_restricted_scan_skips_repo_wide_checks(self, tmp_path):
        _make_mini_repo(tmp_path)
        target = tmp_path / "src" / "repro" / "cam" / "mod.py"
        assert run_lint(tmp_path, files=[target]) == []


# -- CLI contract -------------------------------------------------------------


def _run_cli(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "tools.contractlint", *argv],
        cwd=cwd, capture_output=True, text=True, timeout=120)


class TestCli:
    def test_list_codes_prints_every_stable_code(self):
        proc = _run_cli("--list-codes")
        assert proc.returncode == 0
        for code in all_codes():
            assert code in proc.stdout

    def test_findings_exit_1_and_json_document_shape(self, tmp_path):
        _make_mini_repo(tmp_path)
        out = tmp_path / "findings.json"
        proc = _run_cli("--root", str(tmp_path), "--json", str(out))
        assert proc.returncode == 1
        assert "CL603" in proc.stdout
        document = json.loads(out.read_text())
        # The bench-JSON shape (benchmarks/conftest.py) + findings.
        assert set(document) == {"bench", "config", "timings",
                                 "derived", "findings"}
        assert document["bench"] == "contractlint"
        assert document["derived"] == {"n_findings": 1,
                                       "n_files_restricted": None,
                                       "clean": False}
        assert document["timings"]["lint_seconds"] >= 0
        (row,) = document["findings"]
        assert row["code"] == "CL603"
        assert row["path"] == "src/repro/faults/plan.py"

    def test_bad_root_exits_2(self, tmp_path):
        proc = _run_cli("--root", str(tmp_path / "nowhere"))
        assert proc.returncode == 2

    def test_missing_file_argument_exits_2(self):
        proc = _run_cli("no/such/file.py")
        assert proc.returncode == 2


# -- the self-run gate --------------------------------------------------------


class TestSelfRun:
    def test_repo_lints_clean(self):
        findings = run_lint(REPO_ROOT)
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"contractlint findings:\n{rendered}"

    def test_cli_self_run_exits_0(self):
        proc = _run_cli()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 findings" in proc.stdout


# -- registry sanity ----------------------------------------------------------


class TestRegistry:
    def test_every_code_family_is_registered(self):
        codes = all_codes()
        for family in ("CL001", "CL101", "CL201", "CL301", "CL401",
                       "CL501", "CL601"):
            assert family in codes

    def test_codes_are_unique_across_checkers(self):
        from tools.contractlint import registered_checkers

        seen: "dict[str, str]" = {}
        for cls in registered_checkers():
            for code in cls.codes:
                assert code not in seen, (code, cls.name, seen[code])
                seen[code] = cls.name
