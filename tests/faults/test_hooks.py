"""Hook firing: unarmed fast path, hit counting, arming discipline."""

from __future__ import annotations

import pytest

from repro.errors import CamConfigError, ServiceError
from repro.faults import Fault, FaultPlan, arm, armed, fire


def _plan(*faults, seed=0):
    return FaultPlan.of(*faults, seed=seed)


class TestUnarmed:
    def test_fire_is_a_noop(self):
        assert not armed()
        # No plan armed: any point, any context, nothing happens.
        fire("service.stream.dispatch")
        fire("refstore.save", buf=bytearray(8), path="/nope")

    def test_armed_flag_tracks_extent(self):
        plan = _plan()
        assert not armed()
        with arm(plan):
            assert armed()
        assert not armed()

    def test_disarmed_after_exception(self):
        fault = Fault("poisoned_read", "service.stream.dispatch", 0)
        with pytest.raises(CamConfigError, match="injected"):
            with arm(_plan(fault)):
                fire("service.stream.dispatch")
        assert not armed()


class TestFiring:
    def test_fault_fires_on_its_hit_only(self):
        fault = Fault("poisoned_read", "service.stream.dispatch", 2)
        with arm(_plan(fault)) as injector:
            fire("service.stream.dispatch")          # hit 0
            fire("service.stream.dispatch")          # hit 1
            assert injector.fired == []
            with pytest.raises(CamConfigError):
                fire("service.stream.dispatch")      # hit 2 -> boom
            fire("service.stream.dispatch")          # hit 3: spent
        assert injector.fired == [fault]
        assert injector.hit_counts() == {
            "service.stream.dispatch": 4,
        }

    def test_points_count_independently(self):
        fault = Fault("backlog_flood", "service.frontend.enqueue", 1)
        with arm(_plan(fault)) as injector:
            fire("service.frontend.execute")
            fire("service.frontend.execute")
            fire("service.frontend.enqueue")         # hit 0: quiet
            with pytest.raises(ServiceError, match="backlog full"):
                fire("service.frontend.enqueue")     # hit 1
        assert injector.fired == [fault]

    def test_unscheduled_point_never_fires(self):
        fault = Fault("slow_batch", "service.stream.dispatch", 0,
                      arg=0)
        with arm(_plan(fault)) as injector:
            for _ in range(3):
                fire("service.frontend.execute")
        assert injector.fired == []

    def test_fired_log_preserves_order(self):
        early = Fault("slow_batch", "service.stream.dispatch", 0)
        late = Fault("worker_stall", "parallel.engine.dispatch", 1)
        with arm(_plan(early, late)) as injector:
            fire("parallel.engine.dispatch")
            fire("service.stream.dispatch")
            fire("parallel.engine.dispatch")
        assert injector.fired == [early, late]


class TestArmDiscipline:
    def test_non_reentrant(self):
        with arm(_plan()):
            with pytest.raises(CamConfigError, match="already armed"):
                with arm(_plan()):
                    pass  # pragma: no cover
        assert not armed()

    def test_rearm_after_exit(self):
        with arm(_plan()):
            pass
        with arm(_plan()) as injector:
            fire("service.stream.dispatch")
        assert injector.hit_counts() == {"service.stream.dispatch": 1}


class TestBufferActions:
    def _sealed(self, payload: bytes):
        """A minimal sealed container around *payload* (one array)."""
        import numpy as np

        from repro.parallel.header import (
            plan_layout,
            seal_header,
            write_payload,
        )

        arrays = [("data", np.frombuffer(payload, dtype=np.uint8))]
        layout = plan_layout(arrays)
        buf = bytearray(layout.total)
        write_payload(buf, layout, arrays)
        seal_header(buf, layout, magic=b"TESTMAG1", version=1)
        return buf, layout

    def test_shm_corrupt_flips_payload_byte(self):
        payload = bytes(range(64))
        buf, layout = self._sealed(payload)
        fault = Fault("shm_corrupt", "parallel.shm.share", 0, arg=130)
        with arm(_plan(fault)):
            fire("parallel.shm.share", buf=buf)
        start = layout.payload_start
        corrupted = bytes(buf[start:start + len(payload)])
        assert corrupted != payload
        # Exactly one byte differs, at arg % payload_length.
        diffs = [i for i, (a, b) in enumerate(zip(payload, corrupted, strict=True))
                 if a != b]
        assert diffs == [130 % layout.payload_length]

    def test_truncate_halves_payload(self):
        buf, _ = self._sealed(bytes(64))
        before = len(buf)
        fault = Fault("store_truncate", "refstore.save", 0)
        with arm(_plan(fault)):
            fire("refstore.save", buf=buf, path=None)
        assert len(buf) < before

    def test_poisoned_open_flips_file_byte(self, tmp_path):
        path = tmp_path / "ref.bin"
        path.write_bytes(bytes(32))
        fault = Fault("poisoned_open", "refstore.catalog.open", 0)
        with arm(_plan(fault)):
            fire("refstore.catalog.open", name="x", path=str(path))
        data = path.read_bytes()
        assert len(data) == 32
        assert data[-1] == 0x01  # last byte XOR 0x01

    def test_missing_context_is_ignored(self):
        # A fault whose context is absent (no buf, no path) degrades
        # to a no-op rather than crashing the hook site.
        for fault in (
            Fault("shm_corrupt", "parallel.shm.share", 0),
            Fault("store_truncate", "refstore.save", 0),
            Fault("poisoned_open", "refstore.catalog.open", 0),
            Fault("worker_kill", "parallel.engine.dispatch", 0),
        ):
            with arm(_plan(fault)) as injector:
                fire(fault.point)
            assert injector.fired == [fault]
