"""Fault plans: typed validation and seed-keyed determinism."""

from __future__ import annotations

import pytest

from repro.errors import CamConfigError
from repro.faults import FAULT_SPECS, HOOK_POINTS, Fault, FaultPlan
from repro.faults.plan import DOCUMENTED_ERRORS


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(CamConfigError, match="unknown fault kind"):
            Fault("meteor_strike", "service.stream.dispatch", 0)

    def test_point_must_match_kind(self):
        with pytest.raises(CamConfigError, match="cannot attach"):
            Fault("store_truncate", "service.stream.dispatch", 0)

    def test_negative_hit_rejected(self):
        with pytest.raises(CamConfigError, match="hit index"):
            Fault("slow_batch", "service.stream.dispatch", -1)

    def test_every_spec_point_is_a_hook_point(self):
        for kind, spec in FAULT_SPECS.items():
            for point in spec.points:
                assert point in HOOK_POINTS, (kind, point)

    def test_expected_errors_are_documented(self):
        # Every surfaceable error type must be within the documented
        # surface the checker judges against.
        for kind, spec in FAULT_SPECS.items():
            for error_type in spec.expected:
                assert issubclass(error_type, DOCUMENTED_ERRORS), kind

    def test_describe_is_json_ready(self):
        fault = Fault("poisoned_read", "service.stream.dispatch", 2,
                      arg=7)
        assert fault.describe() == {
            "kind": "poisoned_read",
            "point": "service.stream.dispatch",
            "hit": 2, "arg": 7,
        }


class TestPlanValidation:
    def test_duplicate_slot_rejected(self):
        fault = Fault("slow_batch", "service.stream.dispatch", 1)
        other = Fault("poisoned_read", "service.stream.dispatch", 1)
        with pytest.raises(CamConfigError, match="slot"):
            FaultPlan.of(fault, other)

    def test_distinct_slots_accepted(self):
        plan = FaultPlan.of(
            Fault("slow_batch", "service.stream.dispatch", 0),
            Fault("poisoned_read", "service.stream.dispatch", 1),
            seed=9,
        )
        assert plan.seed == 9
        assert len(plan.faults) == 2


class TestGenerate:
    def test_same_seed_same_schedule(self):
        a = FaultPlan.generate(1234, n_faults=3)
        b = FaultPlan.generate(1234, n_faults=3)
        assert a == b

    def test_different_seeds_differ(self):
        schedules = {FaultPlan.generate(seed, n_faults=2).faults
                     for seed in range(16)}
        assert len(schedules) > 1

    def test_kinds_restriction_respected(self):
        plan = FaultPlan.generate(7, kinds=("slow_batch",), n_faults=2)
        assert plan.faults
        assert all(f.kind == "slow_batch" for f in plan.faults)

    def test_points_restriction_respected(self):
        plan = FaultPlan.generate(
            11, kinds=("poisoned_read", "slow_batch"), n_faults=2,
            points=("service.stream.dispatch",),
        )
        assert plan.faults
        assert all(f.point == "service.stream.dispatch"
                   for f in plan.faults)

    def test_points_can_exclude_every_kind(self):
        # backlog_flood only attaches to frontend.enqueue; restricting
        # points elsewhere must yield an empty (vacuous) plan, not an
        # invalid fault.
        plan = FaultPlan.generate(
            3, kinds=("backlog_flood",),
            points=("service.stream.dispatch",),
        )
        assert plan.faults == ()

    def test_unknown_point_rejected(self):
        with pytest.raises(CamConfigError, match="unknown hook point"):
            FaultPlan.generate(0, points=("service.nope",))

    def test_hits_bounded(self):
        for seed in range(32):
            plan = FaultPlan.generate(seed, n_faults=2, max_hits=3)
            assert all(0 <= f.hit < 3 for f in plan.faults)

    def test_kill_mid_drain_pinned_to_last_hit(self):
        plan = FaultPlan.generate(5, kinds=("kill_mid_drain",),
                                  max_hits=5)
        (fault,) = plan.faults
        assert fault.hit == 4

    def test_invalid_knobs_rejected(self):
        with pytest.raises(CamConfigError, match="unknown fault kind"):
            FaultPlan.generate(0, kinds=("bogus",))
        with pytest.raises(CamConfigError, match="n_faults"):
            FaultPlan.generate(0, n_faults=0)
        with pytest.raises(CamConfigError, match="max_hits"):
            FaultPlan.generate(0, max_hits=0)
