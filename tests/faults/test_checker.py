"""The trichotomy judge and end-to-end chaos checks (thread routes).

``judge()`` is a pure function, so its verdict table is tested in
isolation; the end-to-end checks drive real scenarios through the
armed service stack (thread engines only — the process fan-out is the
chaos soak's job, kept out of the tier-1 budget).
"""

from __future__ import annotations

import pytest

from repro.errors import CamConfigError, RefStoreError, ServiceError
from repro.faults import Fault, FaultPlan
from repro.faults.checker import judge, resource_snapshot
from repro.faults.scenarios import SCENARIOS, ChaosScenario, get_scenario

BASE = (18, 12)  # stand-in canonical results for the pure-judge tests
_POISON = Fault("poisoned_read", "service.stream.dispatch", 1)
_STALL = Fault("slow_batch", "service.stream.dispatch", 0)
_FLOOD = Fault("backlog_flood", "service.frontend.enqueue", 2)


class TestJudge:
    def test_clean_identical_run_is_tolerated(self):
        verdict, error_type, detail = judge((), None, (), BASE, BASE)
        assert (verdict, error_type, detail) == ("tolerated", None, "")

    def test_fired_documented_error_is_surfaced(self):
        verdict, error_type, _ = judge(
            (_POISON,), CamConfigError("injected"), (), None, BASE)
        assert verdict == "surfaced"
        assert error_type == "CamConfigError"

    def test_subclass_of_documented_error_counts(self):
        fault = Fault("poisoned_open", "refstore.catalog.open", 0)
        verdict, error_type, _ = judge(
            (fault,), RefStoreError("corrupt"), (), None, BASE)
        assert verdict == "surfaced"
        assert error_type == "RefStoreError"

    def test_undocumented_error_type_is_violation(self):
        verdict, error_type, detail = judge(
            (_POISON,), RuntimeError("boom"), (), None, BASE)
        assert verdict == "violation"
        assert error_type == "RuntimeError"
        assert "undocumented" in detail

    def test_error_without_fired_fault_is_violation(self):
        verdict, _, detail = judge(
            (), ServiceError("spurious"), (), None, BASE)
        assert verdict == "violation"
        assert "without a fired fault" in detail

    def test_error_not_matching_fired_expectation_is_violation(self):
        # A stall fault documents no error; a ServiceError alongside
        # it has no fired fault to blame.
        verdict, _, detail = judge(
            (_STALL,), ServiceError("spurious"), (), None, BASE)
        assert verdict == "violation"
        assert "without a fired fault" in detail

    def test_result_drift_is_violation(self):
        verdict, _, detail = judge((_STALL,), None, (), (18, 11), BASE)
        assert verdict == "violation"
        assert "drifted" in detail

    def test_handled_documented_error_is_surfaced(self):
        verdict, error_type, _ = judge(
            (_FLOOD,), None, (ServiceError("backlog full"),),
            BASE, BASE)
        assert verdict == "surfaced"
        assert error_type == "ServiceError"

    def test_handled_error_needs_fired_fault(self):
        verdict, _, detail = judge(
            (), None, (ServiceError("backlog full"),), BASE, BASE)
        assert verdict == "violation"
        assert "handled error" in detail

    def test_handled_run_must_still_match_baseline(self):
        verdict, _, detail = judge(
            (_FLOOD,), None, (ServiceError("backlog full"),),
            (18, 11), BASE)
        assert verdict == "violation"
        assert "drifted" in detail


class TestResourceSnapshot:
    def test_snapshot_fields(self):
        snapshot = resource_snapshot()
        assert snapshot.n_threads >= 1
        assert isinstance(snapshot.shm_names, frozenset)
        assert isinstance(snapshot.child_pids, frozenset)


class TestEndToEnd:
    """Real chaos runs over the thread-engine scenarios."""

    def test_baseline_is_stable(self, checker):
        scenario = get_scenario("stream-batched-gemm")
        first = checker.baseline(scenario)
        assert first == scenario.run().result
        assert first[0] == 18  # every read accounted for

    def test_poisoned_read_surfaces(self, checker, poison_plan):
        verdict = checker.check(get_scenario("stream-batched-gemm"),
                                poison_plan)
        assert verdict.ok
        assert verdict.verdict == "surfaced"
        assert verdict.error_type == "CamConfigError"
        assert [fault.kind for fault in verdict.fired] == \
            ["poisoned_read"]
        assert verdict.hygiene == ()

    def test_stall_is_tolerated_bit_identically(self, checker,
                                                stall_plan):
        verdict = checker.check(get_scenario("stream-batched-gemm"),
                                stall_plan)
        assert verdict.ok
        assert verdict.verdict == "tolerated"
        assert verdict.error_type is None

    def test_sharded_thread_poison_surfaces(self, checker,
                                            poison_plan):
        verdict = checker.check(
            get_scenario("stream-sharded-thread-bitpacked"),
            poison_plan)
        assert verdict.ok
        assert verdict.verdict == "surfaced"

    def test_store_truncate_surfaces_as_refstore_error(self, checker):
        plan = FaultPlan.of(
            Fault("store_truncate", "refstore.save", 0), seed=103)
        verdict = checker.check(
            get_scenario("store-sharded-thread-gemm"), plan)
        assert verdict.ok
        assert verdict.verdict == "surfaced"
        assert verdict.error_type == "RefStoreError"

    def test_catalog_poisoned_open_surfaces_and_counts(self, checker):
        plan = FaultPlan.of(
            Fault("poisoned_open", "refstore.catalog.open", 0),
            seed=104)
        verdict = checker.check(
            get_scenario("catalog-batched-bitpacked"), plan)
        assert verdict.ok
        assert verdict.verdict == "surfaced"
        assert verdict.error_type == "RefStoreError"

    def test_frontend_backlog_flood_is_handled(self, checker):
        plan = FaultPlan.of(
            Fault("backlog_flood", "service.frontend.enqueue", 3),
            seed=105)
        verdict = checker.check(get_scenario("frontend-batched-gemm"),
                                plan)
        assert verdict.ok
        # The scenario retries the rejected submit (all-or-nothing),
        # so the flood surfaces as a handled error with results still
        # bit-identical to the baseline.
        assert verdict.verdict == "surfaced"
        assert verdict.error_type == "ServiceError"

    def test_vacuous_plan_is_tolerated(self, checker):
        plan = FaultPlan.of(
            Fault("poisoned_read", "service.frontend.execute", 0),
            seed=106)
        verdict = checker.check(get_scenario("stream-batched-gemm"),
                                plan)
        assert verdict.ok
        assert verdict.verdict == "tolerated"
        assert verdict.fired == ()

    def test_verdicts_reproduce(self, checker, poison_plan):
        scenario = get_scenario("stream-sharded-thread-bitpacked")
        first = checker.check(scenario, poison_plan)
        second = checker.check(scenario, poison_plan)
        assert first.describe() == second.describe()

    def test_describe_round_trips_to_json(self, checker, stall_plan):
        import json

        verdict = checker.check(get_scenario("stream-batched-gemm"),
                                stall_plan)
        assert json.loads(json.dumps(verdict.describe())) == \
            verdict.describe()


class TestScenarioMatrix:
    def test_matrix_covers_both_engines_and_backends(self):
        assert {s.engine for s in SCENARIOS} == {"batched", "sharded"}
        assert {s.backend for s in SCENARIOS} == \
            {"numpy-gemm", "bitpacked"}
        assert {s.shard_engine for s in SCENARIOS
                if s.shard_engine} == {"thread", "process"}
        assert {s.compaction for s in SCENARIOS} == {None, 8}

    def test_reachable_points_are_valid(self):
        from repro.faults import HOOK_POINTS

        for scenario in SCENARIOS:
            assert scenario.reachable_points
            for point in scenario.reachable_points:
                assert point in HOOK_POINTS, scenario.name

    def test_fault_kinds_have_reachable_points(self):
        from repro.faults import FAULT_SPECS

        for scenario in SCENARIOS:
            for kind in scenario.fault_kinds:
                spec = FAULT_SPECS[kind]
                assert set(spec.points) & \
                    set(scenario.reachable_points), \
                    (scenario.name, kind)

    def test_unknown_scenario_name_raises(self):
        with pytest.raises(CamConfigError, match="unknown chaos scenario"):
            get_scenario("nope")

    def test_unknown_route_raises_typed_error(self):
        # Error-contract regression (contractlint CL401): a bad route
        # raises the typed config error, not a bare ValueError.
        scenario = ChaosScenario(
            name="bogus", engine="batched", shard_engine=None,
            backend="numpy-gemm", compaction=None, route="teleport",
            fault_kinds=(),
        )
        with pytest.raises(CamConfigError, match="unknown scenario route"):
            scenario.run()
