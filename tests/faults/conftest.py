"""Shared fixtures for the fault-injection suite.

Small, hand-built fault plans and a session-cached
:class:`~repro.faults.checker.InvariantChecker` — baselines are
deterministic and route-keyed, so every chaos test in the module can
share one fault-free reference run per scenario.
"""

from __future__ import annotations

import pytest

from repro.faults import Fault, FaultPlan
from repro.faults.checker import InvariantChecker


@pytest.fixture(scope="session")
def checker() -> InvariantChecker:
    return InvariantChecker()


@pytest.fixture
def poison_plan() -> FaultPlan:
    """One poisoned read on the stream dispatch path (must surface)."""
    return FaultPlan.of(
        Fault("poisoned_read", "service.stream.dispatch", 1),
        seed=101,
    )


@pytest.fixture
def stall_plan() -> FaultPlan:
    """One brief dispatch stall (latency only; must be tolerated)."""
    return FaultPlan.of(
        Fault("slow_batch", "service.stream.dispatch", 2, arg=3),
        seed=102,
    )
