"""Tests for the architecture configuration."""

from __future__ import annotations

import pytest

from repro.arch.config import ArchConfig
from repro.errors import ArchConfigError


class TestPaperSystem:
    def test_defaults_match_paper(self):
        config = ArchConfig.paper_system()
        assert config.array_rows == 256
        assert config.array_cols == 256
        assert config.n_arrays == 512
        assert config.vdd == 1.2
        assert config.technology_nm == 65

    def test_capacity_is_64_mb(self):
        """Section V-E quotes 64 Mb for the 512-array system."""
        assert ArchConfig.paper_system().capacity_mb == pytest.approx(64.0)

    def test_total_segments(self):
        assert ArchConfig.paper_system().total_segments == 512 * 256

    def test_read_bits(self):
        assert ArchConfig.paper_system().read_bits == 512

    def test_fits_small_virus(self):
        """SARS-CoV-2 (~30 kb) fits entirely (the paper's use case)."""
        config = ArchConfig.paper_system()
        assert config.fits_reference(30_000)
        assert not config.fits_reference(3_000_000_000)  # human genome

    def test_edam_system_differs_only_in_domain(self):
        edam = ArchConfig.edam_system()
        assert edam.domain == "current"
        assert edam.n_arrays == 512


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ArchConfigError):
            ArchConfig(array_rows=0)

    def test_bad_array_count(self):
        with pytest.raises(ArchConfigError):
            ArchConfig(n_arrays=-1)

    def test_bad_voltage(self):
        with pytest.raises(ArchConfigError):
            ArchConfig(vdd=0.0)

    def test_bad_domain(self):
        with pytest.raises(ArchConfigError):
            ArchConfig(domain="quantum")
