"""Tests for the assembled multi-array accelerator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.accelerator import AsmCapAccelerator
from repro.arch.config import ArchConfig
from repro.core.matcher import MatcherConfig
from repro.cost.profile import StrategyProfile
from repro.errors import ArchConfigError
from repro.genome.datasets import build_dataset


def _profile(searches: float, cycles: float = 0.0) -> StrategyProfile:
    return StrategyProfile(condition="test", searches_per_read=searches,
                           rotation_cycles_per_read=cycles,
                           source="analytic")


@pytest.fixture(scope="module")
def dataset():
    # 96 segments spread over 3 functional arrays of 32 rows each.
    return build_dataset("A", n_reads=8, read_length=128, n_segments=96,
                         seed=70)


@pytest.fixture(scope="module")
def accelerator(dataset):
    config = ArchConfig(array_rows=32, array_cols=128, n_arrays=3)
    acc = AsmCapAccelerator(config, error_model=dataset.model,
                            matcher_config=MatcherConfig.plain(),
                            noisy=False, seed=0)
    acc.load_reference(dataset.segments)
    return acc


class TestLoading:
    def test_segments_distributed(self, accelerator, dataset):
        assert accelerator.loaded_segments == 96
        for i, array in enumerate(accelerator.arrays):
            expected = dataset.segments[i * 32 : (i + 1) * 32]
            assert np.array_equal(array.stored_segments(), expected)

    def test_capacity_enforced(self, dataset):
        config = ArchConfig(array_rows=8, array_cols=128, n_arrays=2)
        acc = AsmCapAccelerator(config, noisy=False)
        with pytest.raises(ArchConfigError):
            acc.load_reference(dataset.segments)

    def test_wrong_width_rejected(self):
        config = ArchConfig(array_rows=8, array_cols=64, n_arrays=1)
        acc = AsmCapAccelerator(config, noisy=False)
        with pytest.raises(ArchConfigError):
            acc.load_reference(np.zeros((4, 65), dtype=np.uint8))

    def test_functional_array_bound(self):
        config = ArchConfig(array_rows=8, array_cols=64, n_arrays=2)
        with pytest.raises(ArchConfigError):
            AsmCapAccelerator(config, n_functional_arrays=5)


class TestSystemMatch:
    def test_global_indices(self, accelerator, dataset):
        """A read from segment 70 must match global row 70."""
        record = next(r for r in dataset.reads
                      if dataset.origin_segment_index(r) >= 32)
        origin = dataset.origin_segment_index(record)
        result = accelerator.match_read(record.read.codes, threshold=8)
        assert result.matches.shape == (96,)
        assert result.matches[origin]

    def test_unloaded_system_rejected(self):
        config = ArchConfig(array_rows=8, array_cols=64, n_arrays=1)
        acc = AsmCapAccelerator(config, noisy=False)
        with pytest.raises(ArchConfigError):
            acc.match_read(np.zeros(64, dtype=np.uint8), 4)

    def test_latency_includes_peripherals(self, accelerator, dataset):
        result = accelerator.match_read(dataset.reads[0].read.codes, 4)
        assert result.latency_ns > accelerator.arrays[0].search_time_ns

    def test_energy_sums_arrays(self, accelerator, dataset):
        result = accelerator.match_read(dataset.reads[0].read.codes, 4)
        assert result.energy_joules > 0

    def test_batch(self, accelerator, dataset):
        reads = [r.read.codes for r in dataset.reads[:3]]
        results = accelerator.match_batch(reads, threshold=8)
        assert len(results) == 3


class TestBatchedBroadcast:
    """match_batch is a real batched pass, not a scalar loop."""

    def test_matches_per_read_broadcast_on_ideal_arrays(self, accelerator,
                                                        dataset):
        """Ideal (noiseless) arrays make the keyed batch bit-identical
        to the scalar per-read broadcast."""
        reads = np.stack([r.read.codes for r in dataset.reads])
        batch = accelerator.match_batch(reads, threshold=8)
        for q in range(reads.shape[0]):
            single = accelerator.match_read(reads[q], 8)
            assert np.array_equal(batch[q].matches, single.matches)
            assert batch[q].n_searches == single.n_searches
            assert batch[q].latency_ns == pytest.approx(single.latency_ns)
            assert batch[q].energy_joules == pytest.approx(
                single.energy_joules)

    def test_single_batched_pass_per_array(self, dataset):
        """The arrays see one batched search per pass, not B scalar
        searches issued one read at a time."""
        config = ArchConfig(array_rows=32, array_cols=128, n_arrays=3)
        acc = AsmCapAccelerator(config, error_model=dataset.model,
                                matcher_config=MatcherConfig.plain(),
                                noisy=False, seed=0)
        acc.load_reference(dataset.segments)
        reads = np.stack([r.read.codes for r in dataset.reads])
        before = [array.stats.n_searches for array in acc.arrays]
        acc.match_batch(reads, threshold=8)
        after = [array.stats.n_searches for array in acc.arrays]
        for b, a in zip(before, after, strict=True):
            assert a - b == reads.shape[0]

    def test_empty_batch(self, accelerator, dataset):
        empty = np.zeros((0, dataset.read_length), dtype=np.uint8)
        assert accelerator.match_batch(empty, threshold=8) == []

    def test_global_keys_compose_chunked(self, accelerator, dataset):
        """Chunked calls with global query keys equal one whole batch —
        decisions AND per-read cost accounting (the one-shot/streamed
        composition contract)."""
        reads = np.stack([r.read.codes for r in dataset.reads])
        whole = accelerator.match_batch(reads, threshold=8)
        first = accelerator.match_batch(reads[:4], threshold=8,
                                        query_keys=list(range(4)))
        rest = accelerator.match_batch(
            reads[4:], threshold=8,
            query_keys=list(range(4, reads.shape[0])),
        )
        for q, result in enumerate(first + rest):
            assert np.array_equal(result.matches, whole[q].matches)
            assert result.n_searches == whole[q].n_searches
            assert result.energy_joules == whole[q].energy_joules
            assert result.latency_ns == whole[q].latency_ns

    def test_bad_shape_rejected(self, accelerator, dataset):
        with pytest.raises(ArchConfigError):
            accelerator.match_batch(dataset.reads[0].read.codes, 8)

    def test_unloaded_system_rejected(self):
        config = ArchConfig(array_rows=8, array_cols=64, n_arrays=1)
        acc = AsmCapAccelerator(config, noisy=False)
        with pytest.raises(ArchConfigError):
            acc.match_batch(np.zeros((2, 64), dtype=np.uint8), 4)


class TestAnalyticPath:
    def test_estimate_fields(self, accelerator):
        estimate = accelerator.estimate_read_cost(_profile(2.0))
        assert estimate.latency_ns > 0
        assert estimate.energy_joules > 0
        assert estimate.reads_per_second == pytest.approx(
            1e9 / estimate.latency_ns
        )
        assert estimate.reads_per_joule == pytest.approx(
            1.0 / estimate.energy_joules
        )

    def test_more_searches_cost_more(self, accelerator):
        one = accelerator.estimate_read_cost(_profile(1.0))
        three = accelerator.estimate_read_cost(_profile(3.0))
        assert three.latency_ns > one.latency_ns
        assert three.energy_joules > one.energy_joules

    def test_current_domain_costs_more(self):
        charge = AsmCapAccelerator(
            ArchConfig(array_rows=32, array_cols=128, n_arrays=4),
            n_functional_arrays=1, noisy=False,
        ).estimate_read_cost()
        current = AsmCapAccelerator(
            ArchConfig(array_rows=32, array_cols=128, n_arrays=4,
                       domain="current"),
            n_functional_arrays=1, noisy=False,
        ).estimate_read_cost()
        assert current.energy_joules > charge.energy_joules
        assert current.latency_ns > charge.latency_ns

    def test_invalid_searches(self, accelerator):
        with pytest.raises(ArchConfigError):
            accelerator.estimate_read_cost(_profile(0.0))

    def test_scalar_argument_rejected(self, accelerator):
        with pytest.raises(ArchConfigError):
            accelerator.estimate_read_cost(2.0)
