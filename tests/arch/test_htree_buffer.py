"""Tests for the H-tree, global buffer and controller cost models."""

from __future__ import annotations

import pytest

from repro.arch.buffer import Controller, GlobalBuffer
from repro.arch.htree import HTreeModel
from repro.errors import ArchConfigError


class TestHTree:
    def test_levels_for_512_arrays(self):
        assert HTreeModel(512).levels == 9

    def test_levels_minimum_one(self):
        assert HTreeModel(1).levels == 1

    def test_latency_scales_with_levels(self):
        assert HTreeModel(512).broadcast_latency_ns() > \
            HTreeModel(8).broadcast_latency_ns()

    def test_energy_scales_with_bits(self):
        tree = HTreeModel(512)
        assert tree.broadcast_energy_joules(1024) == pytest.approx(
            2 * tree.broadcast_energy_joules(512)
        )

    def test_energy_scales_with_fanout(self):
        small = HTreeModel(8).broadcast_energy_joules(512)
        large = HTreeModel(512).broadcast_energy_joules(512)
        assert large > small

    def test_invalid_arrays(self):
        with pytest.raises(ArchConfigError):
            HTreeModel(0)

    def test_negative_bits(self):
        with pytest.raises(ArchConfigError):
            HTreeModel(8).broadcast_energy_joules(-1)


class TestBufferAndController:
    def test_buffer_energy_linear_in_bits(self):
        buffer = GlobalBuffer()
        assert buffer.fetch_energy_joules(200) == pytest.approx(
            2 * buffer.fetch_energy_joules(100)
        )

    def test_buffer_latency_constant(self):
        assert GlobalBuffer().fetch_latency_ns() > 0

    def test_controller_scales_with_searches(self):
        controller = Controller()
        assert controller.dispatch_latency_ns(5) == pytest.approx(
            5 * controller.dispatch_latency_ns(1)
        )
        assert controller.dispatch_energy_joules(5) == pytest.approx(
            5 * controller.dispatch_energy_joules(1)
        )

    def test_zero_searches_free(self):
        assert Controller().dispatch_latency_ns(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ArchConfigError):
            Controller().dispatch_latency_ns(-1)
        with pytest.raises(ArchConfigError):
            GlobalBuffer().fetch_energy_joules(-5)

    def test_peripheral_costs_small_vs_search(self):
        """Peripheral latency must not dominate the search itself."""
        total = (GlobalBuffer().fetch_latency_ns()
                 + HTreeModel(512).broadcast_latency_ns()
                 + Controller().dispatch_latency_ns(1))
        assert total < 1.0  # under one search cycle
