"""Property tests for the autotune planners.

Hypothesis sweeps the planner domains for the invariants the rest of
the stack leans on: never zero workers or shards, chunk sizes inside
the working-set bound, and monotone responses to growing references
and machines.  One deliberate non-claim: ``plan_shards().chunk_size``
is *not* monotone in ``n_rows`` — crossing a shard-count boundary
(e.g. 63 -> 64 rows) shrinks ``rows_per_shard`` and can legitimately
grow the chunk — so the properties here bound it instead.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.arch.autotune import (  # noqa: E402
    EXECUTION_ENGINES,
    MAX_CHUNK_READS,
    MIN_CHUNK_READS,
    MIN_ROWS_PER_SHARD,
    MIN_SERVICE_BACKLOG,
    TARGET_CHUNK_ELEMS,
    plan_engine,
    plan_microbatch,
    plan_service_pool,
    plan_shards,
    sweep_worker_count,
)

#: Timing-free pure functions; the default deadline only buys flakes
#: on loaded CI machines.
settings.register_profile("autotune", deadline=None)
settings.load_profile("autotune")

n_rows_s = st.integers(min_value=1, max_value=1 << 20)
cols_s = st.integers(min_value=1, max_value=4096)
cpus_s = st.integers(min_value=1, max_value=256)
shards_s = st.integers(min_value=1, max_value=128)


class TestPlanShards:
    @given(n_rows=n_rows_s, cols=cols_s, cpus=cpus_s)
    def test_never_zero_and_bounded(self, n_rows, cols, cpus):
        plan = plan_shards(n_rows, cols, cpu_count=cpus)
        assert plan.n_shards >= 1
        assert plan.max_workers >= 1
        assert plan.n_shards <= min(cpus, n_rows)
        assert plan.max_workers == min(plan.n_shards, cpus)

    @given(n_rows=n_rows_s, cols=cols_s, cpus=cpus_s)
    def test_shards_amortise_dispatch(self, n_rows, cols, cpus):
        # A shard is never smaller than MIN_ROWS_PER_SHARD rows unless
        # the whole reference is.
        plan = plan_shards(n_rows, cols, cpu_count=cpus)
        rows_per_shard = -(-n_rows // plan.n_shards)
        assert rows_per_shard >= min(n_rows, MIN_ROWS_PER_SHARD)

    @given(n_rows=n_rows_s, cols=cols_s, cpus=cpus_s)
    def test_chunk_within_working_set_bound(self, n_rows, cols, cpus):
        plan = plan_shards(n_rows, cols, cpu_count=cpus)
        assert MIN_CHUNK_READS <= plan.chunk_size <= MAX_CHUNK_READS
        rows_per_shard = -(-n_rows // plan.n_shards)
        per_read = max(rows_per_shard, cols * 4, 1)
        # Inside the clamp band the element budget holds exactly; at
        # the lower clamp the budget is allowed to overflow (tiny
        # chunks would cost more than the memory they save).
        if plan.chunk_size > MIN_CHUNK_READS:
            assert plan.chunk_size * per_read <= TARGET_CHUNK_ELEMS

    @given(n_rows=st.integers(min_value=1, max_value=(1 << 20) - 1),
           cols=cols_s, cpus=cpus_s)
    def test_shards_monotone_in_rows(self, n_rows, cols, cpus):
        grown = plan_shards(n_rows + 1, cols, cpu_count=cpus)
        assert grown.n_shards >= \
            plan_shards(n_rows, cols, cpu_count=cpus).n_shards

    @given(n_rows=n_rows_s, cols=cols_s,
           cpus=st.integers(min_value=1, max_value=255))
    def test_shards_monotone_in_cpus(self, n_rows, cols, cpus):
        bigger = plan_shards(n_rows, cols, cpu_count=cpus + 1)
        assert bigger.n_shards >= \
            plan_shards(n_rows, cols, cpu_count=cpus).n_shards

    @given(n_rows=n_rows_s, cols=cols_s, cpus=cpus_s)
    def test_deterministic(self, n_rows, cols, cpus):
        assert plan_shards(n_rows, cols, cpu_count=cpus) == \
            plan_shards(n_rows, cols, cpu_count=cpus)


class TestPlanMicrobatch:
    @given(n_rows=n_rows_s, cols=cols_s, n_shards=shards_s)
    def test_bounded(self, n_rows, cols, n_shards):
        batch = plan_microbatch(n_rows, cols, n_shards=n_shards)
        assert MIN_CHUNK_READS <= batch <= MAX_CHUNK_READS

    @given(n_rows=st.integers(min_value=1, max_value=(1 << 20) - 1),
           cols=cols_s, n_shards=shards_s)
    def test_nonincreasing_in_rows(self, n_rows, cols, n_shards):
        # Bigger references -> per-read footprint grows -> batches
        # shrink (or stay put); never the other way.
        assert plan_microbatch(n_rows + 1, cols, n_shards=n_shards) <= \
            plan_microbatch(n_rows, cols, n_shards=n_shards)

    @given(n_rows=n_rows_s, cols=cols_s,
           n_shards=st.integers(min_value=1, max_value=127))
    def test_nondecreasing_in_shards(self, n_rows, cols, n_shards):
        # More shards -> smaller largest shard -> batches may grow.
        assert plan_microbatch(n_rows, cols, n_shards=n_shards + 1) >= \
            plan_microbatch(n_rows, cols, n_shards=n_shards)


class TestPlanEngine:
    @given(n_rows=n_rows_s, cols=cols_s,
           n_shards=st.one_of(st.none(), shards_s), cpus=cpus_s)
    def test_always_a_known_engine(self, n_rows, cols, n_shards, cpus):
        engine = plan_engine(n_rows, cols, n_shards=n_shards,
                             cpu_count=cpus)
        assert engine in EXECUTION_ENGINES

    @given(n_rows=n_rows_s, cols=cols_s, cpus=cpus_s)
    def test_single_shard_stays_on_threads(self, n_rows, cols, cpus):
        assert plan_engine(n_rows, cols, n_shards=1,
                           cpu_count=cpus) == "thread"

    @given(n_rows=st.integers(min_value=1, max_value=(1 << 20) - 1),
           cols=cols_s, cpus=cpus_s)
    def test_threshold_monotone_in_rows(self, n_rows, cols, cpus):
        # Once a reference is big enough for processes, growing it
        # never flips the answer back to threads.
        if plan_engine(n_rows, cols, n_shards=4,
                       cpu_count=cpus) == "process":
            assert plan_engine(n_rows + 1, cols, n_shards=4,
                               cpu_count=cpus) == "process"

    @given(n_rows=n_rows_s, cols=cols_s,
           cpus=st.integers(min_value=1, max_value=255))
    def test_threshold_monotone_in_cpus(self, n_rows, cols, cpus):
        if plan_engine(n_rows, cols, n_shards=4,
                       cpu_count=cpus) == "process":
            assert plan_engine(n_rows, cols, n_shards=4,
                               cpu_count=cpus + 1) == "process"


class TestPlanServicePool:
    @given(n_shards=shards_s, cpus=cpus_s)
    def test_never_zero_workers(self, n_shards, cpus):
        plan = plan_service_pool(n_shards, cpu_count=cpus)
        assert plan.n_workers >= 1
        assert plan.max_backlog >= MIN_SERVICE_BACKLOG
        assert plan.max_backlog == max(MIN_SERVICE_BACKLOG,
                                       2 * plan.n_workers)

    @given(n_shards=shards_s, cpus=cpus_s)
    def test_shard_workers_iff_sharded(self, n_shards, cpus):
        plan = plan_service_pool(n_shards, cpu_count=cpus)
        if n_shards == 1:
            assert plan.shard_workers == 0
        else:
            assert 1 <= plan.shard_workers <= cpus

    @given(n_shards=shards_s, cpus=cpus_s)
    def test_two_level_pool_never_oversubscribes(self, n_shards, cpus):
        # Session workers x per-dispatch fan-out stays within the
        # core budget (modulo the >=1 worker floor on tiny machines).
        plan = plan_service_pool(n_shards, cpu_count=cpus)
        fanout = min(n_shards, cpus)
        assert plan.n_workers * fanout <= max(cpus, fanout)

    @given(n_shards=shards_s,
           cpus=st.integers(min_value=1, max_value=255))
    def test_workers_monotone_in_cpus(self, n_shards, cpus):
        assert plan_service_pool(n_shards,
                                 cpu_count=cpus + 1).n_workers >= \
            plan_service_pool(n_shards, cpu_count=cpus).n_workers


class TestSweepWorkers:
    @given(n_runs=st.integers(min_value=1, max_value=4096),
           cpus=cpus_s)
    def test_bounded_by_runs_and_cpus(self, n_runs, cpus):
        workers = sweep_worker_count(n_runs, cpu_count=cpus)
        assert 1 <= workers <= min(n_runs, cpus)
