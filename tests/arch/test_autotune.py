"""Tests for shard/chunk autotuning."""

from __future__ import annotations

import pytest

from repro.arch.autotune import (
    ENCODED_BYTES_PER_CELL,
    ENGINE_ENV,
    MAX_CHUNK_READS,
    MIN_CHUNK_READS,
    MIN_ROWS_PER_SHARD,
    PROCESS_MIN_CPUS,
    PROCESS_MIN_REFERENCE_BYTES,
    ShardPlan,
    available_cpus,
    plan_engine,
    plan_microbatch,
    plan_shards,
    resolve_engine,
    sweep_worker_count,
)
from repro.errors import ArchConfigError, CamConfigError
from repro.core.pipeline import ShardedReadMappingPipeline
from repro.genome.datasets import build_dataset


class TestPlanShards:
    def test_deterministic_given_inputs(self):
        a = plan_shards(1024, 256, cpu_count=8)
        b = plan_shards(1024, 256, cpu_count=8)
        assert a == b

    def test_never_more_shards_than_cpus(self):
        assert plan_shards(10_000, 256, cpu_count=4).n_shards <= 4

    def test_small_reference_stays_single_shard(self):
        """A reference below one shard quantum must not be split."""
        plan = plan_shards(MIN_ROWS_PER_SHARD, 256, cpu_count=16)
        assert plan.n_shards == 1

    def test_shards_scale_with_reference(self):
        small = plan_shards(64, 256, cpu_count=16).n_shards
        large = plan_shards(16 * MIN_ROWS_PER_SHARD, 256,
                            cpu_count=16).n_shards
        assert large >= small
        assert large == 16

    def test_shards_never_exceed_rows(self):
        assert plan_shards(2, 8, cpu_count=64).n_shards <= 2

    def test_chunk_size_bounds(self):
        for rows in (32, 1024, 1 << 20):
            for cols in (16, 256, 4096):
                plan = plan_shards(rows, cols, cpu_count=8)
                assert MIN_CHUNK_READS <= plan.chunk_size <= MAX_CHUNK_READS

    def test_wider_segments_shrink_chunks(self):
        narrow = plan_shards(1024, 64, cpu_count=4).chunk_size
        wide = plan_shards(1024, 16384, cpu_count=4).chunk_size
        assert wide <= narrow

    def test_workers_capped_by_shards_and_cpus(self):
        plan = plan_shards(1 << 16, 256, cpu_count=6)
        assert plan.max_workers <= plan.n_shards
        assert plan.max_workers <= 6

    def test_validation(self):
        with pytest.raises(ArchConfigError):
            plan_shards(0, 256)
        with pytest.raises(ArchConfigError):
            plan_shards(128, 0)

    def test_plan_is_frozen(self):
        plan = plan_shards(128, 128, cpu_count=2)
        assert isinstance(plan, ShardPlan)
        with pytest.raises(AttributeError):
            plan.n_shards = 3


class TestPlanMicrobatch:
    def test_bounds(self):
        for rows in (8, 256, 1 << 18):
            for cols in (16, 256, 4096):
                batch = plan_microbatch(rows, cols)
                assert MIN_CHUNK_READS <= batch <= MAX_CHUNK_READS

    def test_deterministic(self):
        assert plan_microbatch(512, 256) == plan_microbatch(512, 256)

    def test_bigger_reference_shrinks_batches(self):
        small = plan_microbatch(1 << 12, 64)
        large = plan_microbatch(1 << 20, 64)
        assert large <= small

    def test_sharding_relaxes_the_bound(self):
        """Each shard sees a slice of the rows, so the same reference
        split across shards affords micro-batches at least as large."""
        whole = plan_microbatch(1 << 18, 64, n_shards=1)
        split = plan_microbatch(1 << 18, 64, n_shards=8)
        assert split >= whole

    def test_validation(self):
        with pytest.raises(ArchConfigError):
            plan_microbatch(0, 64)
        with pytest.raises(ArchConfigError):
            plan_microbatch(64, 0)
        with pytest.raises(ArchConfigError):
            plan_microbatch(64, 64, n_shards=0)


class TestSweepWorkers:
    def test_capped_by_runs(self):
        assert sweep_worker_count(2, cpu_count=64) == 2

    def test_capped_by_cpus(self):
        assert sweep_worker_count(64, cpu_count=3) == 3

    def test_at_least_one(self):
        assert sweep_worker_count(1, cpu_count=1) == 1

    def test_validation(self):
        with pytest.raises(ArchConfigError):
            sweep_worker_count(0)

    def test_available_cpus_floor(self):
        assert available_cpus(0) == 1
        assert available_cpus() >= 1


# A reference whose encoded payload clears PROCESS_MIN_REFERENCE_BYTES
# (1024 * 256 * 17 B ≈ 4.25 MiB ≥ 4 MiB).
_BIG_ROWS, _BIG_COLS = 1024, 256


class TestPlanEngine:
    def test_big_partitioned_reference_on_big_host(self):
        assert (_BIG_ROWS * _BIG_COLS * ENCODED_BYTES_PER_CELL
                >= PROCESS_MIN_REFERENCE_BYTES)
        assert plan_engine(_BIG_ROWS, _BIG_COLS, n_shards=4,
                           cpu_count=8) == "process"

    def test_small_host_stays_on_threads(self):
        assert plan_engine(_BIG_ROWS, _BIG_COLS, n_shards=4,
                           cpu_count=PROCESS_MIN_CPUS - 1) == "thread"

    def test_single_shard_stays_on_threads(self):
        assert plan_engine(_BIG_ROWS, _BIG_COLS, n_shards=1,
                           cpu_count=8) == "thread"

    def test_small_reference_stays_on_threads(self):
        assert plan_engine(64, 128, n_shards=4, cpu_count=8) == "thread"

    def test_unknown_shard_count_assumes_partitioned(self):
        assert plan_engine(_BIG_ROWS, _BIG_COLS, n_shards=None,
                           cpu_count=8) == "process"

    def test_validation(self):
        with pytest.raises(ArchConfigError):
            plan_engine(0, 64)
        with pytest.raises(ArchConfigError):
            plan_engine(64, 0)


class TestResolveEngine:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "process")
        assert resolve_engine("thread", _BIG_ROWS, _BIG_COLS,
                              n_shards=4, cpu_count=8) == "thread"

    def test_env_beats_plan(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "process")
        # The plan alone would say "thread" on a tiny host.
        assert resolve_engine(None, _BIG_ROWS, _BIG_COLS, n_shards=4,
                              cpu_count=1) == "process"

    def test_falls_back_to_plan(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine(None, _BIG_ROWS, _BIG_COLS, n_shards=4,
                              cpu_count=8) == "process"
        assert resolve_engine(None, 64, 128, n_shards=4,
                              cpu_count=8) == "thread"

    def test_rejects_unknown_names(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        with pytest.raises(CamConfigError, match="engine"):
            resolve_engine("fork", 64, 128)
        monkeypatch.setenv(ENGINE_ENV, "fork")
        with pytest.raises(CamConfigError, match="engine"):
            resolve_engine(None, 64, 128)


class TestPipelineIntegration:
    def test_autotuned_pipeline_matches_explicit(self):
        """n_shards=None resolves to the plan and stays bit-identical
        to an explicitly configured pipeline with the same plan."""
        dataset = build_dataset("A", n_reads=8, read_length=96,
                                n_segments=64, seed=4)
        reads = [r.read.codes for r in dataset.reads]
        auto = ShardedReadMappingPipeline(
            dataset.segments, dataset.model, n_shards=None,
            chunk_size=None, seed=0,
        )
        plan = plan_shards(64, 96)
        assert auto.n_shards == plan.n_shards
        explicit = ShardedReadMappingPipeline(
            dataset.segments, dataset.model, n_shards=plan.n_shards,
            chunk_size=plan.chunk_size, seed=0,
        )
        report_auto = auto.run(reads, threshold=8)
        report_explicit = explicit.run(reads, threshold=8)
        for a, b in zip(report_auto.mappings, report_explicit.mappings, strict=True):
            assert a.matched_rows == b.matched_rows
