"""Tests for the cycle-level timing model."""

from __future__ import annotations

import pytest

from repro import constants
from repro.arch.timing import TimingModel
from repro.errors import ArchConfigError


class TestSearchCycle:
    def test_charge_domain_matches_table1(self):
        assert TimingModel("charge").search_cycle_ns == \
            constants.ASMCAP_SEARCH_TIME_NS

    def test_current_domain_matches_table1(self):
        assert TimingModel("current").search_cycle_ns == \
            constants.EDAM_SEARCH_TIME_NS

    def test_phases_sum_to_cycle(self):
        for domain in ("charge", "current"):
            model = TimingModel(domain)
            assert sum(model.search_phases_ns().values()) == \
                pytest.approx(model.search_cycle_ns)

    def test_edam_has_precharge_and_sampling_phases(self):
        phases = TimingModel("current").search_phases_ns()
        assert "precharge" in phases
        assert "sample_hold" in phases

    def test_asmcap_skips_those_phases(self):
        phases = TimingModel("charge").search_phases_ns()
        assert "precharge" not in phases
        assert "sample_hold" not in phases

    def test_invalid_domain(self):
        with pytest.raises(ArchConfigError):
            TimingModel("other")


class TestReadLatency:
    def test_single_search(self):
        model = TimingModel("charge")
        assert model.read_match_latency_ns(1) == pytest.approx(0.9)

    def test_hdac_adds_one_cycle(self):
        model = TimingModel("charge")
        assert model.read_match_latency_ns(2) == pytest.approx(1.8)

    def test_rotations_add_shift_cycles(self):
        model = TimingModel("charge")
        with_rotation = model.read_match_latency_ns(5, rotation_cycles=6)
        assert with_rotation == pytest.approx(5 * 0.9 + 6 * model.shift_cycle_ns)

    def test_invalid_inputs(self):
        model = TimingModel("charge")
        with pytest.raises(ArchConfigError):
            model.read_match_latency_ns(0)
        with pytest.raises(ArchConfigError):
            model.read_match_latency_ns(1, rotation_cycles=-1)

    def test_throughput(self):
        model = TimingModel("charge")
        assert model.throughput_reads_per_second(1.0) == \
            pytest.approx(1e9 / 0.9)

    def test_speed_ratio_matches_paper(self):
        """Table I: EDAM search is ~2.6-2.7x slower."""
        ratio = (TimingModel("current").search_cycle_ns
                 / TimingModel("charge").search_cycle_ns)
        assert 2.5 <= ratio <= 2.8
