"""Tests for the batch scheduler."""

from __future__ import annotations

import pytest

from repro.arch.config import ArchConfig
from repro.arch.scheduler import ROW_WRITE_NS, BatchScheduler, bank_row_ranges
from repro.errors import ArchConfigError


@pytest.fixture
def scheduler():
    return BatchScheduler(ArchConfig.paper_system(), searches_per_read=1.0)


class TestBankRowRanges:
    def test_even_split_covers_all_rows(self):
        ranges = bank_row_ranges(100, 4)
        assert ranges == ((0, 25), (25, 50), (50, 75), (75, 100))

    def test_uneven_split_balances_within_one_row(self):
        ranges = bank_row_ranges(10, 4)
        assert ranges == ((0, 3), (3, 6), (6, 8), (8, 10))
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_all_requested_banks_used_when_possible(self):
        ranges = bank_row_ranges(9, 8)
        assert len(ranges) == 8
        sizes = [stop - start for start, stop in ranges]
        assert sorted(sizes, reverse=True) == [2, 1, 1, 1, 1, 1, 1, 1]

    def test_more_banks_than_rows_drops_empty_banks(self):
        ranges = bank_row_ranges(3, 8)
        assert ranges == ((0, 1), (1, 2), (2, 3))

    def test_explicit_capacity_matches_load_phase(self):
        ranges = bank_row_ranges(600, 4, bank_capacity=256)
        assert ranges == ((0, 256), (256, 512), (512, 600))

    def test_capacity_overflow_rejected(self):
        with pytest.raises(ArchConfigError):
            bank_row_ranges(1025, 4, bank_capacity=256)

    def test_invalid_arguments(self):
        with pytest.raises(ArchConfigError):
            bank_row_ranges(0, 4)
        with pytest.raises(ArchConfigError):
            bank_row_ranges(10, 0)
        with pytest.raises(ArchConfigError):
            bank_row_ranges(10, 4, bank_capacity=0)


class TestLoadPhase:
    def test_load_latency_bounded_by_array_rows(self, scheduler):
        latency, _ = scheduler.load_cost(100_000)
        # Arrays load in parallel; the serial bound is one array's rows.
        assert latency == pytest.approx(256 * ROW_WRITE_NS)

    def test_small_reference_loads_faster(self, scheduler):
        latency, _ = scheduler.load_cost(100)
        assert latency == pytest.approx(100 * ROW_WRITE_NS)

    def test_load_energy_scales_with_segments(self, scheduler):
        _, small = scheduler.load_cost(100)
        _, large = scheduler.load_cost(1000)
        assert large == pytest.approx(10 * small)

    def test_capacity_enforced(self, scheduler):
        with pytest.raises(ArchConfigError):
            scheduler.load_cost(512 * 256 + 1)

    def test_invalid_segments(self, scheduler):
        with pytest.raises(ArchConfigError):
            scheduler.load_cost(0)


class TestStreamPhase:
    def test_pipeline_latency_structure(self, scheduler):
        schedule = scheduler.schedule(n_reads=1000, n_segments=1000)
        stage = max(scheduler.front_end_latency_ns(),
                    scheduler.search_path_latency_ns())
        expected = scheduler.front_end_latency_ns() + 1000 * stage
        assert schedule.stream_latency_ns == pytest.approx(expected)

    def test_amortisation_improves_with_batch_size(self, scheduler):
        small = scheduler.schedule(n_reads=10, n_segments=1000)
        large = scheduler.schedule(n_reads=100_000, n_segments=1000)
        assert large.amortised_latency_per_read_ns < \
            small.amortised_latency_per_read_ns

    def test_throughput_positive(self, scheduler):
        schedule = scheduler.schedule(n_reads=1000, n_segments=512)
        assert schedule.reads_per_second > 1e8

    def test_strategy_overhead_slows_stream(self):
        plain = BatchScheduler(searches_per_read=1.0)
        heavy = BatchScheduler(searches_per_read=3.0)
        assert (heavy.schedule(100, 100).stream_latency_ns
                > plain.schedule(100, 100).stream_latency_ns)

    def test_energy_accounts_strategies(self):
        plain = BatchScheduler(searches_per_read=1.0).schedule(100, 100)
        heavy = BatchScheduler(searches_per_read=2.0).schedule(100, 100)
        assert heavy.stream_energy_joules > \
            1.5 * plain.stream_energy_joules

    def test_invalid_reads(self, scheduler):
        with pytest.raises(ArchConfigError):
            scheduler.schedule(0, 100)

    def test_invalid_searches_per_read(self):
        with pytest.raises(ArchConfigError):
            BatchScheduler(searches_per_read=0.0)


class TestBreakEven:
    def test_slow_alternative_breaks_even_quickly(self, scheduler):
        # CM-CPU-class alternative: ~0.8 ms per read.
        n = scheduler.break_even_reads(512, per_read_alternative_ns=8e5)
        assert n == 1  # loading pays off after a single read

    def test_fast_alternative_never_breaks_even(self, scheduler):
        n = scheduler.break_even_reads(512, per_read_alternative_ns=0.1)
        assert n > 1 << 40

    def test_invalid_alternative(self, scheduler):
        with pytest.raises(ArchConfigError):
            scheduler.break_even_reads(512, 0.0)
