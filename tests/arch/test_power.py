"""Tests for the area/power models (Section V-B anchors)."""

from __future__ import annotations

import pytest

from repro import constants
from repro.arch.power import (
    array_area_mm2,
    array_power_breakdown,
    cell_area_fraction,
    cell_area_um2,
    component_energies_per_search,
    steady_state_search_period_ns,
)
from repro.cam.cell import AsmCapCell
from repro.errors import ArchConfigError


class TestArea:
    def test_asmcap_cell_area_matches_table1(self):
        assert cell_area_um2(AsmCapCell.TRANSISTOR_COUNT) == pytest.approx(
            constants.ASMCAP_CELL_AREA_UM2
        )

    def test_array_area_matches_paper(self):
        """Section V-B: 1.58 mm^2 for the 256x256 array."""
        assert array_area_mm2() == pytest.approx(1.58, abs=0.02)

    def test_cells_dominate_area(self):
        """Section V-B: more than 99 % of area is cells."""
        assert cell_area_fraction() > 0.99

    def test_area_scales_with_cells(self):
        small = array_area_mm2(64, 64)
        large = array_area_mm2(256, 256)
        assert large > small * 10

    def test_invalid_transistors(self):
        with pytest.raises(ArchConfigError):
            cell_area_um2(0)


class TestPower:
    def test_total_power_matches_paper(self):
        """Section V-B: 7.67 mW per array."""
        breakdown = array_power_breakdown()
        assert breakdown.total_w * 1e3 == pytest.approx(
            constants.ARRAY_POWER_MW, rel=1e-6
        )

    def test_fractions_match_paper_split(self):
        """Section V-B: 75 / 19 / 6 % (cells / shift regs / SAs)."""
        fractions = array_power_breakdown().fractions
        assert fractions["cells"] == pytest.approx(0.75, abs=0.02)
        assert fractions["shift_registers"] == pytest.approx(0.19, abs=0.02)
        assert fractions["sense_amps"] == pytest.approx(0.06, abs=0.02)

    def test_fractions_sum_to_one(self):
        fractions = array_power_breakdown().fractions
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_component_energies_positive(self):
        energies = component_energies_per_search()
        assert all(value > 0 for value in energies.values())

    def test_cells_energy_matches_eq1_at_typical_activity(self):
        energies = component_energies_per_search()
        fraction = constants.TYPICAL_ED_STAR_MISMATCH_FRACTION
        n_mis = fraction * 256
        expected = (256 * n_mis * (256 - n_mis) / 256
                    * constants.MIM_CAPACITOR_FARADS * 1.2**2)
        assert energies["cells"] == pytest.approx(expected)

    def test_search_period_plausible(self):
        """The implied issue period must exceed the raw search time."""
        period = steady_state_search_period_ns()
        assert period > constants.ASMCAP_SEARCH_TIME_NS
        assert period < 100.0

    def test_explicit_period_scales_power(self):
        fast = array_power_breakdown(period_ns=5.0)
        slow = array_power_breakdown(period_ns=10.0)
        assert fast.total_w == pytest.approx(2 * slow.total_w)

    def test_invalid_period(self):
        with pytest.raises(ArchConfigError):
            array_power_breakdown(period_ns=0.0)

    def test_invalid_mismatch_fraction(self):
        with pytest.raises(ArchConfigError):
            component_energies_per_search(mismatch_fraction=2.0)
