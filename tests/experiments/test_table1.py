"""Tests for the Table I regeneration — ratios must match the paper."""

from __future__ import annotations

import pytest

from repro import constants
from repro.experiments.table1 import compute_table1


@pytest.fixture(scope="module")
def table1():
    return compute_table1()


class TestRatios:
    def test_area_ratio(self, table1):
        """Paper: EDAM cell is 1.4x larger."""
        assert table1.area_ratio == pytest.approx(1.4, abs=0.05)

    def test_search_time_ratio(self, table1):
        """Paper: EDAM search is 2.6x slower (2.4 / 0.9 = 2.67)."""
        assert table1.search_time_ratio == pytest.approx(2.67, abs=0.1)

    def test_power_ratio(self, table1):
        """Paper: EDAM cell burns 8.5x more average power."""
        assert table1.power_ratio == pytest.approx(8.5, abs=0.3)


class TestAbsoluteValues:
    def test_cell_areas(self, table1):
        assert table1.asmcap_cell_area_um2 == pytest.approx(
            constants.ASMCAP_CELL_AREA_UM2, abs=0.5
        )
        assert table1.edam_cell_area_um2 == pytest.approx(
            constants.EDAM_CELL_AREA_UM2, abs=1.0
        )

    def test_search_times(self, table1):
        assert table1.asmcap_search_time_ns == pytest.approx(0.9, abs=0.01)
        assert table1.edam_search_time_ns == pytest.approx(2.4, abs=0.01)

    def test_cell_powers(self, table1):
        assert table1.asmcap_cell_power_uw == pytest.approx(0.12, abs=0.01)
        assert table1.edam_cell_power_uw == pytest.approx(1.0, abs=0.05)


class TestRendering:
    def test_render_contains_all_rows(self, table1):
        text = table1.render()
        for fragment in ("Charge domain", "Current domain", "65nm",
                         "1.2V", "Search time", "Average power"):
            assert fragment in text

    def test_rows_structure(self, table1):
        assert len(table1.rows()) == 6
