"""Tests for the Section V-B breakdown and V-D states experiments."""

from __future__ import annotations

import pytest

from repro.experiments.breakdown import compute_breakdown
from repro.experiments.states import compute_states


class TestBreakdown:
    @pytest.fixture(scope="class")
    def breakdown(self):
        return compute_breakdown()

    def test_area_matches_paper(self, breakdown):
        assert breakdown.area_mm2 == pytest.approx(1.58, abs=0.02)

    def test_cells_dominate(self, breakdown):
        assert breakdown.cell_area_fraction > 0.99

    def test_power_total(self, breakdown):
        assert breakdown.power.total_w * 1e3 == pytest.approx(7.67, rel=1e-3)

    def test_power_split(self, breakdown):
        fractions = breakdown.power.fractions
        assert fractions["cells"] == pytest.approx(0.75, abs=0.02)
        assert fractions["shift_registers"] == pytest.approx(0.19, abs=0.02)
        assert fractions["sense_amps"] == pytest.approx(0.06, abs=0.02)

    def test_render(self, breakdown):
        text = breakdown.render()
        assert "7.67" in text
        assert "Shift registers" in text


class TestStates:
    @pytest.fixture(scope="class")
    def states(self):
        return compute_states()

    def test_paper_counts_exact(self, states):
        assert states.edam_states == 44
        assert states.asmcap_states == 566

    def test_read_length_support(self, states):
        """The core claim: ASMCap covers 256-base rows, EDAM cannot."""
        assert states.asmcap_supports_read
        assert not states.edam_supports_read

    def test_sigma_ordering(self, states):
        assert states.asmcap_worst_sigma_mv < states.edam_worst_sigma_mv

    def test_render(self, states):
        text = states.render()
        assert "44" in text and "566" in text
