"""Tests for the experiments CLI (small configurations)."""

from __future__ import annotations

import pytest

from repro.experiments import ablations
from repro.experiments.runner import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Charge domain" in out
        assert "Current domain" in out

    def test_fig8(self, capsys):
        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "CM-CPU" in out and "EDAM" in out
        assert "paper" in out

    def test_states(self, capsys):
        assert main(["states"]) == 0
        out = capsys.readouterr().out
        assert "44" in out and "566" in out

    def test_breakdown(self, capsys):
        assert main(["breakdown"]) == 0
        assert "7.67" in capsys.readouterr().out

    def test_fig7_small(self, capsys):
        code = main(["fig7", "--condition", "A", "--runs", "1",
                     "--reads", "12", "--segments", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 7 (Condition A)" in out
        assert "normalized" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestAblationDrivers:
    def test_defect_ablation_output(self):
        text = ablations.defect_ablation(n_segments=16, seed=1)
        assert "Defect robustness" in text
        assert "100" in text  # 0 % defects -> 100 % self-recovery

    def test_hdac_ablation_small(self):
        text = ablations.hdac_ablation(n_reads=8, n_segments=12, seed=2)
        assert "HDAC ablation" in text
        assert "(no HDAC)" in text

    def test_tasr_ablation_small(self):
        text = ablations.tasr_ablation(n_reads=8, n_segments=12, seed=3)
        assert "TASR ablation" in text
        assert "SR (gamma=0)" in text
