"""Tests for the Fig. 8 system-level comparison.

The headline check: ordering and rough factors must match the paper —
CM-CPU slowest, then ReSMA, SaVI, EDAM, with ASMCap fastest and most
energy efficient; measured ratios within a small factor of the paper's
anchors.
"""

from __future__ import annotations

import pytest

from repro import constants
from repro.experiments.fig8 import (
    SYSTEMS,
    asmcap_read_cost,
    compute_fig8,
    edam_read_cost,
    strategy_search_profile,
)


@pytest.fixture(scope="module")
def fig8():
    return compute_fig8()


def within_factor(measured: float, anchor: float, factor: float) -> bool:
    return anchor / factor <= measured <= anchor * factor


class TestOrdering:
    def test_latency_ordering(self, fig8):
        latencies = [fig8.costs[name].latency_ns for name in SYSTEMS[:5]]
        # CM-CPU > ReSMA > SaVI > EDAM > ASMCap w/o.
        assert all(a > b for a, b in zip(latencies, latencies[1:], strict=False))

    def test_energy_ordering(self, fig8):
        energies = [fig8.costs[name].energy_joules for name in SYSTEMS[:5]]
        assert all(a > b for a, b in zip(energies, energies[1:], strict=False))

    def test_strategies_cost_something(self, fig8):
        plain = fig8.costs["ASMCap w/o H&T"]
        full = fig8.costs["ASMCap w/ H&T"]
        assert full.latency_ns > plain.latency_ns
        assert full.energy_joules > plain.energy_joules

    def test_asmcap_with_strategies_still_beats_edam(self, fig8):
        assert fig8.speedup_over("EDAM", "ASMCap w/ H&T") > 1.0
        assert fig8.energy_efficiency_over("EDAM", "ASMCap w/ H&T") > 1.0


class TestAnchors:
    """Measured ratios within 3x of the paper's reported factors."""

    @pytest.mark.parametrize("name,key", [
        ("CM-CPU", "cm_cpu"), ("ReSMA", "resma"),
        ("SaVI", "savi"), ("EDAM", "edam"),
    ])
    def test_speedup_no_strategy(self, fig8, name, key):
        measured = fig8.speedup_over(name, "ASMCap w/o H&T")
        anchor = constants.FIG8_SPEEDUP_NO_STRATEGY[key]
        assert within_factor(measured, anchor, 3.0)

    @pytest.mark.parametrize("name,key", [
        ("CM-CPU", "cm_cpu"), ("ReSMA", "resma"),
        ("SaVI", "savi"), ("EDAM", "edam"),
    ])
    def test_energy_no_strategy(self, fig8, name, key):
        measured = fig8.energy_efficiency_over(name, "ASMCap w/o H&T")
        anchor = constants.FIG8_ENERGY_EFF_NO_STRATEGY[key]
        assert within_factor(measured, anchor, 3.0)

    @pytest.mark.parametrize("name,key", [
        ("CM-CPU", "cm_cpu"), ("ReSMA", "resma"),
        ("SaVI", "savi"), ("EDAM", "edam"),
    ])
    def test_speedup_with_strategy(self, fig8, name, key):
        measured = fig8.speedup_over(name, "ASMCap w/ H&T")
        anchor = constants.FIG8_SPEEDUP_WITH_STRATEGY[key]
        assert within_factor(measured, anchor, 3.0)

    @pytest.mark.parametrize("name,key", [
        ("CM-CPU", "cm_cpu"), ("ReSMA", "resma"),
        ("SaVI", "savi"), ("EDAM", "edam"),
    ])
    def test_energy_with_strategy(self, fig8, name, key):
        measured = fig8.energy_efficiency_over(name, "ASMCap w/ H&T")
        anchor = constants.FIG8_ENERGY_EFF_WITH_STRATEGY[key]
        assert within_factor(measured, anchor, 3.0)


class TestStrategyProfile:
    def test_condition_a_uses_two_searches(self):
        searches, cycles = strategy_search_profile("A")
        assert searches == pytest.approx(2.0)  # HDAC on, TASR off
        assert cycles == 0.0

    def test_condition_b_rotates_above_tl(self):
        searches, cycles = strategy_search_profile("B")
        # Tl = 6: rotations fire at 6 of the 8 swept thresholds.
        assert searches == pytest.approx(1 + 6 / 8 * 4)
        assert cycles > 0

    def test_left_only_cheaper(self):
        both, _ = strategy_search_profile("B", "both")
        left, _ = strategy_search_profile("B", "left")
        assert left < both


class TestCostHelpers:
    def test_edam_period_exceeds_asmcap(self):
        from repro.arch.power import steady_state_search_period_ns
        assert edam_read_cost().latency_ns > steady_state_search_period_ns()

    def test_asmcap_cost_monotone_in_searches(self):
        from repro.cost.profile import StrategyProfile
        one = asmcap_read_cost(StrategyProfile.plain())
        two = asmcap_read_cost(StrategyProfile(
            condition="test", searches_per_read=2.0,
            rotation_cycles_per_read=0.0, source="analytic",
        ))
        assert two.latency_ns > one.latency_ns
        assert two.energy_joules == pytest.approx(2 * one.energy_joules)

    def test_render_mentions_all_systems(self, fig8):
        text = fig8.render()
        for name in SYSTEMS:
            assert name in text
