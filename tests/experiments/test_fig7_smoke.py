"""Fig. 7 smoke + shape tests (small scale for CI speed).

The paper's qualitative claims checked here:

* ASMCap w/ strategies >= EDAM on mean F1 in both conditions;
* HDAC lifts Condition A at the smallest thresholds;
* TASR lifts Condition B at thresholds >= Tl;
* the ASM systems dominate the exact-matching normalizer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig7 import (
    SYSTEM_EDAM,
    SYSTEM_FULL,
    SYSTEM_PLAIN,
    run_fig7,
    thresholds_for,
)
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def fig7_a():
    return run_fig7("A", n_runs=2, n_reads=48, n_segments=48, seed=3)


@pytest.fixture(scope="module")
def fig7_b():
    return run_fig7("B", n_runs=2, n_reads=48, n_segments=48, seed=3)


class TestThresholds:
    def test_condition_a_sweep(self):
        assert thresholds_for("A") == list(range(1, 9))

    def test_condition_b_sweep(self):
        assert thresholds_for("B") == list(range(2, 17, 2))

    def test_unknown_condition(self):
        with pytest.raises(ExperimentError):
            thresholds_for("Z")


class TestConditionA:
    def test_full_beats_edam_on_mean(self, fig7_a):
        ratio = fig7_a.sweep.mean_ratio(SYSTEM_FULL, SYSTEM_EDAM)
        assert ratio > 1.0

    def test_hdac_helps_at_small_thresholds(self, fig7_a):
        """HDAC's FP correction shows at T = 1-2 in Condition A."""
        full = fig7_a.sweep.systems[SYSTEM_FULL].mean
        plain = fig7_a.sweep.systems[SYSTEM_PLAIN].mean
        assert full[0] + full[1] > plain[0] + plain[1]

    def test_max_ratio_at_small_threshold(self, fig7_a):
        """The paper's 1.8x max gain occurs at T = 1."""
        _, threshold = fig7_a.sweep.max_ratio(SYSTEM_FULL, SYSTEM_EDAM)
        assert threshold <= 3

    def test_normalized_panel_dominates_one(self, fig7_a):
        """All ASM systems beat the exact-matching normalizer."""
        for system in (SYSTEM_EDAM, SYSTEM_PLAIN, SYSTEM_FULL):
            assert (fig7_a.normalized(system) > 1.0).all()


class TestConditionB:
    def test_tasr_helps_above_tl(self, fig7_b):
        """Tl = 6 in Condition B: gains concentrate at T >= 6."""
        thresholds = np.array(fig7_b.thresholds)
        full = fig7_b.sweep.systems[SYSTEM_FULL].mean
        plain = fig7_b.sweep.systems[SYSTEM_PLAIN].mean
        above = thresholds >= 6
        gain_above = (full[above] - plain[above]).mean()
        gain_below = (full[~above] - plain[~above]).mean()
        assert gain_above > gain_below
        assert gain_above > 0.02

    def test_full_beats_edam_on_mean(self, fig7_b):
        assert fig7_b.sweep.mean_ratio(SYSTEM_FULL, SYSTEM_EDAM) > 1.0


class TestRendering:
    def test_render_contains_panels(self, fig7_a):
        text = fig7_a.render()
        assert "F1 (%)" in text
        assert "normalized" in text
        assert SYSTEM_FULL in text
