"""Tests for the synthetic reference generator."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.genome.generator import (
    ReferenceGenerator,
    RepeatProfile,
    generate_reference,
)
from repro.genome.kmer import KmerIndex


class TestRepeatProfile:
    def test_defaults_validate(self):
        RepeatProfile().validate()

    def test_bad_tandem_fraction(self):
        with pytest.raises(DatasetError):
            RepeatProfile(tandem_fraction=1.5).validate()

    def test_fractions_must_leave_unique_sequence(self):
        with pytest.raises(DatasetError):
            RepeatProfile(tandem_fraction=0.5,
                          interspersed_fraction=0.5).validate()

    def test_bad_motif_lengths(self):
        with pytest.raises(DatasetError):
            RepeatProfile(tandem_motif_lengths=(3, 2)).validate()

    def test_bad_divergence(self):
        with pytest.raises(DatasetError):
            RepeatProfile(interspersed_divergence=1.0).validate()


class TestGeneration:
    def test_exact_length(self):
        assert len(generate_reference(1234, seed=0)) == 1234

    def test_deterministic_with_seed(self):
        a = generate_reference(500, seed=42)
        b = generate_reference(500, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_reference(500, seed=1)
        b = generate_reference(500, seed=2)
        assert a != b

    def test_zero_length_raises(self):
        with pytest.raises(DatasetError):
            generate_reference(0)

    def test_gc_content_near_target(self):
        ref = generate_reference(100_000, seed=3, with_repeats=False)
        assert abs(ref.gc_content() - 0.41) < 0.01

    def test_no_repeats_mode(self):
        ref = ReferenceGenerator(repeats=None, seed=0).generate(1000)
        assert len(ref) == 1000


class TestRepeatStructure:
    def test_repeats_reduce_kmer_diversity(self):
        """Repeat planting must make the reference more repetitive."""
        plain = generate_reference(50_000, seed=5, with_repeats=False)
        repeated = generate_reference(50_000, seed=5, with_repeats=True)
        plain_frac = KmerIndex.build(plain, 12).distinct_fraction()
        rep_frac = KmerIndex.build(repeated, 12).distinct_fraction()
        assert rep_frac < plain_frac

    def test_interspersed_copies_exist(self):
        """Some 20-mers must occur many times (the repeat element)."""
        ref = ReferenceGenerator(
            repeats=RepeatProfile(tandem_fraction=0.0,
                                  interspersed_fraction=0.2,
                                  interspersed_divergence=0.0),
            seed=9,
        ).generate(30_000)
        index = KmerIndex.build(ref, 20)
        max_occurrences = max(len(v) for v in index.positions.values())
        assert max_occurrences >= 5
