"""Tests for k-mer packing, canonicalisation and indexing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DatasetError
from repro.genome import alphabet
from repro.genome.kmer import (
    KmerIndex,
    canonical_kmer,
    iter_kmers,
    kmer_profile,
    pack_kmer,
    reverse_complement_kmer,
    unpack_kmer,
)
from repro.genome.sequence import DnaSequence

dna_text = st.text(alphabet="ACGT", min_size=1, max_size=40)


class TestPacking:
    def test_pack_known(self):
        # ACGT = 00 01 10 11 = 0b00011011 = 27
        assert pack_kmer(alphabet.encode("ACGT")) == 27

    @given(dna_text)
    def test_pack_unpack_round_trip(self, text):
        codes = alphabet.encode(text)
        assert np.array_equal(unpack_kmer(pack_kmer(codes), len(text)), codes)

    @given(dna_text)
    def test_reverse_complement_packed_matches_sequence(self, text):
        seq = DnaSequence(text)
        packed = pack_kmer(seq.codes)
        rc_packed = reverse_complement_kmer(packed, len(text))
        assert np.array_equal(unpack_kmer(rc_packed, len(text)),
                              seq.reverse_complement().codes)

    @given(dna_text)
    def test_canonical_is_idempotent_under_rc(self, text):
        packed = pack_kmer(alphabet.encode(text))
        rc = reverse_complement_kmer(packed, len(text))
        assert canonical_kmer(packed, len(text)) == canonical_kmer(
            rc, len(text)
        )


class TestIteration:
    def test_positions_and_count(self):
        pairs = list(iter_kmers(DnaSequence("ACGTA"), 3))
        assert [p for p, _ in pairs] == [0, 1, 2]

    def test_sequence_shorter_than_k(self):
        assert list(iter_kmers(DnaSequence("AC"), 3)) == []

    def test_rolling_matches_direct_packing(self):
        seq = DnaSequence("GATTACAGATTACA")
        for position, kmer in iter_kmers(seq, 5):
            expected = pack_kmer(seq.codes[position : position + 5])
            assert kmer == expected

    def test_invalid_k(self):
        with pytest.raises(DatasetError):
            list(iter_kmers(DnaSequence("ACGT"), 0))

    def test_profile_counts(self):
        profile = kmer_profile(DnaSequence("AAAA"), 2)
        assert profile == {pack_kmer(alphabet.encode("AA")): 3}


class TestIndex:
    def test_lookup_returns_all_positions(self):
        index = KmerIndex.build(DnaSequence("ACGACG"), 3)
        acg = pack_kmer(alphabet.encode("ACG"))
        assert index.lookup(acg) == [0, 3]

    def test_lookup_missing(self):
        index = KmerIndex.build(DnaSequence("AAAA"), 2)
        assert index.lookup(pack_kmer(alphabet.encode("GT"))) == []

    def test_contains(self):
        index = KmerIndex.build(DnaSequence("ACGT"), 2)
        assert index.contains(pack_kmer(alphabet.encode("CG")))
        assert not index.contains(pack_kmer(alphabet.encode("TT")))

    def test_distinct_fraction_unique_sequence(self):
        index = KmerIndex.build(DnaSequence("ACGT"), 2)
        assert index.distinct_fraction() == pytest.approx(1.0)

    def test_distinct_fraction_repetitive(self):
        index = KmerIndex.build(DnaSequence("A" * 100), 4)
        assert index.distinct_fraction() == pytest.approx(1 / 97)

    def test_canonical_index_merges_strands(self):
        # AC and GT are reverse complements: canonical index merges them.
        plain = KmerIndex.build(DnaSequence("ACGT"), 2, canonical=False)
        canonical = KmerIndex.build(DnaSequence("ACGT"), 2, canonical=True)
        assert len(canonical) < len(plain)
