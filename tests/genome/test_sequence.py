"""Tests for DnaSequence: immutability, slicing, rotation, biology."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.genome.sequence import DnaSequence

dna_text = st.text(alphabet="ACGT", max_size=100)


class TestConstruction:
    def test_from_string(self):
        assert str(DnaSequence("GATTACA")) == "GATTACA"

    def test_from_codes(self):
        seq = DnaSequence(np.array([2, 0, 3], dtype=np.uint8))
        assert str(seq) == "GAT"

    def test_copy_constructor(self):
        a = DnaSequence("ACGT")
        assert DnaSequence(a) == a

    def test_rejects_2d(self):
        with pytest.raises(SequenceError):
            DnaSequence(np.zeros((2, 2), dtype=np.uint8))

    def test_rejects_bad_codes(self):
        with pytest.raises(SequenceError):
            DnaSequence(np.array([7], dtype=np.uint8))

    def test_codes_are_read_only(self):
        seq = DnaSequence("ACGT")
        with pytest.raises(ValueError):
            seq.codes[0] = 3

    def test_source_array_mutation_does_not_leak(self):
        source = np.array([0, 1, 2], dtype=np.uint8)
        seq = DnaSequence(source)
        source[0] = 3
        assert str(seq) == "ACG"


class TestProtocol:
    def test_len_and_iter(self):
        seq = DnaSequence("ACG")
        assert len(seq) == 3
        assert list(seq) == ["A", "C", "G"]

    def test_equality_with_string(self):
        assert DnaSequence("acgt") == "ACGT"
        assert DnaSequence("ACGT") == "acgt"

    def test_hashable_and_consistent(self):
        a, b = DnaSequence("ACGT"), DnaSequence("ACGT")
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_slicing(self):
        seq = DnaSequence("GATTACA")
        assert str(seq[1:4]) == "ATT"
        assert str(seq[0]) == "G"
        assert str(seq[::-1]) == "ACATTAG"

    def test_bad_index_type_raises_typed_error(self):
        # Error-contract regression (contractlint CL401): a bad index
        # raises the typed SequenceError, not a bare TypeError.
        with pytest.raises(SequenceError, match="int or slice"):
            DnaSequence("GATTACA")["not-an-index"]

    def test_concatenation(self):
        assert str(DnaSequence("AC") + DnaSequence("GT")) == "ACGT"

    def test_repr_truncates(self):
        seq = DnaSequence("A" * 100)
        assert "..." in repr(seq)


class TestBiology:
    def test_complement(self):
        assert str(DnaSequence("ACGT").complement()) == "TGCA"

    def test_reverse_complement(self):
        assert str(DnaSequence("AACG").reverse_complement()) == "CGTT"

    def test_gc_content(self):
        assert DnaSequence("GGCC").gc_content() == 1.0
        assert DnaSequence("AATT").gc_content() == 0.0
        assert DnaSequence("").gc_content() == 0.0

    def test_base_counts(self):
        counts = DnaSequence("AACGG").base_counts()
        assert counts == {"A": 2, "C": 1, "G": 2, "T": 0}

    @given(dna_text)
    def test_gc_matches_counts(self, text):
        seq = DnaSequence(text)
        counts = seq.base_counts()
        expected = ((counts["G"] + counts["C"]) / len(text)) if text else 0.0
        assert seq.gc_content() == pytest.approx(expected)


class TestRotation:
    def test_rotate_left(self):
        assert str(DnaSequence("ACGT").rotate(1)) == "CGTA"

    def test_rotate_right(self):
        assert str(DnaSequence("ACGT").rotate(-1)) == "TACG"

    def test_rotate_zero_returns_same(self):
        seq = DnaSequence("ACGT")
        assert seq.rotate(0) == seq

    def test_rotate_full_cycle(self):
        seq = DnaSequence("ACGT")
        assert seq.rotate(4) == seq

    def test_rotate_empty(self):
        assert len(DnaSequence("").rotate(3)) == 0

    @given(dna_text.filter(bool), st.integers(-300, 300))
    def test_rotation_is_invertible(self, text, offset):
        seq = DnaSequence(text)
        assert seq.rotate(offset).rotate(-offset) == seq


class TestWindow:
    def test_window_extracts(self):
        assert str(DnaSequence("GATTACA").window(1, 3)) == "ATT"

    def test_window_out_of_range(self):
        with pytest.raises(SequenceError):
            DnaSequence("ACGT").window(2, 3)

    def test_window_negative(self):
        with pytest.raises(SequenceError):
            DnaSequence("ACGT").window(-1, 2)
