"""Tests for FASTA/FASTQ parsing and writing."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.genome.io_fasta import (
    FastaRecord,
    FastqRecord,
    parse_fasta,
    parse_fastq,
    write_fasta,
    write_fastq,
)
from repro.genome.sequence import DnaSequence

FASTA = """>chr1 human chromosome 1
ACGTACGT
ACGT
>chr2
GGGG
"""

FASTQ = """@read1
ACGT
+
IIII
@read2
GGCC
+
!!!!
"""


class TestFastaParsing:
    def test_parses_records(self):
        records = parse_fasta(io.StringIO(FASTA))
        assert [r.name for r in records] == ["chr1", "chr2"]
        assert str(records[0].sequence) == "ACGTACGTACGT"
        assert str(records[1].sequence) == "GGGG"

    def test_multiline_sequences_joined(self):
        records = parse_fasta(io.StringIO(">x\nAC\nGT\n"))
        assert str(records[0].sequence) == "ACGT"

    def test_data_before_header_rejected(self):
        with pytest.raises(DatasetError):
            parse_fasta(io.StringIO("ACGT\n>x\nAC\n"))

    def test_empty_input_rejected(self):
        with pytest.raises(DatasetError):
            parse_fasta(io.StringIO(""))

    def test_ambiguity_error_policy(self):
        with pytest.raises(DatasetError, match="ambigu"):
            parse_fasta(io.StringIO(">x\nACNT\n"))

    def test_ambiguity_skip_policy(self):
        records = parse_fasta(io.StringIO(">x\nACNT\n"), ambiguous="skip")
        assert str(records[0].sequence) == "ACT"

    def test_ambiguity_random_policy_is_seeded(self):
        a = parse_fasta(io.StringIO(">x\nANNNT\n"), ambiguous="random",
                        seed=5)
        b = parse_fasta(io.StringIO(">x\nANNNT\n"), ambiguous="random",
                        seed=5)
        assert a[0].sequence == b[0].sequence
        assert len(a[0].sequence) == 5

    def test_round_trip(self):
        records = [FastaRecord("a", DnaSequence("ACGT" * 30)),
                   FastaRecord("b", DnaSequence("GG"))]
        buffer = io.StringIO()
        write_fasta(records, buffer)
        buffer.seek(0)
        parsed = parse_fasta(buffer)
        assert [(r.name, str(r.sequence)) for r in parsed] == [
            ("a", "ACGT" * 30), ("b", "GG")
        ]

    def test_write_wraps_lines(self):
        buffer = io.StringIO()
        write_fasta([FastaRecord("x", DnaSequence("A" * 100))], buffer,
                    width=60)
        lines = buffer.getvalue().splitlines()
        assert lines[1] == "A" * 60
        assert lines[2] == "A" * 40


class TestFastqParsing:
    def test_parses_records(self):
        records = parse_fastq(io.StringIO(FASTQ))
        assert [r.name for r in records] == ["read1", "read2"]
        assert str(records[0].sequence) == "ACGT"
        assert records[0].qualities.tolist() == [40, 40, 40, 40]
        assert records[1].qualities.tolist() == [0, 0, 0, 0]

    def test_bad_line_count(self):
        with pytest.raises(DatasetError):
            parse_fastq(io.StringIO("@x\nACGT\n+\n"))

    def test_bad_header(self):
        with pytest.raises(DatasetError):
            parse_fastq(io.StringIO("x\nACGT\n+\nIIII\n"))

    def test_skip_policy_rejected_for_fastq(self):
        with pytest.raises(DatasetError, match="desynchronise"):
            parse_fastq(io.StringIO("@x\nACNT\n+\nIIII\n"),
                        ambiguous="skip")

    def test_quality_length_mismatch(self):
        with pytest.raises(DatasetError):
            FastqRecord("x", DnaSequence("ACGT"),
                        np.array([40, 40], dtype=np.int16))

    def test_round_trip(self):
        records = parse_fastq(io.StringIO(FASTQ))
        buffer = io.StringIO()
        write_fastq(records, buffer)
        buffer.seek(0)
        again = parse_fastq(buffer)
        assert all(
            a.name == b.name and a.sequence == b.sequence
            and np.array_equal(a.qualities, b.qualities)
            for a, b in zip(records, again, strict=True)
        )
