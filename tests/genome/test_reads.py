"""Tests for read sampling with provenance."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.genome.edits import ErrorModel
from repro.genome.generator import generate_reference
from repro.genome.reads import ReadSampler


@pytest.fixture(scope="module")
def reference():
    return generate_reference(10_000, seed=0)


class TestSampler:
    def test_fixed_read_length(self, reference):
        sampler = ReadSampler(reference, 256, ErrorModel.condition_b(),
                              seed=1)
        for record in sampler.sample_batch(20):
            assert len(record.read) == 256

    def test_no_errors_reproduces_reference(self, reference):
        sampler = ReadSampler(reference, 100, ErrorModel(), seed=2)
        record = sampler.sample_at(500)
        assert record.read == reference.window(500, 100)
        assert len(record.plan) == 0

    def test_origin_recorded(self, reference):
        sampler = ReadSampler(reference, 64, ErrorModel(), seed=3)
        record = sampler.sample_at(1234)
        assert record.origin == 1234

    def test_sample_origins_stay_in_range(self, reference):
        sampler = ReadSampler(reference, 256, ErrorModel.condition_a(),
                              seed=4)
        for record in sampler.sample_batch(50):
            assert 0 <= record.origin <= len(reference) - 256

    def test_deterministic_with_seed(self, reference):
        model = ErrorModel.condition_a()
        a = ReadSampler(reference, 128, model, seed=9).sample_batch(5)
        b = ReadSampler(reference, 128, model, seed=9).sample_batch(5)
        assert all(x.read == y.read and x.origin == y.origin
                   for x, y in zip(a, b, strict=True))

    def test_model_attached_to_record(self, reference):
        model = ErrorModel.condition_b()
        record = ReadSampler(reference, 64, model, seed=5).sample()
        assert record.model is model

    def test_read_length_must_be_positive(self, reference):
        with pytest.raises(DatasetError):
            ReadSampler(reference, 0, ErrorModel())

    def test_reference_must_fit_read(self):
        tiny = generate_reference(10, seed=0)
        with pytest.raises(DatasetError):
            ReadSampler(tiny, 50, ErrorModel())

    def test_origin_out_of_range(self, reference):
        sampler = ReadSampler(reference, 256, ErrorModel(), seed=6)
        with pytest.raises(DatasetError):
            sampler.sample_at(len(reference))

    def test_negative_batch_raises(self, reference):
        sampler = ReadSampler(reference, 64, ErrorModel(), seed=7)
        with pytest.raises(DatasetError):
            sampler.sample_batch(-1)

    def test_slack_absorbs_heavy_deletions(self, reference):
        """Even a 5 % deletion rate must still yield full-length reads."""
        model = ErrorModel(deletion=0.05, burst_prob=0.5)
        sampler = ReadSampler(reference, 256, model, seed=8)
        for record in sampler.sample_batch(30):
            assert len(record.read) == 256
