"""Tests for the Phred quality model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.genome.quality import (
    QualityProfile,
    error_probability_to_phred,
    phred_to_error_probability,
    quality_aware_substitutions,
)
from repro.genome.sequence import DnaSequence


class TestConversions:
    def test_known_values(self):
        assert phred_to_error_probability(10) == pytest.approx(0.1)
        assert phred_to_error_probability(20) == pytest.approx(0.01)
        assert phred_to_error_probability(30) == pytest.approx(0.001)

    def test_round_trip(self):
        for quality in (5, 10, 20, 37, 60):
            probability = float(phred_to_error_probability(quality))
            assert int(error_probability_to_phred(probability)) == quality

    def test_out_of_range_quality(self):
        with pytest.raises(DatasetError):
            phred_to_error_probability(-1)
        with pytest.raises(DatasetError):
            phred_to_error_probability(100)

    def test_bad_probability(self):
        with pytest.raises(DatasetError):
            error_probability_to_phred(0.0)
        with pytest.raises(DatasetError):
            error_probability_to_phred(1.5)


class TestProfile:
    def test_mean_curve_decays(self):
        profile = QualityProfile(start_quality=38, end_quality=28)
        curve = profile.mean_qualities(100)
        assert curve[0] == pytest.approx(38)
        assert curve[-1] == pytest.approx(28)
        assert (np.diff(curve) <= 0).all()

    def test_sampling_within_range(self, rng):
        profile = QualityProfile(jitter=5.0)
        qualities = profile.sample(256, rng)
        assert qualities.min() >= 0
        assert qualities.max() <= 93
        assert qualities.dtype == np.int16

    def test_sampling_tracks_mean(self, rng):
        profile = QualityProfile(start_quality=30, end_quality=30,
                                 jitter=2.0)
        qualities = np.concatenate([profile.sample(256, rng)
                                    for _ in range(50)])
        assert abs(qualities.mean() - 30) < 0.5

    def test_expected_error_rate(self):
        flat = QualityProfile(start_quality=20, end_quality=20, jitter=0)
        assert flat.expected_error_rate(100) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(DatasetError):
            QualityProfile(start_quality=-5)
        with pytest.raises(DatasetError):
            QualityProfile(jitter=-1)
        with pytest.raises(DatasetError):
            QualityProfile().mean_qualities(0)


class TestQualityAwareSubstitutions:
    def test_error_rate_tracks_quality(self, rng):
        read = DnaSequence(rng.integers(0, 4, 20_000).astype(np.uint8))
        qualities = np.full(len(read), 10, dtype=np.int16)  # P(err) = 0.1
        edited, errors = quality_aware_substitutions(read, qualities, rng)
        assert errors.mean() == pytest.approx(0.1, abs=0.01)
        # Every flagged error really changed the base.
        changed = read.codes != edited.codes
        assert np.array_equal(changed, errors)

    def test_high_quality_few_errors(self, rng):
        read = DnaSequence(rng.integers(0, 4, 10_000).astype(np.uint8))
        qualities = np.full(len(read), 40, dtype=np.int16)
        _, errors = quality_aware_substitutions(read, qualities, rng)
        assert errors.mean() < 0.001

    def test_shape_mismatch(self, rng):
        read = DnaSequence("ACGT")
        with pytest.raises(DatasetError):
            quality_aware_substitutions(read, np.array([30, 30]), rng)
