"""Tests for edit injection: rates, provenance, burst behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.edit_distance import edit_distance
from repro.errors import EditModelError
from repro.genome.edits import EditKind, ErrorModel, inject_edits
from repro.genome.generator import generate_reference
from repro.genome.sequence import DnaSequence


class TestErrorModel:
    def test_condition_a_rates(self):
        model = ErrorModel.condition_a()
        assert model.substitution == pytest.approx(0.01)
        assert model.insertion == pytest.approx(0.0005)
        assert model.deletion == pytest.approx(0.0005)
        assert model.indel_rate == pytest.approx(0.001)

    def test_condition_b_rates(self):
        model = ErrorModel.condition_b()
        assert model.substitution == pytest.approx(0.001)
        assert model.indel_rate == pytest.approx(0.01)

    def test_substitution_fraction(self):
        model = ErrorModel(substitution=0.03, insertion=0.005, deletion=0.005)
        assert model.substitution_fraction == pytest.approx(0.75)

    def test_zero_model_fraction(self):
        assert ErrorModel().substitution_fraction == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(EditModelError):
            ErrorModel(substitution=-0.1)

    def test_total_rate_must_stay_below_one(self):
        with pytest.raises(EditModelError):
            ErrorModel(substitution=0.5, insertion=0.3, deletion=0.3)


class TestInjection:
    def test_no_errors_is_identity(self, rng):
        seq = generate_reference(500, seed=0)
        edited, plan = inject_edits(seq, ErrorModel(), rng)
        assert edited == seq
        assert len(plan) == 0

    def test_substitutions_always_change_base(self, rng):
        seq = generate_reference(2000, seed=1)
        model = ErrorModel(substitution=0.05)
        edited, plan = inject_edits(seq, model, rng)
        assert len(edited) == len(seq)  # substitutions preserve length
        assert plan.n_substitutions > 0
        assert plan.n_indels == 0
        # Every recorded substitution really differs from the original.
        for edit in plan.edits:
            original = str(seq)[edit.position]
            assert edit.base != original

    def test_substitution_count_matches_hamming(self, rng):
        seq = generate_reference(2000, seed=2)
        model = ErrorModel(substitution=0.05)
        edited, plan = inject_edits(seq, model, rng)
        differences = int(np.count_nonzero(seq.codes != edited.codes))
        assert differences == plan.n_substitutions

    def test_deletions_shorten(self, rng):
        seq = generate_reference(1000, seed=3)
        model = ErrorModel(deletion=0.05)
        edited, plan = inject_edits(seq, model, rng)
        assert len(edited) == len(seq) - plan.n_deletions

    def test_insertions_lengthen(self, rng):
        seq = generate_reference(1000, seed=4)
        model = ErrorModel(insertion=0.05)
        edited, plan = inject_edits(seq, model, rng)
        assert len(edited) == len(seq) + plan.n_insertions

    def test_rates_are_respected(self, rng):
        seq = generate_reference(100_000, seed=5, with_repeats=False)
        model = ErrorModel(substitution=0.01, insertion=0.002,
                           deletion=0.002)
        _, plan = inject_edits(seq, model, rng)
        n = len(seq)
        assert plan.n_substitutions == pytest.approx(0.01 * n, rel=0.2)
        assert plan.n_insertions == pytest.approx(0.002 * n, rel=0.3)
        assert plan.n_deletions == pytest.approx(0.002 * n, rel=0.3)

    def test_edit_distance_bounded_by_plan(self, rng):
        """True ED never exceeds the number of injected edits."""
        for seed in range(5):
            local = np.random.default_rng(seed)
            seq = generate_reference(300, seed=seed)
            model = ErrorModel(substitution=0.02, insertion=0.01,
                               deletion=0.01)
            edited, plan = inject_edits(seq, model, local)
            assert edit_distance(seq, edited) <= len(plan)

    def test_burst_deletions_are_consecutive(self):
        rng = np.random.default_rng(99)
        seq = generate_reference(5000, seed=6)
        model = ErrorModel(deletion=0.01, burst_prob=0.9)
        _, plan = inject_edits(seq, model, rng)
        deletions = [e.position for e in plan.edits
                     if e.kind is EditKind.DELETION]
        runs = sum(1 for a, b in zip(deletions, deletions[1:], strict=False) if b == a + 1)
        assert runs > 0  # with burst_prob=0.9 consecutive runs must appear

    def test_deterministic_given_rng_state(self):
        seq = generate_reference(500, seed=7)
        model = ErrorModel.condition_b()
        first, _ = inject_edits(seq, model, np.random.default_rng(1))
        second, _ = inject_edits(seq, model, np.random.default_rng(1))
        assert first == second


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_injected_plan_counts_are_consistent(seed):
    """Property: plan length decomposes into the three edit kinds."""
    rng = np.random.default_rng(seed)
    seq = DnaSequence(rng.integers(0, 4, 200).astype(np.uint8))
    model = ErrorModel(substitution=0.05, insertion=0.02, deletion=0.02,
                       burst_prob=0.3)
    _, plan = inject_edits(seq, model, rng)
    assert (plan.n_substitutions + plan.n_insertions + plan.n_deletions
            == len(plan))
