"""Tests for the Condition A/B dataset builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.genome.datasets import build_dataset, resolve_condition
from repro.genome.edits import ErrorModel


class TestResolveCondition:
    def test_condition_a(self):
        model = resolve_condition("A")
        assert model.substitution == pytest.approx(0.01)

    def test_condition_b_case_insensitive(self):
        model = resolve_condition(" b ")
        assert model.indel_rate == pytest.approx(0.01)

    def test_explicit_model_passthrough(self):
        model = ErrorModel(substitution=0.2)
        assert resolve_condition(model) is model

    def test_unknown_condition(self):
        with pytest.raises(DatasetError):
            resolve_condition("C")


class TestBuildDataset:
    def test_shapes(self, small_dataset_a):
        ds = small_dataset_a
        assert ds.segments.shape == (32, 128)
        assert len(ds.reads) == 24
        assert ds.read_length == 128
        assert ds.n_segments == 32

    def test_segments_tile_reference(self, small_dataset_a):
        ds = small_dataset_a
        for i in range(ds.n_segments):
            expected = ds.reference.codes[i * 128 : (i + 1) * 128]
            assert np.array_equal(ds.segments[i], expected)

    def test_read_origins_on_segment_grid(self, small_dataset_a):
        for record in small_dataset_a.reads:
            assert record.origin % small_dataset_a.read_length == 0

    def test_origin_segment_index(self, small_dataset_a):
        ds = small_dataset_a
        for record in ds.reads:
            index = ds.origin_segment_index(record)
            assert 0 <= index < ds.n_segments

    def test_deterministic(self):
        a = build_dataset("A", n_reads=4, read_length=64, n_segments=8,
                          seed=33)
        b = build_dataset("A", n_reads=4, read_length=64, n_segments=8,
                          seed=33)
        assert np.array_equal(a.segments, b.segments)
        assert all(x.read == y.read for x, y in zip(a.reads, b.reads, strict=True))

    def test_condition_label_attached(self, small_dataset_b):
        assert small_dataset_b.condition == "B"
        assert small_dataset_b.model.indel_rate == pytest.approx(0.01)

    def test_invalid_counts(self):
        with pytest.raises(DatasetError):
            build_dataset("A", n_reads=0)
        with pytest.raises(DatasetError):
            build_dataset("A", n_segments=0)

    def test_reads_differ_from_clean_segment_under_errors(self):
        """Condition A injects ~1 % substitutions: most reads differ."""
        ds = build_dataset("A", n_reads=32, read_length=256, n_segments=8,
                           seed=11)
        n_identical = sum(
            int(np.array_equal(r.read.codes,
                               ds.segments[ds.origin_segment_index(r)]))
            for r in ds.reads
        )
        assert n_identical < len(ds.reads) / 2

    def test_segment_accessor(self, small_dataset_a):
        seg = small_dataset_a.segment(3)
        assert np.array_equal(seg.codes, small_dataset_a.segments[3])
