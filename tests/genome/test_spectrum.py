"""Tests for the Ti/Tv mutation spectrum."""

from __future__ import annotations

import pytest

from repro.errors import EditModelError
from repro.genome.generator import generate_reference
from repro.genome.spectrum import (
    MutationSpectrum,
    is_transition,
    measure_ti_tv,
)


class TestTransitionClassification:
    @pytest.mark.parametrize("a,b,expected", [
        (0, 2, True),   # A -> G transition
        (2, 0, True),   # G -> A transition
        (1, 3, True),   # C -> T transition
        (3, 1, True),   # T -> C transition
        (0, 1, False),  # A -> C transversion
        (0, 3, False),  # A -> T transversion
        (2, 1, False),  # G -> C transversion
    ])
    def test_pairs(self, a, b, expected):
        assert is_transition(a, b) == expected

    def test_identity_rejected(self):
        with pytest.raises(EditModelError):
            is_transition(0, 0)


class TestSpectrum:
    def test_transition_probability(self):
        assert MutationSpectrum(2.0).transition_probability == \
            pytest.approx(2 / 3)
        assert MutationSpectrum(0.5).transition_probability == \
            pytest.approx(1 / 3)

    def test_replacement_differs_from_original(self, rng):
        spectrum = MutationSpectrum(2.0)
        for original in range(4):
            for _ in range(50):
                assert spectrum.replacement(original, rng) != original

    def test_measured_ratio_tracks_target(self, rng):
        reference = generate_reference(100_000, seed=3, with_repeats=False)
        spectrum = MutationSpectrum(ti_tv_ratio=2.0)
        edited, mask = spectrum.substitute(reference, 0.02, rng)
        assert mask.sum() > 1000
        measured = measure_ti_tv(reference, edited)
        assert measured == pytest.approx(2.0, rel=0.15)

    def test_uniform_spectrum_is_half(self, rng):
        reference = generate_reference(100_000, seed=4, with_repeats=False)
        spectrum = MutationSpectrum(ti_tv_ratio=0.5)
        edited, _ = spectrum.substitute(reference, 0.02, rng)
        assert measure_ti_tv(reference, edited) == pytest.approx(0.5,
                                                                 rel=0.15)

    def test_substitution_rate_respected(self, rng):
        reference = generate_reference(50_000, seed=5, with_repeats=False)
        _, mask = MutationSpectrum().substitute(reference, 0.01, rng)
        assert mask.mean() == pytest.approx(0.01, rel=0.2)

    def test_invalid_ratio(self):
        with pytest.raises(EditModelError):
            MutationSpectrum(0.0)

    def test_invalid_rate(self, rng):
        with pytest.raises(EditModelError):
            MutationSpectrum().substitute(generate_reference(10, seed=0),
                                          1.0, rng)


class TestMeasurement:
    def test_no_substitutions_rejected(self):
        seq = generate_reference(100, seed=6)
        with pytest.raises(EditModelError):
            measure_ti_tv(seq, seq)

    def test_pure_transitions_infinite(self, rng):
        from repro.genome.sequence import DnaSequence
        from repro.genome.spectrum import TRANSITION_PARTNER
        original = generate_reference(100, seed=7)
        codes = original.codes.copy()
        codes[10] = TRANSITION_PARTNER[codes[10]]
        assert measure_ti_tv(original, DnaSequence(codes)) == float("inf")

    def test_length_mismatch(self):
        with pytest.raises(EditModelError):
            measure_ti_tv(generate_reference(10, seed=0),
                          generate_reference(11, seed=0))
