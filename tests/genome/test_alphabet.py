"""Tests for repro.genome.alphabet: encoding, complements, validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AlphabetError
from repro.genome import alphabet

dna_text = st.text(alphabet="ACGT", max_size=200)


class TestEncodeDecode:
    def test_known_codes(self):
        codes = alphabet.encode("ACGT")
        assert codes.tolist() == [0, 1, 2, 3]

    def test_lowercase_accepted(self):
        assert alphabet.encode("acgt").tolist() == [0, 1, 2, 3]

    def test_empty_string(self):
        assert alphabet.encode("").size == 0
        assert alphabet.decode(np.array([], dtype=np.uint8)) == ""

    def test_invalid_character_raises_with_position(self):
        with pytest.raises(AlphabetError, match="position 2"):
            alphabet.encode("ACNT")

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(AlphabetError):
            alphabet.decode(np.array([4], dtype=np.uint8))

    @given(dna_text)
    def test_round_trip(self, text):
        assert alphabet.decode(alphabet.encode(text)) == text

    def test_encode_returns_uint8(self):
        assert alphabet.encode("GATTACA").dtype == np.uint8


class TestComplement:
    def test_complement_pairs(self):
        codes = alphabet.encode("ACGT")
        assert alphabet.decode(alphabet.complement_codes(codes)) == "TGCA"

    @given(dna_text)
    def test_complement_is_involution(self, text):
        codes = alphabet.encode(text)
        twice = alphabet.complement_codes(alphabet.complement_codes(codes))
        assert np.array_equal(codes, twice)

    @given(dna_text)
    def test_reverse_complement_is_involution(self, text):
        codes = alphabet.encode(text)
        twice = alphabet.reverse_complement_codes(
            alphabet.reverse_complement_codes(codes)
        )
        assert np.array_equal(codes, twice)

    def test_complement_rejects_invalid(self):
        with pytest.raises(AlphabetError):
            alphabet.complement_codes(np.array([5], dtype=np.uint8))


class TestValidation:
    def test_valid_sequences(self):
        assert alphabet.is_valid_sequence("GATTACA")
        assert alphabet.is_valid_sequence("")

    def test_invalid_sequences(self):
        assert not alphabet.is_valid_sequence("GATTACAN")
        assert not alphabet.is_valid_sequence("123")


class TestRandomCodes:
    def test_length_and_range(self, rng):
        codes = alphabet.random_codes(1000, rng)
        assert codes.shape == (1000,)
        assert codes.min() >= 0 and codes.max() <= 3

    def test_gc_content_respected(self, rng):
        codes = alphabet.random_codes(50_000, rng, gc_content=0.2)
        gc = np.isin(codes, [1, 2]).mean()
        assert abs(gc - 0.2) < 0.02

    def test_extreme_gc(self, rng):
        codes = alphabet.random_codes(1000, rng, gc_content=0.0)
        assert not np.isin(codes, [1, 2]).any()

    def test_invalid_gc_raises(self, rng):
        with pytest.raises(AlphabetError):
            alphabet.random_codes(10, rng, gc_content=1.5)

    def test_negative_length_raises(self, rng):
        with pytest.raises(AlphabetError):
            alphabet.random_codes(-1, rng)
