"""Cross-backend bit-identity on every execution path.

The tentpole contract of the kernel registry: swapping the backend
knob changes *nothing observable* — decisions, per-read costs,
cost-ledger views and aggregate reports are exactly equal on the
scalar, batched, sweep and sharded paths (and through the streaming
service and multi-session frontend built on them).  Everything here is
asserted with ``==`` / ``array_equal``, never ``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.cam.cell import MatchMode
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.core.pipeline import (
    ReadMappingPipeline,
    ShardedReadMappingPipeline,
)
from repro.service.frontend import MappingFrontend
from repro.service.stream import StreamingMappingService

BACKENDS = ("numpy-gemm", "bitpacked")
THRESHOLD = 12


def _reads(dataset) -> np.ndarray:
    return np.stack([record.read.codes for record in dataset.reads])


def _matcher(dataset, backend: str) -> AsmCapMatcher:
    array = CamArray(rows=dataset.n_segments,
                     cols=dataset.read_length,
                     noisy=True, seed=3, backend=backend)
    array.store(dataset.segments)
    return AsmCapMatcher(array, dataset.model, MatcherConfig(), seed=5)


def _assert_stats_equal(a, b):
    assert a.n_searches == b.n_searches
    assert a.n_rotation_cycles == b.n_rotation_cycles
    assert a.total_energy_joules == b.total_energy_joules
    assert a.total_latency_ns == b.total_latency_ns


def _assert_reports_identical(a, b):
    assert a.n_reads == b.n_reads
    assert a.n_searches == b.n_searches
    assert a.total_energy_joules == b.total_energy_joules
    assert a.total_latency_ns == b.total_latency_ns
    assert len(a.mappings) == len(b.mappings)
    for left, right in zip(a.mappings, b.mappings, strict=True):
        assert left.read_index == right.read_index
        assert left.matched_rows == right.matched_rows


class TestScalarPath:
    def test_search_and_match_identical(self, small_dataset_a):
        reads = _reads(small_dataset_a)[:6]
        per_backend = []
        for backend in BACKENDS:
            matcher = _matcher(small_dataset_a, backend)
            outcomes = [matcher.match(read, THRESHOLD, query_key=i)
                        for i, read in enumerate(reads)]
            per_backend.append((outcomes, matcher.array.stats))
        (ref_outcomes, ref_stats), (alt_outcomes, alt_stats) = per_backend
        for ref, alt in zip(ref_outcomes, alt_outcomes, strict=True):
            assert np.array_equal(ref.decisions, alt.decisions)
            assert ref.n_searches == alt.n_searches
            assert ref.energy_joules == alt.energy_joules
            assert ref.latency_ns == alt.latency_ns
        _assert_stats_equal(ref_stats, alt_stats)

    def test_raw_counts_identical(self, small_dataset_a):
        reads = _reads(small_dataset_a)[:4]
        for mode in (MatchMode.ED_STAR, MatchMode.HAMMING):
            counts = [
                _matcher(small_dataset_a, b).array.mismatch_counts_batch(
                    reads, mode)
                for b in BACKENDS
            ]
            assert np.array_equal(counts[0], counts[1])


class TestBatchedPath:
    def test_match_batch_identical(self, small_dataset_a):
        reads = _reads(small_dataset_a)
        outcomes = []
        for backend in BACKENDS:
            matcher = _matcher(small_dataset_a, backend)
            outcomes.append(matcher.match_batch(
                reads, THRESHOLD, query_keys=list(range(reads.shape[0]))
            ))
        ref, alt = outcomes
        assert np.array_equal(ref.decisions, alt.decisions)
        assert np.array_equal(ref.n_searches, alt.n_searches)
        assert np.array_equal(ref.energy_joules, alt.energy_joules)
        assert np.array_equal(ref.latency_ns, alt.latency_ns)
        assert np.array_equal(ref.hdac_mask, alt.hdac_mask)
        assert np.array_equal(ref.tasr_mask, alt.tasr_mask)


class TestSweepPath:
    def test_match_sweep_identical(self, small_dataset_a):
        reads = _reads(small_dataset_a)[:8]
        thresholds = np.asarray([6, 10, 14], dtype=int)
        outcomes = []
        for backend in BACKENDS:
            matcher = _matcher(small_dataset_a, backend)
            outcomes.append(matcher.match_sweep(reads, thresholds))
        ref, alt = outcomes
        assert np.array_equal(ref.decisions, alt.decisions)
        assert np.array_equal(ref.n_searches, alt.n_searches)
        assert np.array_equal(ref.energy_joules, alt.energy_joules)


class TestShardedPath:
    def test_sharded_run_identical(self, small_dataset_a):
        reads = list(_reads(small_dataset_a))
        reports, stats = [], []
        for backend in BACKENDS:
            pipeline = ShardedReadMappingPipeline(
                small_dataset_a.segments, small_dataset_a.model,
                n_shards=4, seed=3, backend=backend,
            )
            assert pipeline.backend == backend
            with pipeline:
                reports.append(pipeline.run(reads, THRESHOLD))
                stats.append(pipeline.merged_stats())
        _assert_reports_identical(reports[0], reports[1])
        _assert_stats_equal(stats[0], stats[1])


class TestServicePaths:
    def test_streaming_service_identical(self, small_dataset_a):
        reads = list(_reads(small_dataset_a))
        reports = []
        for backend in BACKENDS:
            service = StreamingMappingService(
                small_dataset_a.segments, small_dataset_a.model,
                threshold=THRESHOLD, micro_batch=5, seed=3,
                backend=backend,
            )
            assert service.backend == backend
            service.submit_many(reads)
            reports.append(service.close())
        _assert_reports_identical(reports[0], reports[1])

    def test_frontend_sessions_identical(self, small_dataset_a):
        reads = list(_reads(small_dataset_a))
        reports = []
        for backend in BACKENDS:
            with MappingFrontend(small_dataset_a.segments,
                                 small_dataset_a.model,
                                 backend=backend) as frontend:
                session = frontend.session(threshold=THRESHOLD, seed=3)
                session.submit_many(reads)
                reports.append(session.close())
            assert frontend.encode_count() == 1
        _assert_reports_identical(reports[0], reports[1])

    def test_session_backend_override(self, small_dataset_a):
        reads = list(_reads(small_dataset_a))
        with MappingFrontend(small_dataset_a.segments,
                             small_dataset_a.model,
                             backend="numpy-gemm") as frontend:
            default = frontend.session(threshold=THRESHOLD, seed=3)
            packed = frontend.session(threshold=THRESHOLD, seed=3,
                                      backend="bitpacked")
            assert default.pipeline.backend == "numpy-gemm"
            assert packed.pipeline.backend == "bitpacked"
            default.submit_many(reads)
            packed.submit_many(reads)
            _assert_reports_identical(default.close(), packed.close())


class TestPipelineBackendProperty:
    def test_batched_pipeline_reports_backend(self, small_dataset_a):
        pipeline = ReadMappingPipeline(
            _matcher(small_dataset_a, "bitpacked")
        )
        assert pipeline.backend == "bitpacked"
