"""Kernel-backend registry, resolution order and exact-count contracts.

The binding contract of :mod:`repro.kernels`: every registered backend
returns **exactly equal integer counts** — the boolean comparison sweep
is the reference semantics, the GEMM and bitpacked lanes are
implementations of it.  These tests pin the registry/resolution API and
the bit-identity at the primitive level; the execution-path identity
(scalar/batched/sweep/sharded) lives in ``test_cross_backend.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cam.array import CamArray, StoredReference
from repro.cam.cell import MatchMode
from repro.distance.ed_star import mismatch_counts_all_reads
from repro.distance.edit_distance import composition_lower_bound
from repro.errors import CamConfigError
from repro.kernels import (
    DEFAULT_BACKEND,
    KERNEL_BACKEND_ENV,
    BitpackedBackend,
    GemmBackend,
    as_backend,
    available_backends,
    encode_reference,
    encoded_reference_arrays,
    encoded_reference_from_arrays,
    get_backend,
    resolve_backend,
    slice_encoded_reference,
)
from repro.knobs import validate_service_knobs


def _reference_counts(segments: np.ndarray, queries: np.ndarray,
                      ed_star: bool) -> np.ndarray:
    """The boolean-sweep reference semantics, computed directly."""
    if ed_star:
        return mismatch_counts_all_reads(segments, queries)
    return np.count_nonzero(
        segments[None, :, :] != queries[:, None, :], axis=2
    ).astype(np.intp)


class TestRegistry:
    def test_both_builtin_backends_registered(self):
        names = available_backends()
        assert "numpy-gemm" in names
        assert "bitpacked" in names
        assert names == tuple(sorted(names))

    def test_get_backend_unknown_name(self):
        with pytest.raises(CamConfigError) as excinfo:
            get_backend("warp-drive")
        # The error lists what IS registered.
        assert "numpy-gemm" in str(excinfo.value)

    def test_as_backend_defaults_to_gemm(self):
        assert as_backend(None).name == DEFAULT_BACKEND == "numpy-gemm"

    def test_as_backend_passthrough(self):
        backend = BitpackedBackend()
        assert as_backend(backend) is backend
        assert as_backend("bitpacked").name == "bitpacked"

    def test_validate_service_knobs_backend(self):
        validate_service_knobs(backend="bitpacked")
        validate_service_knobs(backend=GemmBackend())
        with pytest.raises(CamConfigError):
            validate_service_knobs(backend="no-such-backend")


class TestEncodedReferenceErrors:
    """Error-contract regressions (contractlint CL401): encoding
    helpers raise typed config errors, not bare ``ValueError``."""

    def test_slice_out_of_range_raises_typed_error(self):
        encoded = encode_reference(np.zeros((4, 8), dtype=np.uint8))
        with pytest.raises(CamConfigError, match="outside the encoding"):
            slice_encoded_reference(encoded, 2, 9)

    def test_from_arrays_missing_field_raises_typed_error(self):
        encoded = encode_reference(np.zeros((2, 8), dtype=np.uint8))
        arrays = dict(encoded_reference_arrays(encoded))
        del arrays["segments"]
        with pytest.raises(CamConfigError, match="missing arrays"):
            encoded_reference_from_arrays(arrays)


class TestResolutionOrder:
    """Explicit knob > ``REPRO_KERNEL_BACKEND`` env var > autotune."""

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "bitpacked")
        assert resolve_backend("numpy-gemm").name == "numpy-gemm"

    def test_env_beats_autotune(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "bitpacked")
        assert resolve_backend(None).name == "bitpacked"

    def test_invalid_env_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "warp-drive")
        with pytest.raises(CamConfigError) as excinfo:
            resolve_backend(None)
        assert KERNEL_BACKEND_ENV in str(excinfo.value)

    def test_autotune_tail_returns_registered_backend(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert resolve_backend(None).name in available_backends()

    def test_instance_passthrough(self):
        backend = BitpackedBackend()
        assert resolve_backend(backend) is backend

    def test_array_resolves_explicit_knob(self):
        array = CamArray(rows=4, cols=16, noisy=False,
                         backend="bitpacked")
        assert array.backend == "bitpacked"

    def test_array_rejects_unknown_backend(self):
        with pytest.raises(CamConfigError):
            CamArray(rows=4, cols=16, backend="warp-drive")

    def test_array_env_override(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "bitpacked")
        assert CamArray(rows=4, cols=16, noisy=False).backend == "bitpacked"


class TestEncodeOnce:
    def test_one_pass_serves_every_backend(self):
        rng = np.random.default_rng(7)
        segments = rng.integers(0, 4, (8, 32)).astype(np.uint8)
        queries = rng.integers(0, 4, (5, 32)).astype(np.uint8)
        ref = StoredReference.encode(segments)
        assert ref.n_encodes == 1
        for name in available_backends():
            ref.counts_batch(queries, MatchMode.ED_STAR, backend=name)
            ref.counts_batch(queries, MatchMode.HAMMING, backend=name)
            ref.counts_batch_dual(queries, backend=name)
        assert ref.n_encodes == 1

    def test_encoded_reference_arrays_are_read_only(self):
        encoded = encode_reference(np.zeros((2, 8), dtype=np.uint8))
        for arr in (encoded.segments, encoded.onehot, encoded.planes,
                    encoded.valid):
            assert not arr.flags.writeable


# -- randomized exact-equality properties (satellite: fallback lanes) --

# Codes 0..3 are ACGT; 4..6 stand for N/ambiguity codes that force the
# boolean fallback lane.
_acgt_rows = st.integers(min_value=1, max_value=7)
_cols = st.integers(min_value=1, max_value=70)


@st.composite
def _workload(draw, max_code: int):
    """(segments, queries) with shared width; queries may be empty."""
    n_rows = draw(_acgt_rows)
    n_cols = draw(_cols)
    n_queries = draw(st.integers(min_value=0, max_value=5))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    segments = rng.integers(0, 4, (n_rows, n_cols)).astype(np.uint8)
    queries = rng.integers(0, max_code + 1,
                           (n_queries, n_cols)).astype(np.uint8)
    return segments, queries


class TestExactEqualityProperties:
    @settings(max_examples=60, deadline=None)
    @given(_workload(max_code=3))
    def test_acgt_counts_match_reference(self, workload):
        segments, queries = workload
        encoded = encode_reference(segments)
        for ed_star in (True, False):
            expected = _reference_counts(segments, queries, ed_star)
            for name in available_backends():
                got = get_backend(name).counts_batch(encoded, queries,
                                                     ed_star=ed_star)
                assert got.shape == expected.shape
                assert np.array_equal(got, expected), name

    @settings(max_examples=60, deadline=None)
    @given(_workload(max_code=6))
    def test_ambiguity_codes_fall_back_exactly(self, workload):
        """Reads with N/ambiguity codes agree with the boolean
        reference on every backend (the packed/GEMM lanes route them
        to the shared fallback)."""
        segments, queries = workload
        encoded = encode_reference(segments)
        for ed_star in (True, False):
            expected = _reference_counts(segments, queries, ed_star)
            for name in available_backends():
                got = get_backend(name).counts_batch(encoded, queries,
                                                     ed_star=ed_star)
                assert np.array_equal(got, expected), name

    @settings(max_examples=40, deadline=None)
    @given(_workload(max_code=6))
    def test_dual_equals_two_single_passes(self, workload):
        segments, queries = workload
        encoded = encode_reference(segments)
        for name in available_backends():
            backend = get_backend(name)
            ed, hd = backend.counts_batch_dual(encoded, queries)
            assert np.array_equal(
                ed, backend.counts_batch(encoded, queries, ed_star=True))
            assert np.array_equal(
                hd, backend.counts_batch(encoded, queries, ed_star=False))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=64),
           st.integers(0, 2**32 - 1))
    def test_single_row_reference(self, n_cols, seed):
        rng = np.random.default_rng(seed)
        segments = rng.integers(0, 4, (1, n_cols)).astype(np.uint8)
        queries = rng.integers(0, 5, (3, n_cols)).astype(np.uint8)
        encoded = encode_reference(segments)
        expected = _reference_counts(segments, queries, True)
        for name in available_backends():
            got = get_backend(name).counts_batch(encoded, queries,
                                                 ed_star=True)
            assert np.array_equal(got, expected), name

    def test_empty_batch_every_backend(self):
        segments = np.zeros((3, 16), dtype=np.uint8)
        queries = np.zeros((0, 16), dtype=np.uint8)
        encoded = encode_reference(segments)
        for name in available_backends():
            for ed_star in (True, False):
                got = get_backend(name).counts_batch(encoded, queries,
                                                     ed_star=ed_star)
                assert got.shape == (0, 3)


class TestCompositionProfiles:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=6),
           st.integers(min_value=1, max_value=70),
           st.integers(0, 2**32 - 1))
    def test_backends_agree_with_bincount(self, max_code, n_cols, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, max_code + 1, (4, n_cols)).astype(np.uint8)
        n_codes = int(rows.max()) + 1
        expected = np.stack(
            [np.bincount(row, minlength=n_codes) for row in rows]
        ).astype(np.int32)
        for name in available_backends():
            got = get_backend(name).composition_profiles(rows, n_codes)
            assert np.array_equal(got, expected), name

    def test_mixed_alphabet_pair_bound(self):
        """ACGT segments vs ambiguity-code reads: the profile widths
        must agree (regression for the bitplane path returning 4 bins
        when the other operand needs more)."""
        segments = np.array([[0, 1, 2, 3]], dtype=np.uint8)
        reads = np.array([[0, 1, 2, 7]], dtype=np.uint8)
        bound = composition_lower_bound(segments, reads)
        assert bound.shape == (1, 1)
        assert bound[0, 0] == 1  # one base differs -> L1=2 -> bound 1
