"""Tests for threshold selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.errors import ExperimentError
from repro.eval.threshold_selection import (
    ThresholdSelector,
    expected_edit_distance,
    rule_of_thumb_threshold,
)
from repro.genome.datasets import build_dataset
from repro.genome.edits import ErrorModel


class TestExpectedEditDistance:
    def test_substitutions_only(self):
        model = ErrorModel(substitution=0.01)
        assert expected_edit_distance(model, 256) == pytest.approx(2.56)

    def test_bursts_multiply_indels(self):
        plain = ErrorModel(insertion=0.01, burst_prob=0.0)
        bursty = ErrorModel(insertion=0.01, burst_prob=0.5)
        assert expected_edit_distance(bursty, 100) == pytest.approx(
            2 * expected_edit_distance(plain, 100)
        )

    def test_empirical_agreement(self, rng):
        """The analytic expectation matches measured injection counts."""
        from repro.genome.edits import inject_edits
        from repro.genome.generator import generate_reference
        model = ErrorModel(substitution=0.01, insertion=0.004,
                           deletion=0.004, burst_prob=0.3)
        reference = generate_reference(50_000, seed=1, with_repeats=False)
        _, plan = inject_edits(reference, model, rng)
        expected = expected_edit_distance(model, len(reference))
        assert len(plan) == pytest.approx(expected, rel=0.15)

    def test_invalid_length(self):
        with pytest.raises(ExperimentError):
            expected_edit_distance(ErrorModel(), 0)


class TestRuleOfThumb:
    def test_condition_a_value(self):
        threshold = rule_of_thumb_threshold(ErrorModel.condition_a(), 256)
        # ~3 expected edits + 2 sigma -> small single-digit threshold.
        assert 4 <= threshold <= 9

    def test_margin_monotone(self):
        model = ErrorModel.condition_b()
        assert rule_of_thumb_threshold(model, 256, 3.0) >= \
            rule_of_thumb_threshold(model, 256, 1.0)


class TestSelector:
    @pytest.fixture(scope="class")
    def dataset(self):
        return build_dataset("A", n_reads=24, read_length=128,
                             n_segments=24, seed=140)

    def test_selects_reasonable_threshold(self, dataset):
        array = CamArray(rows=24, cols=128, noisy=False)
        array.store(dataset.segments)
        matcher = AsmCapMatcher(array, dataset.model, MatcherConfig.plain())
        selector = ThresholdSelector(dataset, list(range(1, 9)))
        choice = selector.select(
            lambda read, t: matcher.match(read, t).decisions
        )
        assert choice.best_threshold in range(1, 9)
        assert choice.best_f1 == max(choice.curve.values())
        # The F1-optimal point should beat the tightest threshold.
        assert choice.best_f1 >= choice.curve[1]

    def test_tie_breaks_to_smaller(self, dataset):
        selector = ThresholdSelector(dataset, [2, 4])
        # A constant-decision system produces identical F1 everywhere
        # except via ground-truth changes; force a literal tie instead.
        choice = selector.select(
            lambda read, t: np.zeros(dataset.n_segments, dtype=bool)
        )
        assert choice.best_f1 == 0.0
        assert choice.best_threshold == 2

    def test_empty_candidates(self, dataset):
        with pytest.raises(ExperimentError):
            ThresholdSelector(dataset, [])
