"""Tests for Monte-Carlo sweeps and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.eval.experiment import asmcap_plain_system, edam_system
from repro.eval.sweeps import run_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(
        "A",
        {"EDAM": edam_system, "plain": asmcap_plain_system},
        thresholds=[2, 4],
        n_runs=2, n_reads=16, read_length=96, n_segments=16, seed=0,
    )


class TestAggregation:
    def test_run_matrix_shape(self, sweep):
        assert sweep.systems["plain"].f1_runs.shape == (2, 2)

    def test_mean_and_std_shapes(self, sweep):
        assert sweep.systems["plain"].mean.shape == (2,)
        assert sweep.systems["plain"].std.shape == (2,)

    def test_mean_f1_bounded(self, sweep):
        for series in sweep.systems.values():
            assert 0.0 <= series.mean_f1() <= 1.0

    def test_series_dict(self, sweep):
        series = sweep.systems["plain"].series()
        assert sorted(series) == [2, 4]


class TestRatios:
    def test_self_ratio_is_one(self, sweep):
        ratios = sweep.ratio("plain", "plain")
        assert np.allclose(ratios, 1.0)

    def test_mean_ratio_finite(self, sweep):
        assert np.isfinite(sweep.mean_ratio("plain", "EDAM"))

    def test_max_ratio_returns_threshold(self, sweep):
        value, threshold = sweep.max_ratio("plain", "EDAM")
        assert threshold in (2, 4)
        assert value > 0


class TestValidation:
    def test_zero_runs_rejected(self):
        with pytest.raises(ExperimentError):
            run_sweep("A", {"plain": asmcap_plain_system}, [2], n_runs=0)

    def test_negative_runs_rejected(self):
        with pytest.raises(ExperimentError):
            run_sweep("A", {"plain": asmcap_plain_system}, [2], n_runs=-3)

    def test_empty_systems_rejected(self):
        with pytest.raises(ExperimentError):
            run_sweep("A", {}, [2], n_runs=1)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ExperimentError):
            run_sweep("A", {"plain": asmcap_plain_system}, [2],
                      n_runs=1, n_workers=0)

    def test_runs_vary_across_seeds(self, sweep):
        """Different repetitions draw different datasets."""
        runs = sweep.systems["EDAM"].f1_runs
        assert not np.allclose(runs[0], runs[1])


class TestWorkerDeterminism:
    """Monte-Carlo runs are self-contained, so fan-out cannot matter."""

    def test_one_vs_four_workers_bit_identical(self):
        kwargs = {
            "thresholds": [2, 4, 6], "n_runs": 4, "n_reads": 12,
            "read_length": 96, "n_segments": 16, "seed": 9,
        }
        systems = {"EDAM": edam_system, "plain": asmcap_plain_system}
        serial = run_sweep("A", systems, n_workers=1, **kwargs)
        parallel = run_sweep("A", systems, n_workers=4, **kwargs)
        for name in systems:
            assert np.array_equal(serial.systems[name].f1_runs,
                                  parallel.systems[name].f1_runs)

    def test_default_workers_match_serial(self):
        kwargs = {
            "thresholds": [2, 4], "n_runs": 2, "n_reads": 8,
            "read_length": 96, "n_segments": 16, "seed": 1,
        }
        systems = {"plain": asmcap_plain_system}
        serial = run_sweep("A", systems, n_workers=1, **kwargs)
        auto = run_sweep("A", systems, **kwargs)
        assert np.array_equal(serial.systems["plain"].f1_runs,
                              auto.systems["plain"].f1_runs)
