"""Tests for the accuracy-experiment machinery (Fig. 7 style)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.eval.experiment import (
    AccuracyExperiment,
    asmcap_full_system,
    asmcap_plain_system,
    edam_system,
    kraken_system,
)
from repro.genome.datasets import build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("A", n_reads=24, read_length=128, n_segments=32,
                         seed=120)


@pytest.fixture(scope="module")
def experiment(dataset):
    return AccuracyExperiment(dataset, thresholds=[1, 2, 4, 6], seed=0)


class TestConstruction:
    def test_thresholds_sorted_and_deduped(self, dataset):
        experiment = AccuracyExperiment(dataset, [4, 1, 4, 2], seed=0)
        assert experiment.thresholds == [1, 2, 4]

    def test_empty_thresholds_rejected(self, dataset):
        with pytest.raises(ExperimentError):
            AccuracyExperiment(dataset, [], seed=0)

    def test_negative_threshold_rejected(self, dataset):
        with pytest.raises(ExperimentError):
            AccuracyExperiment(dataset, [-1], seed=0)


class TestEvaluation:
    def test_result_covers_all_thresholds(self, experiment):
        result = experiment.evaluate("plain", asmcap_plain_system)
        assert sorted(result.per_threshold) == [1, 2, 4, 6]

    def test_f1_series_values_bounded(self, experiment):
        result = experiment.evaluate("plain", asmcap_plain_system)
        for value in result.f1_series().values():
            assert 0.0 <= value <= 1.0

    def test_plain_system_beats_kraken(self, experiment):
        """ASM must outscore exact matching on erroneous reads."""
        plain = experiment.evaluate("plain", asmcap_plain_system)
        kraken = experiment.evaluate("kraken", kraken_system)
        assert plain.mean_f1() > kraken.mean_f1()

    def test_full_system_not_worse_on_average(self, experiment):
        plain = experiment.evaluate("plain", asmcap_plain_system, 1)
        full = experiment.evaluate("full", asmcap_full_system, 2)
        assert full.mean_f1() >= plain.mean_f1() - 0.05

    def test_evaluate_all_names(self, experiment):
        results = experiment.evaluate_all({
            "EDAM": edam_system,
            "plain": asmcap_plain_system,
        })
        assert set(results) == {"EDAM", "plain"}

    def test_f1_increases_with_threshold_generally(self, experiment):
        """At tiny T everything is a near-boundary case; by T=6 most
        origin pairs are within threshold: F1 must improve."""
        result = experiment.evaluate("plain", asmcap_plain_system)
        assert result.f1(6) > result.f1(1)


class TestFallbackPath:
    """Systems without decide_sweep run the keyed per-read loop."""

    def test_keyed_fallback_matches_sweep_path(self, dataset):
        from repro.eval.experiment import _asmcap_system
        from repro.core.matcher import MatcherConfig

        class _NoSweep:
            """Keyed scalar adapter that hides decide_sweep."""

            def __init__(self, dataset, seed):
                self._inner = _asmcap_system(dataset, seed,
                                             MatcherConfig())

            def decide(self, read, threshold, read_index=None):
                return self._inner.decide(read, threshold,
                                          read_index=read_index)

        experiment = AccuracyExperiment(dataset, [2, 4], seed=3)
        fallback = experiment.evaluate("fallback", _NoSweep)
        swept = experiment.evaluate("sweep", asmcap_full_system)
        assert fallback.f1_series() == swept.f1_series()

    def test_plain_two_argument_system_supported(self, dataset):
        class _Exact:
            """Minimal protocol-only system (no read_index keyword)."""

            def __init__(self, dataset, seed):
                self._segments = dataset.segments

            def decide(self, read, threshold):
                return (self._segments != read).sum(axis=1) <= threshold

        experiment = AccuracyExperiment(dataset, [2, 4], seed=0)
        result = experiment.evaluate("hamming", _Exact)
        assert sorted(result.per_threshold) == [2, 4]

    def test_zero_read_dataset_degenerate(self, dataset):
        """A streaming caller's empty dataset yields empty matrices."""
        import dataclasses
        empty = dataclasses.replace(dataset, reads=[])
        experiment = AccuracyExperiment(empty, [2, 4], seed=0)
        result = experiment.evaluate("x", asmcap_full_system)
        assert result.f1_series() == {2: 0.0, 4: 0.0}
        assert all(m.total == 0 for m in result.per_threshold.values())

    def test_bad_sweep_shape_rejected(self, dataset):
        class _Broken:
            def __init__(self, dataset, seed):
                self._n = dataset.n_segments

            def decide(self, read, threshold):
                return np.zeros(self._n, dtype=bool)

            def decide_sweep(self, reads, thresholds):
                return np.zeros((1, 1, self._n), dtype=bool)

        experiment = AccuracyExperiment(dataset, [2, 4], seed=0)
        with pytest.raises(ExperimentError):
            experiment.evaluate("broken", _Broken)


class TestDeterminism:
    def test_same_seed_reproduces(self, dataset):
        a = AccuracyExperiment(dataset, [2, 4], seed=5).evaluate(
            "x", asmcap_full_system
        )
        b = AccuracyExperiment(dataset, [2, 4], seed=5).evaluate(
            "x", asmcap_full_system
        )
        assert a.f1_series() == b.f1_series()
