"""Tests for the confusion matrix and F1 (Eq. 3-4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.eval.confusion import (
    ConfusionMatrix,
    confusion_from_decisions,
    confusion_series,
    f1_from_decisions,
)

bool_arrays = st.integers(1, 100).flatmap(
    lambda n: st.tuples(
        st.lists(st.booleans(), min_size=n, max_size=n),
        st.lists(st.booleans(), min_size=n, max_size=n),
    )
)


class TestCounting:
    def test_all_quadrants(self):
        matrix = ConfusionMatrix()
        matrix.update(np.array([True, True, False, False]),
                      np.array([True, False, True, False]))
        assert (matrix.tp, matrix.fp, matrix.fn, matrix.tn) == (1, 1, 1, 1)

    def test_accumulation(self):
        matrix = ConfusionMatrix()
        matrix.update(np.array([True]), np.array([True]))
        matrix.update(np.array([False]), np.array([True]))
        assert matrix.tp == 1 and matrix.fn == 1
        assert matrix.total == 2

    def test_addition(self):
        a = ConfusionMatrix(tp=1, fp=2, fn=3, tn=4)
        b = ConfusionMatrix(tp=10, fp=20, fn=30, tn=40)
        total = a + b
        assert (total.tp, total.fp, total.fn, total.tn) == (11, 22, 33, 44)

    def test_shape_mismatch(self):
        matrix = ConfusionMatrix()
        with pytest.raises(ExperimentError):
            matrix.update(np.array([True]), np.array([True, False]))

    @given(bool_arrays)
    def test_counts_partition_total(self, arrays):
        predicted, actual = arrays
        matrix = ConfusionMatrix()
        matrix.update(np.array(predicted), np.array(actual))
        assert matrix.total == len(predicted)


class TestMetrics:
    def test_perfect_prediction(self):
        matrix = ConfusionMatrix(tp=10, tn=5)
        assert matrix.sensitivity == 1.0
        assert matrix.precision == 1.0
        assert matrix.f1 == 1.0
        assert matrix.accuracy == 1.0

    def test_paper_equations(self):
        matrix = ConfusionMatrix(tp=8, fp=2, fn=4, tn=6)
        sensitivity = 8 / (8 + 4)
        precision = 8 / (8 + 2)
        expected_f1 = 2 * sensitivity * precision / (sensitivity + precision)
        assert matrix.sensitivity == pytest.approx(sensitivity)
        assert matrix.precision == pytest.approx(precision)
        assert matrix.f1 == pytest.approx(expected_f1)

    def test_degenerate_cases_are_zero(self):
        assert ConfusionMatrix().f1 == 0.0
        assert ConfusionMatrix(tn=10).sensitivity == 0.0
        assert ConfusionMatrix(tn=10).precision == 0.0
        assert ConfusionMatrix(fp=5).f1 == 0.0

    @given(bool_arrays)
    def test_f1_bounded(self, arrays):
        predicted, actual = arrays
        f1 = f1_from_decisions(np.array(predicted), np.array(actual))
        assert 0.0 <= f1 <= 1.0

    @given(bool_arrays)
    def test_f1_harmonic_mean_bound(self, arrays):
        """F1 (harmonic mean) lies between the two component metrics."""
        predicted, actual = arrays
        matrix = ConfusionMatrix()
        matrix.update(np.array(predicted), np.array(actual))
        if matrix.sensitivity > 0 and matrix.precision > 0:
            low = min(matrix.sensitivity, matrix.precision)
            high = max(matrix.sensitivity, matrix.precision)
            assert low - 1e-12 <= matrix.f1 <= high + 1e-12

    def test_as_dict_round_trip(self):
        matrix = ConfusionMatrix(tp=3, fp=1, fn=2, tn=4)
        summary = matrix.as_dict()
        assert summary["tp"] == 3
        assert summary["f1"] == pytest.approx(matrix.f1)


class TestConfusionSeries:
    """Vectorised sweep accumulation == per-slice update loops."""

    def test_matches_per_slice_updates(self):
        rng = np.random.default_rng(4)
        predicted = rng.random((5, 7, 11)) < 0.4
        actual = rng.random((5, 7, 11)) < 0.5
        series = confusion_series(predicted, actual)
        assert len(series) == 5
        for t in range(5):
            reference = ConfusionMatrix()
            for q in range(7):
                reference.update(predicted[t, q], actual[t, q])
            assert series[t] == reference

    def test_counts_partition_total(self):
        rng = np.random.default_rng(9)
        predicted = rng.random((3, 4, 6)) < 0.5
        actual = rng.random((3, 4, 6)) < 0.5
        for matrix in confusion_series(predicted, actual):
            assert matrix.total == 4 * 6

    def test_single_slice_matches_one_shot(self):
        predicted = np.array([[True, False], [False, True]])
        actual = np.array([[True, True], [False, False]])
        series = confusion_series(predicted[None], actual[None])
        assert series[0] == confusion_from_decisions(predicted, actual)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            confusion_series(np.zeros((2, 3), dtype=bool),
                             np.zeros((2, 4), dtype=bool))

    def test_unstacked_input_rejected(self):
        with pytest.raises(ExperimentError):
            confusion_series(np.zeros(3, dtype=bool),
                             np.zeros(3, dtype=bool))
