"""Tests for the EDAM+SR system factory (the TASR motivation)."""

from __future__ import annotations

import pytest

from repro.eval.experiment import (
    AccuracyExperiment,
    asmcap_full_system,
    edam_sr_system,
    edam_system,
)
from repro.genome.datasets import build_dataset


@pytest.fixture(scope="module")
def dataset_b():
    return build_dataset("B", n_reads=32, read_length=128, n_segments=32,
                         seed=210)


class TestEdamSr:
    def test_sr_helps_edam_at_large_thresholds(self, dataset_b):
        """Unconditional rotation fixes consecutive-indel FNs."""
        experiment = AccuracyExperiment(dataset_b, [10, 14], seed=0)
        plain = experiment.evaluate("EDAM", edam_system)
        with_sr = experiment.evaluate("EDAM+SR", edam_sr_system, 1)
        assert with_sr.mean_f1() >= plain.mean_f1() - 0.02

    def test_tasr_never_loses_to_sr_at_small_thresholds(self, dataset_b):
        """The threshold guard is the whole point: below Tl, TASR
        avoids SR's false-positive risk."""
        experiment = AccuracyExperiment(dataset_b, [2, 4], seed=0)
        sr = experiment.evaluate("EDAM+SR", edam_sr_system)
        tasr = experiment.evaluate("ASMCap", asmcap_full_system, 1)
        assert tasr.mean_f1() >= sr.mean_f1() - 0.03
