"""Tests for ROC / precision-recall analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.eval.roc import pr_curve, roc_curve


@pytest.fixture
def separable():
    """Perfectly separable scores (low = positive)."""
    scores = np.array([1, 2, 3, 10, 11, 12], dtype=float)
    labels = np.array([True, True, True, False, False, False])
    return scores, labels


@pytest.fixture
def random_scores(rng):
    scores = rng.random(2000)
    labels = rng.random(2000) < 0.3
    return scores, labels


class TestRoc:
    def test_perfect_separation_auc_one(self, separable):
        scores, labels = separable
        assert roc_curve(scores, labels).auc == pytest.approx(1.0)

    def test_random_scores_auc_half(self, random_scores):
        scores, labels = random_scores
        assert roc_curve(scores, labels).auc == pytest.approx(0.5, abs=0.05)

    def test_inverted_scores_auc_zero(self, separable):
        scores, labels = separable
        assert roc_curve(scores, ~labels).auc == pytest.approx(0.0, abs=1e-9)

    def test_rates_monotone_in_cutoff(self, random_scores):
        scores, labels = random_scores
        curve = roc_curve(scores, labels)
        assert (np.diff(curve.tpr) >= 0).all()
        assert (np.diff(curve.fpr) >= 0).all()

    def test_operating_point(self, separable):
        scores, labels = separable
        curve = roc_curve(scores, labels)
        fpr, tpr = curve.operating_point(3.0)
        assert tpr == pytest.approx(1.0)
        assert fpr == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            roc_curve(np.array([1.0]), np.array([True]))  # no negatives
        with pytest.raises(ExperimentError):
            roc_curve(np.array([]), np.array([]))
        with pytest.raises(ExperimentError):
            roc_curve(np.array([1.0, 2.0]), np.array([True]))


class TestPr:
    def test_perfect_separation_ap_one(self, separable):
        scores, labels = separable
        assert pr_curve(scores, labels).average_precision == \
            pytest.approx(1.0)

    def test_random_ap_near_base_rate(self, random_scores):
        scores, labels = random_scores
        base_rate = labels.mean()
        ap = pr_curve(scores, labels).average_precision
        assert ap == pytest.approx(base_rate, abs=0.07)

    def test_recall_monotone(self, random_scores):
        scores, labels = random_scores
        curve = pr_curve(scores, labels)
        assert (np.diff(curve.recall) >= 0).all()


class TestOnMatcherScores:
    def test_ed_star_scores_discriminate(self):
        """ED* counts must separate origin pairs from random pairs."""
        from repro.distance.ed_star import mismatch_counts_all_reads
        from repro.eval.ground_truth import label_dataset
        from repro.genome.datasets import build_dataset
        dataset = build_dataset("A", n_reads=16, read_length=128,
                                n_segments=16, seed=150)
        truth = label_dataset(dataset, 8)
        reads = np.stack([r.read.codes for r in dataset.reads])
        scores = mismatch_counts_all_reads(dataset.segments, reads)
        labels = truth.labels(8)
        curve = roc_curve(scores.ravel().astype(float), labels.ravel())
        assert curve.auc > 0.95
