"""Tests for the analytic noise-margin model — including agreement with
the Monte-Carlo CAM arrays it predicts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.errors import ThresholdError
from repro.eval.noise_margin import expected_confusion, flip_probability


class TestFlipProbability:
    def test_far_from_boundary_never_flips(self):
        p = flip_probability(100, threshold=4, n_cells=256, domain="current")
        assert float(p) < 1e-12

    def test_boundary_row_flips_meaningfully_in_current_domain(self):
        p = flip_probability(4, threshold=4, n_cells=256, domain="current")
        assert 0.05 < float(p) < 0.5

    def test_charge_domain_negligible_at_small_thresholds(self):
        """The Section V-D reliability claim in closed form."""
        for threshold in (1, 4, 8, 16):
            p = flip_probability(threshold, threshold, 256, "charge")
            assert float(p) < 1e-6

    def test_strict_rule_puts_boundary_row_at_half(self):
        p = flip_probability(4, threshold=4, n_cells=256, domain="current",
                             strict_paper_rule=True)
        assert float(p) == pytest.approx(0.5)

    def test_monotone_in_distance_from_boundary(self):
        # Counts 4 and 5 straddle the midpoint reference symmetrically
        # (equal flip probability); beyond that the margin grows.
        counts = np.array([5, 6, 7, 8])
        p = flip_probability(counts, threshold=4, n_cells=256,
                             domain="current")
        assert (np.diff(p) < 0).all()
        p_4 = flip_probability(4, threshold=4, n_cells=256, domain="current")
        assert float(p_4) == pytest.approx(float(p[0]))

    def test_invalid_domain(self):
        with pytest.raises(ThresholdError):
            flip_probability(1, 1, 256, "optical")

    def test_invalid_threshold(self):
        with pytest.raises(ThresholdError):
            flip_probability(1, 300, 256)


class TestAgainstMonteCarlo:
    def test_predicts_current_domain_flip_rate(self, rng):
        """The analytic flip probability must match sampled hardware."""
        n_cells = 256
        segments = rng.integers(0, 4, (1, n_cells)).astype(np.uint8)
        array = CamArray(rows=1, cols=n_cells, domain="current", seed=7)
        array.store(segments)
        read = segments[0].copy()
        for i in (40, 90, 140, 190):
            read[i] = (read[i] + 2) % 4
        from repro.cam.cell import MatchMode
        count = int(array.mismatch_counts(read, MatchMode.ED_STAR)[0])
        threshold = count  # boundary row
        predicted = float(flip_probability(count, threshold, n_cells,
                                           "current"))
        trials = 3000
        flips = sum(
            int(not array.search(read, threshold).matches[0])
            for _ in range(trials)
        )
        measured = flips / trials
        assert measured == pytest.approx(predicted, abs=0.03)


class TestExpectedConfusion:
    def test_noiseless_limit_matches_digital(self):
        counts = np.array([[0, 3, 10], [2, 8, 50]])
        truth = np.array([[True, True, True], [True, False, False]])
        result = expected_confusion(counts, truth, threshold=4,
                                    n_cells=256, domain="charge")
        # Charge-domain noise is negligible: expect the digital matrix.
        assert result.tp == pytest.approx(3, abs=1e-3)
        assert result.fp == pytest.approx(0, abs=1e-3)
        assert result.fn == pytest.approx(1, abs=1e-3)
        assert result.tn == pytest.approx(2, abs=1e-3)

    def test_f1_degrades_with_current_noise(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 12, (50, 4))
        truth = counts <= 4
        charge = expected_confusion(counts, truth, 4, 256, "charge")
        current = expected_confusion(counts, truth, 4, 256, "current")
        assert current.f1 < charge.f1
        assert charge.f1 == pytest.approx(1.0, abs=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ThresholdError):
            expected_confusion(np.zeros(3), np.zeros(4, dtype=bool), 2, 256)
