"""Tests for exact ground-truth labelling."""

from __future__ import annotations

import pytest

from repro.distance.edit_distance import edit_distance
from repro.errors import ExperimentError
from repro.eval.ground_truth import label_dataset
from repro.genome.datasets import build_dataset
from repro.genome.sequence import DnaSequence


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("A", n_reads=10, read_length=96, n_segments=12,
                         seed=110)


@pytest.fixture(scope="module")
def truth(dataset):
    return label_dataset(dataset, max_threshold=8)


class TestLabelling:
    def test_shape(self, truth, dataset):
        assert truth.distances.shape == (10, 12)
        assert truth.n_reads == 10
        assert truth.n_segments == 12

    def test_capped_at_band(self, truth):
        assert truth.distances.max() <= truth.band + 1

    def test_distances_match_exact_dp(self, truth, dataset):
        for r, record in enumerate(dataset.reads):
            for s in range(dataset.n_segments):
                exact = edit_distance(record.read,
                                      DnaSequence(dataset.segments[s]))
                assert truth.distances[r, s] == min(exact, truth.band + 1)

    def test_labels_monotone_in_threshold(self, truth):
        previous = truth.labels(0)
        for threshold in range(1, truth.band + 1):
            current = truth.labels(threshold)
            assert (previous <= current).all()
            previous = current

    def test_origin_pairs_have_small_distance(self, truth, dataset):
        for r, record in enumerate(dataset.reads):
            origin = dataset.origin_segment_index(record)
            assert truth.distances[r, origin] <= truth.band + 1

    def test_threshold_out_of_band_rejected(self, truth):
        with pytest.raises(ExperimentError):
            truth.labels(truth.band + 1)

    def test_positives_per_threshold_monotone(self, truth):
        counts = truth.positives_per_threshold(list(range(0, truth.band + 1)))
        values = list(counts.values())
        assert all(a <= b for a, b in zip(values, values[1:], strict=False))

    def test_negative_threshold_rejected(self, dataset):
        with pytest.raises(ExperimentError):
            label_dataset(dataset, max_threshold=-1)
