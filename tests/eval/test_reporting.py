"""Tests for report formatting."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.eval.reporting import format_ratio, format_series, format_table, to_csv


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["a", "bbb"], [("x", 1.5), ("yyyy", 2)])
        lines = text.splitlines()
        assert "a" in lines[0] and "bbb" in lines[0]
        assert "-+-" in lines[1]
        assert "x" in lines[2]
        assert "yyyy" in lines[3]

    def test_title(self):
        text = format_table(["a"], [("x",)], title="My Table")
        assert text.startswith("My Table\n")

    def test_float_formatting(self):
        text = format_table(["v"], [(0.123456789,)])
        assert "0.1235" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ExperimentError):
            format_table(["a", "b"], [("only-one",)])


class TestFormatSeries:
    def test_one_row_per_x(self):
        text = format_series("T", [1, 2, 3], {"f1": [0.1, 0.2, 0.3]})
        assert len(text.splitlines()) == 2 + 3

    def test_curve_length_mismatch(self):
        with pytest.raises(ExperimentError):
            format_series("T", [1, 2], {"f1": [0.1]})


class TestCsv:
    def test_round_structure(self):
        text = to_csv(["a", "b"], [(1, 2), (3, 4)])
        assert text == "a,b\n1,2\n3,4\n"

    def test_floats_full_precision(self):
        text = to_csv(["v"], [(0.1,)])
        assert "0.1" in text

    def test_comma_rejected(self):
        with pytest.raises(ExperimentError):
            to_csv(["a"], [("x,y",)])


class TestFormatRatio:
    def test_small(self):
        assert format_ratio(2.84) == "2.8x"

    def test_medium(self):
        assert format_ratio(174.4) == "174x"

    def test_large_scientific(self):
        assert format_ratio(97_000) == "9.7e+04x"
