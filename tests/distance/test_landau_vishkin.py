"""Tests for the Landau-Vishkin k-bounded edit distance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.edit_distance import edit_distance
from repro.distance.landau_vishkin import landau_vishkin, lv_within
from repro.errors import ThresholdError
from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", max_size=40).map(DnaSequence)


class TestKnownCases:
    def test_identical(self):
        seq = DnaSequence("GATTACA")
        assert landau_vishkin(seq, seq, 0) == 0

    def test_single_substitution(self):
        assert landau_vishkin(DnaSequence("ACGT"), DnaSequence("AGGT"), 2) == 1

    def test_single_indel(self):
        assert landau_vishkin(DnaSequence("ACGT"), DnaSequence("ACGTA"), 2) == 1

    def test_cap_when_beyond_k(self):
        assert landau_vishkin(DnaSequence("AAAA"), DnaSequence("TTTT"), 2) == 3

    def test_length_gap_short_circuit(self):
        assert landau_vishkin(DnaSequence("A" * 10), DnaSequence("A"), 3) == 4

    def test_empty_sequences(self):
        assert landau_vishkin(DnaSequence(""), DnaSequence(""), 0) == 0
        assert landau_vishkin(DnaSequence(""), DnaSequence("ACG"), 5) == 3

    def test_negative_k(self):
        with pytest.raises(ThresholdError):
            landau_vishkin(DnaSequence("A"), DnaSequence("A"), -1)


class TestAgainstDp:
    @settings(max_examples=150, deadline=None)
    @given(dna, dna, st.integers(0, 12))
    def test_agrees_with_dp_capped(self, a, b, k):
        want = min(edit_distance(a, b), k + 1)
        assert landau_vishkin(a, b, k) == want

    def test_long_sequences(self, rng):
        a = DnaSequence(rng.integers(0, 4, 300).astype(np.uint8))
        codes = a.codes.copy()
        codes[50] = (codes[50] + 1) % 4
        codes = np.delete(codes, 200)
        b = DnaSequence(np.append(codes, rng.integers(0, 4, 1).astype(np.uint8)))
        exact = edit_distance(a, b)
        assert landau_vishkin(a, b, 10) == exact
        assert exact <= 4


class TestPredicate:
    @settings(max_examples=50, deadline=None)
    @given(dna, dna, st.integers(0, 8))
    def test_lv_within_matches_dp(self, a, b, k):
        assert lv_within(a, b, k) == (edit_distance(a, b) <= k)
