"""Tests for Hamming-distance kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distance.hamming import (
    hamming_distance,
    hamming_distance_batch,
    hamming_matches,
)
from repro.errors import SequenceError
from repro.genome.sequence import DnaSequence


class TestScalar:
    def test_known(self):
        assert hamming_distance(DnaSequence("ACGT"), DnaSequence("AGGA")) == 2

    def test_identity(self):
        seq = DnaSequence("GATTACA")
        assert hamming_distance(seq, seq) == 0

    def test_empty(self):
        assert hamming_distance(DnaSequence(""), DnaSequence("")) == 0

    def test_length_mismatch(self):
        with pytest.raises(SequenceError):
            hamming_distance(DnaSequence("AC"), DnaSequence("A"))

    @given(st.text(alphabet="ACGT", max_size=50))
    def test_symmetry(self, text):
        a = DnaSequence(text)
        b = DnaSequence(text[::-1])
        assert hamming_distance(a, b) == hamming_distance(b, a)

    def test_paper_fig2_example(self):
        assert hamming_distance(DnaSequence("AGCTGAGA"),
                                DnaSequence("ATCTGCGA")) == 2
        assert hamming_distance(DnaSequence("AGCTGAGA"),
                                DnaSequence("AGCATGAG")) == 5


class TestBatch:
    def test_agrees_with_scalar(self, rng):
        segments = rng.integers(0, 4, (8, 20)).astype(np.uint8)
        read = rng.integers(0, 4, 20).astype(np.uint8)
        batch = hamming_distance_batch(segments, read)
        for i, row in enumerate(segments):
            assert batch[i] == hamming_distance(DnaSequence(row),
                                                DnaSequence(read))

    def test_shape_validation(self):
        with pytest.raises(SequenceError):
            hamming_distance_batch(np.zeros((2, 4), dtype=np.uint8),
                                   np.zeros(5, dtype=np.uint8))
        with pytest.raises(SequenceError):
            hamming_distance_batch(np.zeros(4, dtype=np.uint8),
                                   np.zeros(4, dtype=np.uint8))

    def test_matches_plane(self, rng):
        segments = rng.integers(0, 4, (4, 10)).astype(np.uint8)
        read = rng.integers(0, 4, 10).astype(np.uint8)
        plane = hamming_matches(segments, read)
        counts = hamming_distance_batch(segments, read)
        assert np.array_equal((~plane).sum(axis=1), counts)
