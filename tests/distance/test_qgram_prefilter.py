"""Property tests for the q-gram (Ukkonen) lower-bound prefilter.

The prefilter may only ever *prove* pairs "greater than band" — it
must never change a labelled distance.  These tests fuzz the bound's
validity and cross-check the prefiltered batch kernel against the
unfiltered full DP, i.e. exactness of the ground-truth labelling is
property-tested end to end.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.edit_distance import (
    banded_edit_distance_batch,
    composition_lower_bound,
    edit_distance,
    qgram_lower_bound,
    qgram_profiles,
)
from repro.errors import SequenceError
from repro.eval.ground_truth import label_dataset
from repro.genome.datasets import build_dataset
from repro.genome.sequence import DnaSequence

equal_length_pair = st.integers(3, 40).flatmap(
    lambda n: st.tuples(
        st.text(alphabet="ACGT", min_size=n, max_size=n),
        st.text(alphabet="ACGT", min_size=n, max_size=n),
    )
)


class TestQgramBound:
    @settings(max_examples=150, deadline=None)
    @given(equal_length_pair)
    def test_never_exceeds_true_distance(self, pair):
        a, b = DnaSequence(pair[0]), DnaSequence(pair[1])
        bound = qgram_lower_bound(a.codes[None, :], b.codes[None, :])
        assert bound[0, 0] <= edit_distance(b, a)

    @settings(max_examples=80, deadline=None)
    @given(equal_length_pair)
    def test_at_least_as_strong_cases_stay_valid_with_composition(
            self, pair):
        """max(composition, qgram) is still a valid lower bound."""
        a, b = DnaSequence(pair[0]), DnaSequence(pair[1])
        comp = composition_lower_bound(a.codes[None, :], b.codes[None, :])
        qgram = qgram_lower_bound(a.codes[None, :], b.codes[None, :])
        assert max(int(comp[0, 0]), int(qgram[0, 0])) <= edit_distance(b, a)

    def test_zero_on_identity(self, rng):
        rows = rng.integers(0, 4, (5, 30)).astype(np.uint8)
        assert (np.diag(qgram_lower_bound(rows, rows)) == 0).all()

    def test_profiles_count_every_window(self, rng):
        rows = rng.integers(0, 4, (3, 20)).astype(np.uint8)
        profiles = qgram_profiles(rows, q=3)
        assert profiles.shape == (3, 64)
        assert (profiles.sum(axis=1) == 20 - 3 + 1).all()

    def test_profiles_reject_short_rows(self, rng):
        with pytest.raises(SequenceError):
            qgram_profiles(rng.integers(0, 4, (2, 2)).astype(np.uint8))

    def test_q1_equals_composition_bound(self, rng):
        """With q = 1 Ukkonen degenerates to the composition bound."""
        segments = rng.integers(0, 4, (6, 25)).astype(np.uint8)
        reads = rng.integers(0, 4, (4, 25)).astype(np.uint8)
        assert np.array_equal(
            qgram_lower_bound(segments, reads, q=1),
            composition_lower_bound(segments, reads),
        )


class TestPrefilteredBatchExactness:
    @pytest.mark.parametrize("band", [0, 2, 6, 12])
    def test_matches_unfiltered_full_dp(self, rng, band):
        segments = rng.integers(0, 4, (12, 48)).astype(np.uint8)
        reads = segments[rng.integers(0, 12, 9)].copy()
        for row in reads:  # inject a few substitutions
            idx = rng.integers(0, 48, rng.integers(0, 8))
            row[idx] = rng.integers(0, 4, idx.size)
        batch = banded_edit_distance_batch(segments, reads, band)
        for r in range(reads.shape[0]):
            for s in range(segments.shape[0]):
                true = edit_distance(DnaSequence(reads[r]),
                                     DnaSequence(segments[s]))
                assert batch[r, s] == min(true, band + 1)

    def test_non_acgt_codes_skip_qgram_but_stay_exact(self, rng):
        """Codes outside ACGT can't be q-gram-indexed; the kernel must
        fall back gracefully and stay exact."""

        def reference_dp(a: np.ndarray, b: np.ndarray) -> int:
            prev = list(range(len(b) + 1))
            for i in range(1, len(a) + 1):
                cur = [i] + [0] * len(b)
                for j in range(1, len(b) + 1):
                    cur[j] = min(prev[j - 1] + (a[i - 1] != b[j - 1]),
                                 prev[j] + 1, cur[j - 1] + 1)
                prev = cur
            return prev[-1]

        segments = rng.integers(0, 4, (4, 20)).astype(np.uint8)
        reads = segments.copy()
        reads[0, 3] = 7  # out-of-alphabet code
        batch = banded_edit_distance_batch(segments, reads, 4)
        for r in range(4):
            for s in range(4):
                true = reference_dp(reads[r], segments[s])
                assert batch[r, s] == min(true, 5)

    def test_labelling_matches_unfiltered(self):
        """End to end: prefiltered ground truth == brute-force truth."""
        dataset = build_dataset("B", n_reads=10, read_length=64,
                                n_segments=16, seed=3)
        truth = label_dataset(dataset, max_threshold=8)
        for r, record in enumerate(dataset.reads):
            for s in range(dataset.n_segments):
                true = edit_distance(
                    record.read,
                    DnaSequence(dataset.segments[s]),
                )
                assert truth.distances[r, s] == min(true, truth.band + 1)
