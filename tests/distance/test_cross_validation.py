"""Cross-validation: all four distance implementations must agree,
and ED*'s relationship to true ED must hold on edit-injected data.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.comparison_matrix import comparison_matrix_distance
from repro.distance.ed_star import ed_star
from repro.distance.edit_distance import (
    banded_edit_distance_batch,
    edit_distance,
)
from repro.distance.hamming import hamming_distance
from repro.distance.myers import myers_edit_distance
from repro.genome.edits import ErrorModel, inject_edits
from repro.genome.generator import generate_reference
from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", max_size=40).map(DnaSequence)


@settings(max_examples=80, deadline=None)
@given(dna, dna)
def test_three_exact_kernels_agree(a, b):
    dp = edit_distance(a, b)
    assert myers_edit_distance(a, b) == dp
    assert comparison_matrix_distance(a, b) == dp


@settings(max_examples=40, deadline=None)
@given(st.lists(st.text(alphabet="ACGT", min_size=16, max_size=16),
                min_size=1, max_size=6),
       st.lists(st.text(alphabet="ACGT", min_size=16, max_size=16),
                min_size=1, max_size=4))
def test_batched_banded_agrees_with_scalar(segment_texts, read_texts):
    segments = np.stack([DnaSequence(t).codes for t in segment_texts])
    reads = np.stack([DnaSequence(t).codes for t in read_texts])
    band = 6
    batch = banded_edit_distance_batch(segments, reads, band)
    for r, read_text in enumerate(read_texts):
        for s, segment_text in enumerate(segment_texts):
            exact = edit_distance(DnaSequence(read_text),
                                  DnaSequence(segment_text))
            assert batch[r, s] == min(exact, band + 1)


class TestEdStarVsTrueDistance:
    """The paper's Fig. 2 relationships on synthetic edited reads."""

    def test_substitutions_only_ed_star_underestimates(self):
        """With substitutions only, ED* <= HD == ED (hiding effect)."""
        rng = np.random.default_rng(0)
        reference = generate_reference(200, seed=1, with_repeats=False)
        model = ErrorModel(substitution=0.05)
        for _ in range(10):
            edited, plan = inject_edits(reference, model, rng)
            hd = hamming_distance(reference, edited)
            assert hd == plan.n_substitutions
            assert ed_star(reference, edited) <= hd

    def test_single_indel_tolerated_better_than_hamming(self):
        """One isolated indel: ED* stays near ED while HD explodes."""
        rng = np.random.default_rng(3)
        for seed in range(10):
            reference = generate_reference(128, seed=seed,
                                           with_repeats=False)
            codes = reference.codes.copy()
            position = int(rng.integers(10, 100))
            deleted = np.concatenate([
                codes[:position], codes[position + 1:],
                rng.integers(0, 4, 1).astype(np.uint8),
            ])
            read = DnaSequence(deleted)
            hd = hamming_distance(reference, read)
            estimate = ed_star(reference, read)
            true_ed = edit_distance(reference, read)
            assert true_ed <= 2
            # HD sees roughly everything after the deletion as wrong;
            # ED* must be dramatically closer to the truth.
            assert hd > 20
            assert estimate <= 5

    def test_consecutive_indels_inflate_ed_star(self):
        """Fig. 6's misjudgment: bursts make ED* overshoot ED."""
        reference = generate_reference(128, seed=77, with_repeats=False)
        codes = reference.codes.copy()
        rng = np.random.default_rng(5)
        burst = np.concatenate([
            codes[:50], codes[54:], rng.integers(0, 4, 4).astype(np.uint8),
        ])
        read = DnaSequence(burst)
        true_ed = edit_distance(reference, read)
        estimate = ed_star(reference, read)
        assert true_ed <= 8
        assert estimate > true_ed  # the FN-causing overshoot
