"""Tests for the ED* neighbour-tolerant mismatch count.

Includes bit-exact agreement between the vectorised kernel and the
cell-level circuit model, and all three Fig. 2 examples with the
paper's quoted values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cam.cell import NO_NEIGHBOR, AsmCapCell, MatchMode
from repro.distance.ed_star import (
    ed_star,
    ed_star_batch,
    ed_star_counts_batch,
    match_planes,
    match_planes_batch,
    mismatch_counts_all_reads,
)
from repro.distance.hamming import hamming_distance
from repro.errors import SequenceError
from repro.genome.sequence import DnaSequence

dna_pair = st.integers(1, 60).flatmap(
    lambda n: st.tuples(
        st.text(alphabet="ACGT", min_size=n, max_size=n),
        st.text(alphabet="ACGT", min_size=n, max_size=n),
    )
)


class TestPaperExamples:
    """Fig. 2: S1 is the read, S2 the stored sequence."""

    S1 = DnaSequence("AGCTGAGA")

    def test_example_1_substitutions(self):
        assert ed_star(DnaSequence("ATCTGCGA"), self.S1) == 2

    def test_example_2_insertion(self):
        assert ed_star(DnaSequence("AGCATGAG"), self.S1) == 1

    def test_example_3_deletion(self):
        assert ed_star(DnaSequence("AGTGAGAA"), self.S1) == 0

    def test_fig2_top_row_match_modes(self):
        """ACC stored vs CTA/GCT/AGC/TGA reads: L/C/R/mismatch."""
        stored = np.frombuffer(b"\x00\x01\x01", dtype=np.uint8)  # ACC
        # middle cell (index 1) stores C
        for read_text, expected_plane in (
            ("CTA", "L"), ("GCT", "C"), ("AGC", "R"), ("TGA", None)
        ):
            read = DnaSequence(read_text).codes
            o_l, o_c, o_r = match_planes(stored[None, :], read)
            planes = {"L": o_l[0, 1], "C": o_c[0, 1], "R": o_r[0, 1]}
            if expected_plane is None:
                assert not any(planes.values())
            else:
                assert planes[expected_plane]


class TestProperties:
    def test_identity_is_zero(self):
        seq = DnaSequence("GATTACA")
        assert ed_star(seq, seq) == 0

    def test_empty(self):
        assert ed_star(DnaSequence(""), DnaSequence("")) == 0

    def test_length_mismatch(self):
        with pytest.raises(SequenceError):
            ed_star(DnaSequence("AC"), DnaSequence("A"))

    @settings(max_examples=100, deadline=None)
    @given(dna_pair)
    def test_bounded_by_hamming(self, pair):
        segment, read = DnaSequence(pair[0]), DnaSequence(pair[1])
        assert 0 <= ed_star(segment, read) <= hamming_distance(segment, read)

    @settings(max_examples=50, deadline=None)
    @given(dna_pair)
    def test_single_shift_tolerated(self, pair):
        """A read shifted by one base has small ED* (edge cells aside)."""
        segment = DnaSequence(pair[0])
        shifted = DnaSequence(np.roll(segment.codes, 1))
        # Every interior stored base sees its true partner as a neighbour.
        assert ed_star(segment, shifted) <= 2


class TestBatch:
    def test_agrees_with_scalar(self, rng):
        segments = rng.integers(0, 4, (6, 25)).astype(np.uint8)
        read = rng.integers(0, 4, 25).astype(np.uint8)
        batch = ed_star_batch(segments, read)
        for i, row in enumerate(segments):
            assert batch[i] == ed_star(DnaSequence(row), DnaSequence(read))

    def test_all_reads_matrix(self, rng):
        segments = rng.integers(0, 4, (4, 15)).astype(np.uint8)
        reads = rng.integers(0, 4, (3, 15)).astype(np.uint8)
        matrix = mismatch_counts_all_reads(segments, reads)
        assert matrix.shape == (3, 4)
        for r in range(3):
            assert np.array_equal(matrix[r], ed_star_batch(segments, reads[r]))

    def test_shape_validation(self):
        with pytest.raises(SequenceError):
            match_planes(np.zeros((2, 4), dtype=np.uint8),
                         np.zeros(3, dtype=np.uint8))

    def test_planes_batch_rows_match_scalar_planes(self, rng):
        """match_planes_batch row q == match_planes of read q."""
        segments = rng.integers(0, 4, (5, 17)).astype(np.uint8)
        reads = rng.integers(0, 4, (4, 17)).astype(np.uint8)
        o_l, o_c, o_r = match_planes_batch(segments, reads)
        assert o_c.shape == (4, 5, 17)
        for q in range(4):
            s_l, s_c, s_r = match_planes(segments, reads[q])
            assert np.array_equal(o_l[q], s_l)
            assert np.array_equal(o_c[q], s_c)
            assert np.array_equal(o_r[q], s_r)

    def test_counts_batch_reduces_planes_batch(self, rng):
        """ed_star_counts_batch == OR-and-count of match_planes_batch."""
        segments = rng.integers(0, 4, (5, 17)).astype(np.uint8)
        reads = rng.integers(0, 4, (4, 17)).astype(np.uint8)
        o_l, o_c, o_r = match_planes_batch(segments, reads)
        expected = np.count_nonzero(~(o_l | o_c | o_r), axis=2)
        assert np.array_equal(ed_star_counts_batch(segments, reads),
                              expected)

    def test_all_reads_matrix_chunks_consistently(self, rng):
        """Chunked evaluation equals one-shot for workload-sized input."""
        segments = rng.integers(0, 4, (3, 9)).astype(np.uint8)
        reads = rng.integers(0, 4, (50, 9)).astype(np.uint8)
        assert np.array_equal(
            mismatch_counts_all_reads(segments, reads),
            ed_star_counts_batch(segments, reads),
        )

    def test_batch_shape_validation(self):
        with pytest.raises(SequenceError):
            match_planes_batch(np.zeros((2, 4), dtype=np.uint8),
                               np.zeros((2, 3), dtype=np.uint8))
        with pytest.raises(SequenceError):
            ed_star_counts_batch(np.zeros((2, 4), dtype=np.uint8),
                                 np.zeros(4, dtype=np.uint8))


class TestAgainstCellModel:
    """The vectorised kernel must be bit-exact with the circuit logic."""

    def test_bit_exact_with_cells(self, rng):
        length = 30
        segment = rng.integers(0, 4, length).astype(np.uint8)
        read = rng.integers(0, 4, length).astype(np.uint8)
        cells = [AsmCapCell(int(code)) for code in segment]
        count = 0
        for i, cell in enumerate(cells):
            left = int(read[i - 1]) if i > 0 else NO_NEIGHBOR
            right = int(read[i + 1]) if i < length - 1 else NO_NEIGHBOR
            count += cell.output(left, int(read[i]), right,
                                 MatchMode.ED_STAR)
        assert count == ed_star(DnaSequence(segment), DnaSequence(read))

    def test_hamming_mode_bit_exact_with_cells(self, rng):
        length = 30
        segment = rng.integers(0, 4, length).astype(np.uint8)
        read = rng.integers(0, 4, length).astype(np.uint8)
        cells = [AsmCapCell(int(code)) for code in segment]
        count = sum(
            cell.output(NO_NEIGHBOR, int(read[i]), NO_NEIGHBOR,
                        MatchMode.HAMMING)
            for i, cell in enumerate(cells)
        )
        assert count == hamming_distance(DnaSequence(segment),
                                         DnaSequence(read))
