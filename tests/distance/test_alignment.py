"""Tests for global alignment traceback and CIGAR emission."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.alignment import align, cigar_edit_count
from repro.distance.edit_distance import edit_distance
from repro.errors import SequenceError
from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", max_size=30).map(DnaSequence)


class TestKnownAlignments:
    def test_identical(self):
        result = align(DnaSequence("ACGT"), DnaSequence("ACGT"))
        assert result.distance == 0
        assert result.cigar == "4="
        assert result.aligned_a == result.aligned_b == "ACGT"

    def test_single_mismatch(self):
        result = align(DnaSequence("ACGT"), DnaSequence("AGGT"))
        assert result.distance == 1
        assert result.cigar == "1=1X2="

    def test_deletion_from_read(self):
        result = align(DnaSequence("ACGT"), DnaSequence("AGT"))
        assert result.distance == 1
        assert "D" in result.cigar
        assert "-" in result.aligned_b

    def test_insertion_into_read(self):
        result = align(DnaSequence("AGT"), DnaSequence("ACGT"))
        assert result.distance == 1
        assert "I" in result.cigar
        assert "-" in result.aligned_a

    def test_empty_cases(self):
        assert align(DnaSequence(""), DnaSequence("")).cigar == ""
        assert align(DnaSequence("ACG"), DnaSequence("")).cigar == "3D"
        assert align(DnaSequence(""), DnaSequence("ACG")).cigar == "3I"


class TestInvariants:
    @settings(max_examples=80, deadline=None)
    @given(dna, dna)
    def test_distance_matches_dp(self, a, b):
        assert align(a, b).distance == edit_distance(a, b)

    @settings(max_examples=80, deadline=None)
    @given(dna, dna)
    def test_cigar_edit_count_equals_distance(self, a, b):
        result = align(a, b)
        assert cigar_edit_count(result.cigar) == result.distance

    @settings(max_examples=80, deadline=None)
    @given(dna, dna)
    def test_gapped_rows_reconstruct_inputs(self, a, b):
        result = align(a, b)
        assert result.aligned_a.replace("-", "") == str(a)
        assert result.aligned_b.replace("-", "") == str(b)
        assert len(result.aligned_a) == len(result.aligned_b)

    @settings(max_examples=50, deadline=None)
    @given(dna, dna)
    def test_column_semantics(self, a, b):
        """Every alignment column is consistent with its CIGAR op."""
        result = align(a, b)
        column = 0
        for count, op in result.operations():
            for _ in range(count):
                ca = result.aligned_a[column]
                cb = result.aligned_b[column]
                if op == "=":
                    assert ca == cb != "-"
                elif op == "X":
                    assert ca != cb and "-" not in (ca, cb)
                elif op == "I":
                    assert ca == "-" and cb != "-"
                else:
                    assert cb == "-" and ca != "-"
                column += 1
        assert column == len(result.aligned_a)


class TestCigarParsing:
    def test_operations_round_trip(self):
        result = align(DnaSequence("ACGTACGT"), DnaSequence("ACTTACG"))
        total = sum(count for count, _ in result.operations())
        assert total == len(result.aligned_a)

    def test_invalid_op_rejected(self):
        with pytest.raises(SequenceError):
            cigar_edit_count("5M")  # plain M is not in the =/X alphabet
