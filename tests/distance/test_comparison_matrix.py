"""Tests for the anti-diagonal comparison-matrix traversal (ReSMA)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.comparison_matrix import (
    AntiDiagonalTraversal,
    comparison_matrix_distance,
)
from repro.distance.edit_distance import edit_distance, edit_distance_matrix
from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", max_size=25).map(DnaSequence)


class TestCorrectness:
    @settings(max_examples=60, deadline=None)
    @given(dna, dna)
    def test_distance_agrees_with_row_dp(self, a, b):
        assert comparison_matrix_distance(a, b) == edit_distance(a, b)

    def test_full_matrix_agrees(self, rng):
        a = DnaSequence(rng.integers(0, 4, 18).astype(np.uint8))
        b = DnaSequence(rng.integers(0, 4, 13).astype(np.uint8))
        traversal = AntiDiagonalTraversal.run(a, b)
        assert np.array_equal(traversal.matrix, edit_distance_matrix(a, b))


class TestWorkStatistics:
    def test_wavefront_count(self, rng):
        n, m = 10, 7
        a = DnaSequence(rng.integers(0, 4, n).astype(np.uint8))
        b = DnaSequence(rng.integers(0, 4, m).astype(np.uint8))
        stats = AntiDiagonalTraversal.run(a, b).stats
        # Interior wavefronts: s = 2 .. n+m, i.e. n + m - 1 of them.
        assert stats.n_wavefronts == n + m - 1

    def test_total_updates_equal_interior_cells(self, rng):
        n, m = 12, 9
        a = DnaSequence(rng.integers(0, 4, n).astype(np.uint8))
        b = DnaSequence(rng.integers(0, 4, m).astype(np.uint8))
        stats = AntiDiagonalTraversal.run(a, b).stats
        assert stats.total_cell_updates == n * m

    def test_max_width_is_min_dimension(self, rng):
        a = DnaSequence(rng.integers(0, 4, 20).astype(np.uint8))
        b = DnaSequence(rng.integers(0, 4, 6).astype(np.uint8))
        stats = AntiDiagonalTraversal.run(a, b).stats
        assert stats.max_wavefront_width == 6

    def test_widths_sum_to_updates(self, rng):
        a = DnaSequence(rng.integers(0, 4, 11).astype(np.uint8))
        b = DnaSequence(rng.integers(0, 4, 14).astype(np.uint8))
        stats = AntiDiagonalTraversal.run(a, b).stats
        assert sum(stats.wavefront_widths) == stats.total_cell_updates

    def test_empty_inputs(self):
        traversal = AntiDiagonalTraversal.run(DnaSequence(""),
                                              DnaSequence("ACG"))
        assert traversal.distance == 3
        assert traversal.stats.n_wavefronts == 0
