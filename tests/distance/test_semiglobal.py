"""Tests for semiglobal alignment (read placement)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.semiglobal import (
    best_semiglobal_hit,
    occurrences_within,
    semiglobal_distances,
)
from repro.errors import SequenceError
from repro.genome.generator import generate_reference
from repro.genome.sequence import DnaSequence


def brute_force(read: DnaSequence, reference: DnaSequence) -> np.ndarray:
    """Reference semiglobal DP (free leading text gaps)."""
    p, t = read.codes, reference.codes
    m, n = len(p), len(t)
    table = np.zeros((m + 1, n + 1), dtype=int)
    table[:, 0] = np.arange(m + 1)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            table[i, j] = min(
                table[i - 1, j - 1] + (p[i - 1] != t[j - 1]),
                table[i - 1, j] + 1,
                table[i, j - 1] + 1,
            )
    return table[m, :]


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=1, max_size=12),
           st.text(alphabet="ACGT", max_size=30))
    def test_distances_match(self, read_text, ref_text):
        read = DnaSequence(read_text)
        reference = DnaSequence(ref_text)
        assert np.array_equal(semiglobal_distances(read, reference),
                              brute_force(read, reference))

    def test_empty_read(self):
        distances = semiglobal_distances(DnaSequence(""), DnaSequence("ACGT"))
        assert np.array_equal(distances, np.zeros(5, dtype=np.int32))


class TestPlacement:
    def test_embedded_read_found_exactly(self, rng):
        reference = generate_reference(500, seed=4, with_repeats=False)
        read = reference.window(123, 80)
        hit = best_semiglobal_hit(read, reference)
        assert hit.distance == 0
        assert 203 in hit.all_ends  # 123 + 80

    def test_read_with_edits_found_near(self, rng):
        reference = generate_reference(500, seed=5, with_repeats=False)
        codes = reference.window(200, 60).codes.copy()
        codes[10] = (codes[10] + 1) % 4
        codes = np.delete(codes, 30)
        hit = best_semiglobal_hit(DnaSequence(codes), reference)
        assert hit.distance <= 2
        assert abs(hit.end - 259) <= 3

    def test_random_read_scores_high(self, rng):
        reference = generate_reference(400, seed=6, with_repeats=False)
        read = DnaSequence(rng.integers(0, 4, 100).astype(np.uint8))
        hit = best_semiglobal_hit(read, reference)
        assert hit.distance > 15

    def test_occurrences_within_threshold(self, rng):
        reference = generate_reference(300, seed=7, with_repeats=False)
        read = reference.window(100, 50)
        hits = occurrences_within(read, reference, threshold=0)
        assert 150 in hits

    def test_empty_read_rejected(self):
        with pytest.raises(SequenceError):
            best_semiglobal_hit(DnaSequence(""), DnaSequence("ACGT"))

    def test_negative_threshold_rejected(self):
        with pytest.raises(SequenceError):
            occurrences_within(DnaSequence("A"), DnaSequence("ACGT"), -1)

    def test_long_read_beyond_word_size(self, rng):
        """Bit-parallel masks must work past 64-base patterns."""
        reference = generate_reference(1000, seed=8, with_repeats=False)
        read = reference.window(300, 200)
        hit = best_semiglobal_hit(read, reference)
        assert hit.distance == 0
        assert 500 in hit.all_ends
