"""Tests for the DP edit-distance kernels (full, banded, batched)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.edit_distance import (
    banded_edit_distance,
    banded_edit_distance_batch,
    composition_lower_bound,
    edit_distance,
    edit_distance_matrix,
)
from repro.errors import SequenceError, ThresholdError
from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", max_size=30).map(DnaSequence)
dna_nonempty = st.text(alphabet="ACGT", min_size=1, max_size=30).map(DnaSequence)


class TestEditDistance:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("A", "", 1),
        ("", "ACGT", 4),
        ("ACGT", "ACGT", 0),
        ("ACGT", "AGGT", 1),
        ("ACGT", "CGT", 1),     # deletion
        ("ACGT", "AACGT", 1),   # insertion
        ("AGCTGAGA", "ATCTGCGA", 2),   # paper Fig. 2 example 1
        # Fig. 2 examples 2/3 quote ED=1 in *fixed-window* semantics
        # (the inserted/deleted base pushes one base out of the window);
        # full Levenshtein between the shown 8-base strings is 2.
        ("AGCTGAGA", "AGCATGAG", 2),
        ("AGCTGAGA", "AGTGAGAA", 2),
    ])
    def test_known_values(self, a, b, expected):
        assert edit_distance(DnaSequence(a), DnaSequence(b)) == expected

    @given(dna, dna)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(dna)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(dna, dna)
    def test_length_difference_lower_bound(self, a, b):
        assert edit_distance(a, b) >= abs(len(a) - len(b))

    @given(dna, dna)
    def test_max_length_upper_bound(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))

    @settings(max_examples=30, deadline=None)
    @given(dna, dna, dna)
    def test_triangle_inequality(self, a, b, c):
        assert (edit_distance(a, c)
                <= edit_distance(a, b) + edit_distance(b, c))


class TestBanded:
    def test_exact_within_band(self):
        a, b = DnaSequence("ACGTACGT"), DnaSequence("ACGAACGT")
        assert banded_edit_distance(a, b, band=3) == 1

    def test_caps_beyond_band(self):
        a, b = DnaSequence("AAAAAAAA"), DnaSequence("TTTTTTTT")
        assert banded_edit_distance(a, b, band=3) == 4

    def test_length_gap_beyond_band(self):
        assert banded_edit_distance(DnaSequence("A" * 10),
                                    DnaSequence("A" * 2), band=3) == 4

    def test_unequal_lengths_within_band(self):
        a, b = DnaSequence("ACGTAC"), DnaSequence("ACGT")
        assert banded_edit_distance(a, b, band=3) == 2

    def test_negative_band_rejected(self):
        with pytest.raises(ThresholdError):
            banded_edit_distance(DnaSequence("A"), DnaSequence("A"), -1)


class TestBatch:
    def test_agrees_with_scalar(self, rng):
        length, band = 32, 8
        segments = rng.integers(0, 4, (6, length)).astype(np.uint8)
        reads = rng.integers(0, 4, (4, length)).astype(np.uint8)
        batch = banded_edit_distance_batch(segments, reads, band)
        for r in range(4):
            for s in range(6):
                exact = edit_distance(DnaSequence(reads[r]),
                                      DnaSequence(segments[s]))
                assert batch[r, s] == min(exact, band + 1)

    def test_identical_rows_zero(self, rng):
        segments = rng.integers(0, 4, (3, 20)).astype(np.uint8)
        batch = banded_edit_distance_batch(segments, segments.copy(), 5)
        assert np.array_equal(np.diag(batch), np.zeros(3, dtype=np.int32))

    def test_band_zero_is_exact_match_test(self, rng):
        segments = rng.integers(0, 4, (4, 16)).astype(np.uint8)
        reads = segments.copy()
        reads[0, 3] ^= 1
        batch = banded_edit_distance_batch(segments, reads, 0)
        assert batch[0, 0] == 1  # capped: "greater than 0"
        assert batch[1, 1] == 0

    def test_zero_length(self):
        empty = np.zeros((2, 0), dtype=np.uint8)
        batch = banded_edit_distance_batch(empty, empty, 4)
        assert batch.shape == (2, 2)
        assert (batch == 0).all()

    def test_shape_validation(self):
        with pytest.raises(SequenceError):
            banded_edit_distance_batch(np.zeros((2, 4), dtype=np.uint8),
                                       np.zeros((2, 5), dtype=np.uint8), 2)

    def test_result_shape(self, rng):
        segments = rng.integers(0, 4, (7, 12)).astype(np.uint8)
        reads = rng.integers(0, 4, (3, 12)).astype(np.uint8)
        assert banded_edit_distance_batch(segments, reads, 4).shape == (3, 7)


class TestCompositionLowerBound:
    """The prefilter bound must never exceed the true distance."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_bound_below_exact_distance(self, seed):
        rng = np.random.default_rng(seed)
        segments = rng.integers(0, 4, (6, 24)).astype(np.uint8)
        reads = rng.integers(0, 4, (4, 24)).astype(np.uint8)
        bound = composition_lower_bound(segments, reads)
        for r in range(reads.shape[0]):
            for s in range(segments.shape[0]):
                exact = edit_distance(DnaSequence(reads[r]),
                                      DnaSequence(segments[s]))
                assert bound[r, s] <= exact

    def test_identical_rows_bound_zero(self, rng):
        rows = rng.integers(0, 4, (3, 16)).astype(np.uint8)
        assert (np.diag(composition_lower_bound(rows, rows)) == 0).all()

    def test_batch_dp_unaffected_by_prefilter(self, rng):
        """Pairs the bound prunes get the cap; survivors keep the exact
        banded value — i.e. the prefilter changes nothing observable."""
        segments = rng.integers(0, 4, (9, 32)).astype(np.uint8)
        reads = rng.integers(0, 4, (5, 32)).astype(np.uint8)
        reads[0] = segments[3]
        band = 6
        batch = banded_edit_distance_batch(segments, reads, band)
        for r in range(reads.shape[0]):
            for s in range(segments.shape[0]):
                exact = edit_distance(DnaSequence(reads[r]),
                                      DnaSequence(segments[s]))
                assert batch[r, s] == min(exact, band + 1)


class TestLongSequenceFallback:
    def test_int32_fallback_beyond_int16_range(self):
        """Sequences too long for the int16 tables stay exact."""
        length = 16400  # length + band + 1 exceeds the int16 sentinel
        rng = np.random.default_rng(0)
        base = rng.integers(0, 4, length).astype(np.uint8)
        edited = base.copy()
        edited[[10, 5000, 16000]] = (edited[[10, 5000, 16000]] + 1) % 4
        batch = banded_edit_distance_batch(base[None, :],
                                           np.stack([base, edited]), 4)
        assert batch[0, 0] == 0
        assert batch[1, 0] == 3


class TestMatrix:
    def test_matrix_boundaries(self):
        table = edit_distance_matrix(DnaSequence("ACG"), DnaSequence("AG"))
        assert table[:, 0].tolist() == [0, 1, 2, 3]
        assert table[0, :].tolist() == [0, 1, 2]

    def test_matrix_corner_is_distance(self, rng):
        for _ in range(10):
            a = DnaSequence(rng.integers(0, 4, 15).astype(np.uint8))
            b = DnaSequence(rng.integers(0, 4, 12).astype(np.uint8))
            table = edit_distance_matrix(a, b)
            assert table[-1, -1] == edit_distance(a, b)

    def test_matrix_monotone_steps(self, rng):
        """Adjacent DP cells differ by at most 1."""
        a = DnaSequence(rng.integers(0, 4, 20).astype(np.uint8))
        b = DnaSequence(rng.integers(0, 4, 20).astype(np.uint8))
        table = edit_distance_matrix(a, b)
        assert (np.abs(np.diff(table, axis=0)) <= 1).all()
        assert (np.abs(np.diff(table, axis=1)) <= 1).all()
