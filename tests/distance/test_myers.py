"""Tests for the Myers bit-parallel oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.edit_distance import edit_distance
from repro.distance.myers import myers_distance_to_all, myers_edit_distance
from repro.genome.sequence import DnaSequence

dna = st.text(alphabet="ACGT", max_size=60).map(DnaSequence)


class TestMyers:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("ACGT", "", 4),
        ("", "ACGT", 4),
        ("ACGT", "ACGT", 0),
        ("ACGT", "TGCA", 4),
        ("AGCTGAGA", "AGCATGAG", 2),
    ])
    def test_known_values(self, a, b, expected):
        assert myers_edit_distance(DnaSequence(a), DnaSequence(b)) == expected

    @settings(max_examples=150, deadline=None)
    @given(dna, dna)
    def test_agrees_with_dp(self, a, b):
        assert myers_edit_distance(a, b) == edit_distance(a, b)

    def test_long_patterns_beyond_word_size(self, rng):
        """Python bignums make >64-base patterns work transparently."""
        a = DnaSequence(rng.integers(0, 4, 300).astype(np.uint8))
        b = DnaSequence(rng.integers(0, 4, 300).astype(np.uint8))
        assert myers_edit_distance(a, b) == edit_distance(a, b)

    def test_distance_to_all(self, rng):
        pattern = DnaSequence(rng.integers(0, 4, 20).astype(np.uint8))
        segments = rng.integers(0, 4, (5, 20)).astype(np.uint8)
        result = myers_distance_to_all(pattern, segments)
        expected = [edit_distance(pattern, DnaSequence(row))
                    for row in segments]
        assert result.tolist() == expected
