"""Tests for the measured strategy profile and its Fig. 8 wiring."""

from __future__ import annotations

import pytest

from repro import constants
from repro.arch.accelerator import AsmCapAccelerator
from repro.arch.config import ArchConfig
from repro.arch.power import component_energies_per_search
from repro.cost.profile import (
    StrategyProfile,
    measure_strategy_profile,
    profile_from_ledger,
    typical_search_event,
)
from repro.cost.views import component_energies
from repro.errors import ArchConfigError, ExperimentError
from repro.experiments.fig8 import (
    analytic_strategy_profile,
    asmcap_read_cost,
    compute_fig8,
    strategy_search_profile,
)


class TestMeasuredProfile:
    @pytest.mark.parametrize("condition", ["A", "B"])
    def test_measured_matches_analytic(self, condition):
        """One match_sweep pass measures exactly the policy profile."""
        measured = measure_strategy_profile(condition)
        searches, cycles = strategy_search_profile(condition)
        assert measured.searches_per_read == pytest.approx(searches)
        assert measured.rotation_cycles_per_read == pytest.approx(cycles)
        assert measured.source == "measured"

    def test_per_threshold_detail(self):
        profile = measure_strategy_profile("B")
        assert profile.thresholds == constants.CONDITION_B_THRESHOLDS
        assert len(profile.per_threshold_searches) == len(
            constants.CONDITION_B_THRESHOLDS
        )
        # Below Tl the per-threshold count is 1 (ED*) + 0 (HDAC off
        # for condition B) + 0 rotations; above Tl it adds 2*NR passes.
        assert min(profile.per_threshold_searches) == 1.0
        assert max(profile.per_threshold_searches) == 1.0 + 2 * constants.TASR_NR

    def test_left_only_cheaper(self):
        both = measure_strategy_profile("B", tasr_direction="both")
        left = measure_strategy_profile("B", tasr_direction="left")
        assert left.searches_per_read < both.searches_per_read

    def test_unknown_condition(self):
        with pytest.raises(ExperimentError):
            measure_strategy_profile("C")

    def test_profile_needs_sweep_events(self):
        with pytest.raises(ExperimentError):
            profile_from_ledger([], (1, 2, 3))

    def test_repeated_sweeps_average_not_multiply(self, small_dataset_b):
        """Two match_sweep runs on one ledger yield the per-read
        profile, not twice it."""
        import numpy as np

        from repro.cam.array import CamArray
        from repro.core.matcher import AsmCapMatcher, MatcherConfig

        dataset = small_dataset_b
        array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                         domain="charge", noisy=True, seed=4)
        array.store(dataset.segments)
        matcher = AsmCapMatcher(array, dataset.model, MatcherConfig(),
                                seed=5)
        reads = np.stack([r.read.codes for r in dataset.reads])
        thresholds = np.arange(2, 17, 2)
        matcher.match_sweep(reads, thresholds)
        once = profile_from_ledger(array.ledger, thresholds, "B")
        matcher.match_sweep(reads, thresholds)
        twice = profile_from_ledger(array.ledger, thresholds, "B")
        assert twice.searches_per_read == once.searches_per_read
        assert (twice.rotation_cycles_per_read
                == once.rotation_cycles_per_read)

    def test_profile_rejects_uncovered_threshold(self, small_dataset_b):
        import numpy as np

        from repro.cam.array import CamArray
        from repro.core.matcher import AsmCapMatcher, MatcherConfig

        dataset = small_dataset_b
        array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                         domain="charge", noisy=True, seed=4)
        array.store(dataset.segments)
        matcher = AsmCapMatcher(array, dataset.model, MatcherConfig(),
                                seed=5)
        reads = np.stack([r.read.codes for r in dataset.reads])
        matcher.match_sweep(reads, np.array([2, 4]))
        with pytest.raises(ExperimentError):
            profile_from_ledger(array.ledger, (2, 4, 6))

    def test_average(self):
        a = StrategyProfile("A", 2.0, 0.0)
        b = StrategyProfile("B", 4.0, 4.5)
        combined = StrategyProfile.average([a, b])
        assert combined.searches_per_read == pytest.approx(3.0)
        assert combined.rotation_cycles_per_read == pytest.approx(2.25)
        assert combined.condition == "A+B"

    def test_average_empty(self):
        with pytest.raises(ExperimentError):
            StrategyProfile.average([])


class TestFig8Measured:
    def test_measured_equals_analytic_fig8(self):
        measured = compute_fig8(measured=True)
        analytic = compute_fig8(measured=False)
        for name in measured.costs:
            assert (measured.costs[name].latency_ns
                    == analytic.costs[name].latency_ns)
            assert (measured.costs[name].energy_joules
                    == analytic.costs[name].energy_joules)

    def test_result_carries_both_profiles(self):
        result = compute_fig8(measured=True)
        assert set(result.profiles) == {"A", "B"}
        assert result.profiles["A"].source == "measured"
        assert result.analytic_profiles["A"].source == "analytic"

    def test_render_includes_strategy_statistics(self):
        text = compute_fig8(measured=True).render()
        assert "Strategy statistics" in text
        assert "measured" in text
        assert "analytic" in text

    def test_asmcap_read_cost_default_is_plain_profile(self):
        assert (asmcap_read_cost().latency_ns
                == asmcap_read_cost(StrategyProfile.plain()).latency_ns)

    def test_asmcap_read_cost_rejects_scalar_argument(self):
        with pytest.raises(ExperimentError):
            asmcap_read_cost(2.0)


class TestEstimateReadCostProfileOnly:
    @pytest.fixture(scope="class")
    def accelerator(self):
        return AsmCapAccelerator(
            config=ArchConfig.paper_system(), n_functional_arrays=1
        )

    def test_profile_drives_the_estimate(self, accelerator):
        plain = accelerator.estimate_read_cost(StrategyProfile.plain())
        full = accelerator.estimate_read_cost(
            analytic_strategy_profile("B")
        )
        assert full.searches_per_read > plain.searches_per_read
        assert full.latency_ns > plain.latency_ns
        assert full.energy_joules > plain.energy_joules

    def test_defaults_to_plain_read(self, accelerator):
        assert (accelerator.estimate_read_cost().searches_per_read
                == 1.0)

    def test_rejects_scalar_argument(self, accelerator):
        with pytest.raises(ArchConfigError):
            accelerator.estimate_read_cost(2.0)

    def test_plain_profile_is_one_search_no_rotation(self):
        plain = StrategyProfile.plain()
        assert plain.searches_per_read == 1.0
        assert plain.rotation_cycles_per_read == 0.0
        assert plain.source == "analytic"


class TestTypicalEvent:
    def test_power_model_reads_ledger_view(self):
        """arch.power's component energies ARE the ledger view."""
        event = typical_search_event()
        assert component_energies_per_search() == component_energies(event)

    def test_typical_event_shape(self):
        event = typical_search_event(rows=64, cols=32)
        assert event.n_rows == 64
        assert event.n_cells == 32
        assert event.domain == "charge"

    def test_component_view_rejects_current_domain(self):
        import numpy as np

        from repro.cost.events import EdStarPass
        from repro.errors import CamConfigError

        event = EdStarPass(
            domain="current", mode="ed_star", n_cells=8, vdd=1.2,
            search_time_ns=2.4,
            mismatch_counts=np.full((1, 4), 2.0),
            thresholds=np.zeros(1, dtype=int),
        )
        with pytest.raises(CamConfigError):
            component_energies(event)

    def test_invalid_fraction(self):
        with pytest.raises(ExperimentError):
            typical_search_event(mismatch_fraction=1.5)
