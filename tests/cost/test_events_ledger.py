"""Unit tests for the cost-event taxonomy and the ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.cam.array import CamArray
from repro.cam.cell import MatchMode
from repro.cost.events import (
    BufferBroadcast,
    EdStarPass,
    HdacPass,
    ReferenceLoad,
    SearchPassEvent,
    TasrRotationPass,
)
from repro.cost.ledger import CostLedger
from repro.cost.views import search_pass_energy_per_query, search_stats


@pytest.fixture
def small_array(rng):
    array = CamArray(rows=8, cols=16, domain="charge", noisy=False, seed=3)
    array.store(rng.integers(0, 4, (8, 16)).astype(np.uint8))
    return array


class TestEventEmission:
    def test_store_emits_reference_load(self, small_array):
        loads = small_array.ledger.of_type(ReferenceLoad)
        assert len(loads) == 1
        assert loads[0].n_segments == 8
        assert loads[0].n_cells == 16
        assert loads[0].n_bases == 128

    def test_restore_records_rows_written_by_that_call(self, small_array,
                                                       rng):
        small_array.store(rng.integers(0, 4, (2, 16)).astype(np.uint8))
        loads = small_array.ledger.of_type(ReferenceLoad)
        assert [load.n_segments for load in loads] == [8, 2]

    def test_accelerator_merged_ledger_counts_loads_once(self, rng):
        from repro.arch.accelerator import AsmCapAccelerator
        from repro.arch.config import ArchConfig

        acc = AsmCapAccelerator(
            config=ArchConfig(n_arrays=4, array_rows=8, array_cols=16),
            n_functional_arrays=2, noisy=False,
        )
        segments = rng.integers(0, 4, (12, 16)).astype(np.uint8)
        acc.load_reference(segments)
        acc.match_read(segments[0], 2)
        merged = acc.merged_ledger()
        loads = merged.of_type(ReferenceLoad)
        assert sum(load.n_segments for load in loads) == 12
        # Both functional arrays' search passes are merged in.
        assert len(merged.search_passes()) >= 2

    def test_scalar_search_emits_ed_star_pass(self, small_array, rng):
        read = rng.integers(0, 4, 16).astype(np.uint8)
        small_array.search(read, 4)
        passes = small_array.ledger.search_passes()
        assert len(passes) == 1
        event = passes[0]
        assert isinstance(event, EdStarPass)
        assert event.mode == "ed_star"
        assert event.n_queries == 1
        assert event.n_rows == 8
        assert event.shift_cycles == 0
        assert event.covers_threshold(4)
        assert not event.covers_threshold(5)

    def test_hamming_search_emits_hdac_pass(self, small_array, rng):
        read = rng.integers(0, 4, 16).astype(np.uint8)
        small_array.search(read, 4, MatchMode.HAMMING)
        event = small_array.ledger.search_passes()[0]
        assert isinstance(event, HdacPass)
        assert event.mode == "hamming"

    def test_rotated_search_emits_rotation_pass(self, small_array, rng):
        read = rng.integers(0, 4, 16).astype(np.uint8)
        small_array.search_rotated(read, 4, rotation=2)
        event = small_array.ledger.search_passes()[0]
        assert isinstance(event, TasrRotationPass)
        assert event.rotation == 2
        assert event.shift_cycles == 2

    def test_batch_rotation_pass_scales_shift_cycles(self, small_array, rng):
        queries = rng.integers(0, 4, (5, 16)).astype(np.uint8)
        small_array.search_batch(queries, 4, rotation=-3)
        event = small_array.ledger.search_passes()[0]
        assert isinstance(event, TasrRotationPass)
        assert event.shift_cycles == 3 * 5

    def test_sweep_pass_records_sweep_vector(self, small_array, rng):
        queries = rng.integers(0, 4, (3, 16)).astype(np.uint8)
        small_array.search_sweep(queries, np.array([1, 4, 9]))
        event = small_array.ledger.search_passes()[0]
        assert event.sweep
        assert event.n_queries == 3
        assert event.covers_threshold(4)
        assert not event.covers_threshold(3)

    def test_event_energy_view_matches_result(self, small_array, rng):
        queries = rng.integers(0, 4, (4, 16)).astype(np.uint8)
        result = small_array.search_batch(queries, 4)
        event = small_array.ledger.search_passes()[-1]
        assert np.array_equal(search_pass_energy_per_query(event),
                              result.energy_per_query_joules)
        assert event.energy_joules == result.energy_joules
        assert event.latency_ns == result.latency_ns


class TestLedger:
    def test_order_preserved(self):
        ledger = CostLedger()
        first = ledger.record(ReferenceLoad(n_segments=1, n_cells=4))
        second = ledger.record(BufferBroadcast(n_reads=2, read_bits=8))
        assert ledger.events == (first, second)
        assert len(ledger) == 2
        assert list(ledger) == [first, second]

    def test_of_type_and_search_passes(self, small_array, rng):
        read = rng.integers(0, 4, 16).astype(np.uint8)
        small_array.search(read, 4)
        assert len(small_array.ledger.of_type(ReferenceLoad)) == 1
        assert len(small_array.ledger.search_passes()) == 1
        assert all(isinstance(e, SearchPassEvent)
                   for e in small_array.ledger.search_passes())

    def test_merged_preserves_input_order(self):
        a = CostLedger([ReferenceLoad(n_segments=1, n_cells=4)])
        b = CostLedger([BufferBroadcast(n_reads=1, read_bits=8)])
        merged = CostLedger.merged(a, b)
        assert merged.events == a.events + b.events

    def test_clear(self, small_array, rng):
        read = rng.integers(0, 4, 16).astype(np.uint8)
        small_array.search(read, 4)
        small_array.ledger.clear()
        assert len(small_array.ledger) == 0
        assert small_array.stats.n_searches == 0

    def test_broadcast_totals(self):
        event = BufferBroadcast(n_reads=3, read_bits=512)
        assert event.total_bits == 3 * 512


class TestStatsView:
    def test_stats_counts_physical_passes(self, small_array, rng):
        queries = rng.integers(0, 4, (4, 16)).astype(np.uint8)
        small_array.search_sweep(queries, np.array([1, 2, 3, 4, 5]))
        stats = small_array.stats
        # A sweep costs one pass per query, not one per (T, query).
        assert stats.n_searches == 4
        assert stats.total_latency_ns == pytest.approx(
            4 * constants.ASMCAP_SEARCH_TIME_NS
        )

    def test_stats_accumulate_in_event_order(self, small_array, rng):
        reads = rng.integers(0, 4, (3, 16)).astype(np.uint8)
        for i, read in enumerate(reads):
            small_array.search(read, 4)
            small_array.search_rotated(read, 4, rotation=i)
        stats = small_array.stats
        assert stats.n_searches == 6
        assert stats.n_rotation_cycles == 0 + 1 + 2
        total = 0.0
        for event in small_array.ledger.search_passes():
            total += event.energy_joules
        assert stats.total_energy_joules == total

    def test_stats_view_matches_manual_recompute(self, small_array, rng):
        queries = rng.integers(0, 4, (6, 16)).astype(np.uint8)
        small_array.search_batch(queries, 3)
        small_array.search_batch(queries, 7, MatchMode.HAMMING)
        stats = search_stats(small_array.ledger)
        assert stats.n_searches == 12
        expected = sum(e.energy_joules
                       for e in small_array.ledger.search_passes())
        assert stats.total_energy_joules == pytest.approx(expected)
