"""Ledger-compaction equivalence property tests.

The compaction contract (DESIGN.md, "Cost-ledger contract:
compaction"): folding fully-materialised events into a
:class:`~repro.cost.events.CompactionCheckpoint` must leave every
ledger view **bit-identical** — the checkpoint stores the views' own
running float accumulations, computed in event order at fold time, so
a view resuming from it performs exactly the additions the uncompacted
event sequence would.  Every comparison below is exact (``==``), on
all four execution paths (scalar, batched, sweep, sharded), and the
illegality rules (mid-stream checkpoints, compacted merges, sweep
folding) are enforced.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cam.array import CamArray
from repro.cam.cell import MatchMode
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.core.pipeline import ShardedReadMappingPipeline
from repro.cost.events import (
    CompactionCheckpoint,
    EdStarPass,
    HdacPass,
    ReferenceLoad,
    TasrRotationPass,
)
from repro.cost.ledger import CostLedger
from repro.cost.profile import profile_from_ledger
from repro.errors import ExperimentError
from repro.cost.views import component_energy_totals, search_stats
from repro.errors import CamConfigError, LedgerCompactionError


def _twin_arrays(rng, domain="charge", rows=12, cols=24, seed=5,
                 compaction=4):
    """Two identically-seeded arrays: append-only and compacting."""
    plain = CamArray(rows=rows, cols=cols, domain=domain, noisy=True,
                     seed=seed)
    compacting = CamArray(rows=rows, cols=cols, domain=domain, noisy=True,
                          seed=seed, ledger_compaction=compaction)
    segments = rng.integers(0, 4, (rows, cols)).astype(np.uint8)
    plain.store(segments)
    compacting.store(segments)
    return plain, compacting


def _assert_views_identical(plain: CostLedger, compacting: CostLedger):
    assert search_stats(compacting) == search_stats(plain)
    if all(not hasattr(e, "domain") or e.domain == "charge"
           for e in plain):
        assert (component_energy_totals(compacting)
                == component_energy_totals(plain))


@pytest.mark.parametrize("domain", ["charge", "current"])
class TestArrayPathCompaction:
    """Scalar / batched searches: compacted views read the same bits."""

    def test_scalar_searches(self, rng, domain):
        plain, compacting = _twin_arrays(rng, domain)
        queries = rng.integers(0, 4, (9, 24)).astype(np.uint8)
        for i, query in enumerate(queries):
            for array in (plain, compacting):
                array.search(query, 5, MatchMode.ED_STAR,
                             noise_key=(i, 0))
        assert compacting.ledger.n_folded > 0
        _assert_views_identical(plain.ledger, compacting.ledger)
        assert compacting.stats == plain.stats

    def test_batched_searches(self, rng, domain):
        plain, compacting = _twin_arrays(rng, domain, compaction=2)
        keys = [(i, 0) for i in range(6)]
        for _ in range(4):
            queries = rng.integers(0, 4, (6, 24)).astype(np.uint8)
            for array in (plain, compacting):
                array.search_batch(queries, 5, MatchMode.ED_STAR,
                                   noise_keys=keys)
                array.search_batch(queries, 5, MatchMode.HAMMING,
                                   noise_keys=keys)
        assert compacting.ledger.n_folded > 0
        _assert_views_identical(plain.ledger, compacting.ledger)

    def test_current_domain_component_view_still_raises(self, rng, domain):
        """Folding a current-domain pass must not launder the
        charge-only Section V-B split into a silent number."""
        if domain == "charge":
            pytest.skip("current-domain behaviour")
        _, compacting = _twin_arrays(rng, domain)
        queries = rng.integers(0, 4, (9, 24)).astype(np.uint8)
        compacting.search_batch(queries, 5, MatchMode.ED_STAR)
        compacting.ledger.compact()
        assert compacting.ledger.checkpoint.component_totals is None
        with pytest.raises(CamConfigError):
            component_energy_totals(compacting.ledger)


class TestMatcherCompaction:
    """The full strategy flow (ED* + HDAC + TASR) under compaction."""

    CONDITION_THRESHOLD = {"A": 3, "B": 6}

    @pytest.mark.parametrize("condition", ["A", "B"])
    def test_batch_match(self, condition, small_dataset_a,
                         small_dataset_b):
        dataset = (small_dataset_a if condition == "A"
                   else small_dataset_b)
        threshold = self.CONDITION_THRESHOLD[condition]
        reads = np.stack([r.read.codes for r in dataset.reads])
        outcomes = {}
        ledgers = {}
        for compaction in (None, 2):
            array = CamArray(rows=dataset.n_segments,
                             cols=dataset.read_length, domain="charge",
                             noisy=True, seed=0,
                             ledger_compaction=compaction)
            array.store(dataset.segments)
            matcher = AsmCapMatcher(array, dataset.model,
                                    MatcherConfig(), seed=1)
            outcomes[compaction] = matcher.match_batch(reads, threshold)
            ledgers[compaction] = array.ledger
        assert ledgers[2].n_folded > 0
        assert np.array_equal(outcomes[2].decisions,
                              outcomes[None].decisions)
        assert np.array_equal(outcomes[2].energy_joules,
                              outcomes[None].energy_joules)
        _assert_views_identical(ledgers[None], ledgers[2])
        # Per-class counts survive folding.
        assert ledgers[2].pass_counts() == ledgers[None].pass_counts()

    def test_pass_class_summaries_match_folded_events(self, rng):
        plain, compacting = _twin_arrays(rng, compaction=2)
        queries = rng.integers(0, 4, (5, 24)).astype(np.uint8)
        keys = [(i, 0) for i in range(5)]
        for array in (plain, compacting):
            array.search_batch(queries, 5, MatchMode.ED_STAR,
                               noise_keys=keys)
            array.search_batch(queries, 5, MatchMode.HAMMING,
                               noise_keys=keys)
            array.search_batch(np.roll(queries, -1, axis=1), 5,
                               MatchMode.ED_STAR, noise_keys=keys,
                               rotation=1)
        compacting.ledger.compact()
        summaries = compacting.ledger.checkpoint.pass_summaries
        events = plain.ledger.search_passes()
        by_class = {
            "EdStarPass": [e for e in events
                           if isinstance(e, EdStarPass)
                           and not isinstance(e, TasrRotationPass)],
            "HdacPass": [e for e in events if isinstance(e, HdacPass)],
            "TasrRotationPass": [e for e in events
                                 if isinstance(e, TasrRotationPass)],
        }
        for name, group in by_class.items():
            summary = summaries[name]
            assert summary.n_passes == len(group)
            assert summary.n_queries == sum(e.n_queries for e in group)
            assert summary.shift_cycles == sum(e.shift_cycles
                                               for e in group)
            counts = np.concatenate(
                [e.mismatch_counts.ravel() for e in group])
            assert summary.population_count == counts.size
            assert summary.population_sum == int(counts.sum())
            assert summary.population_min == int(counts.min())
            assert summary.population_max == int(counts.max())
            assert summary.population_mean == pytest.approx(
                float(counts.mean()))


class TestSweepCompaction:
    """Sweep passes are preserved; fold_sweep is the explicit escape."""

    def _sweep_ledger(self, dataset, compaction):
        array = CamArray(rows=dataset.n_segments,
                         cols=dataset.read_length, domain="charge",
                         noisy=True, seed=0,
                         ledger_compaction=compaction)
        array.store(dataset.segments)
        matcher = AsmCapMatcher(array, dataset.model, MatcherConfig(),
                                seed=1)
        reads = np.stack([r.read.codes for r in dataset.reads])
        matcher.match_sweep(reads, np.arange(1, 9))
        return array.ledger

    def test_sweep_passes_never_auto_fold(self, small_dataset_a):
        ledger = self._sweep_ledger(small_dataset_a, compaction=1)
        # Every sweep pass is still live — profile harvesting needs
        # their per-event threshold coverage.
        assert all(event.sweep for event in ledger.search_passes())
        assert len(ledger.search_passes()) > 0
        profile = profile_from_ledger(ledger, range(1, 9))
        plain = self._sweep_ledger(small_dataset_a, compaction=None)
        assert profile == profile_from_ledger(plain, range(1, 9))
        assert search_stats(ledger) == search_stats(plain)

    def test_fold_sweep_folds_exactly_and_kills_harvesting(
            self, small_dataset_a):
        ledger = self._sweep_ledger(small_dataset_a, compaction=1)
        plain = self._sweep_ledger(small_dataset_a, compaction=None)
        folded = ledger.compact(fold_sweep=True)
        assert folded > 0
        assert not ledger.search_passes()
        assert search_stats(ledger) == search_stats(plain)
        with pytest.raises(ExperimentError):
            profile_from_ledger(ledger, range(1, 9))


class TestShardedCompaction:
    """Sharded runs: per-shard and system-level views stay exact."""

    def test_sharded_run(self, small_dataset_a):
        reads = np.stack([r.read.codes for r in small_dataset_a.reads])
        pipelines = {}
        reports = {}
        for compaction in (None, 2):
            pipeline = ShardedReadMappingPipeline(
                small_dataset_a.segments, small_dataset_a.model,
                n_shards=4, noisy=True, seed=0, chunk_size=7,
                ledger_compaction=compaction,
            )
            reports[compaction] = pipeline.run(reads, 3)
            pipelines[compaction] = pipeline
        compacted, plain = pipelines[2], pipelines[None]
        assert any(m.array.ledger.n_folded > 0
                   for m in compacted.matchers)
        # Reports are bit-identical (per-read costs are captured in
        # outcomes before any fold).
        assert (reports[2].total_energy_joules
                == reports[None].total_energy_joules)
        assert (reports[2].total_latency_ns
                == reports[None].total_latency_ns)
        # Per-shard ledger views are exact...
        for ours, theirs in zip(compacted.matchers, plain.matchers, strict=True):
            assert (search_stats(ours.array.ledger)
                    == search_stats(theirs.array.ledger))
        # ...and so is the deterministic shard-ordered aggregation.
        assert compacted.merged_stats() == plain.merged_stats()

    def test_merged_ledger_rejects_compacted_shards(self,
                                                    small_dataset_a):
        reads = np.stack([r.read.codes for r in small_dataset_a.reads])
        pipeline = ShardedReadMappingPipeline(
            small_dataset_a.segments, small_dataset_a.model, n_shards=2,
            noisy=True, seed=0, chunk_size=7, ledger_compaction=2,
        )
        pipeline.run(reads, 3)
        with pytest.raises(LedgerCompactionError):
            pipeline.merged_ledger()

    def test_merged_accepts_leading_compacted_ledger(self, rng):
        _, compacting = _twin_arrays(rng, compaction=2)
        queries = rng.integers(0, 4, (6, 24)).astype(np.uint8)
        compacting.search_batch(queries, 5, MatchMode.ED_STAR)
        compacting.ledger.compact()
        other = CostLedger([ReferenceLoad(n_segments=2, n_cells=24)])
        merged = CostLedger.merged(compacting.ledger, other)
        assert merged.checkpoint is not None
        assert search_stats(merged) == search_stats(compacting.ledger)


class TestCompactionRules:
    """The illegality rules and the bookkeeping surface."""

    def test_midstream_checkpoint_rejected_by_views(self):
        checkpoint = CompactionCheckpoint(
            n_folded=1, n_searches=1, n_rotation_cycles=0,
            total_energy_joules=0.0, total_latency_ns=0.0,
            component_totals=None, pass_summaries={},
        )
        events = [ReferenceLoad(n_segments=1, n_cells=8), checkpoint]
        with pytest.raises(LedgerCompactionError):
            search_stats(events)
        with pytest.raises(LedgerCompactionError):
            component_energy_totals(events)

    def test_compact_refuses_midstream_checkpoint(self):
        checkpoint = CompactionCheckpoint(
            n_folded=1, n_searches=1, n_rotation_cycles=0,
            total_energy_joules=0.0, total_latency_ns=0.0,
            component_totals=None, pass_summaries={},
        )
        ledger = CostLedger([ReferenceLoad(n_segments=1, n_cells=8),
                             checkpoint])
        with pytest.raises(LedgerCompactionError):
            ledger.compact()

    def test_invalid_bound_rejected(self):
        with pytest.raises(LedgerCompactionError):
            CostLedger(compaction=0)

    def test_clear_drops_checkpoint(self, rng):
        _, compacting = _twin_arrays(rng, compaction=1)
        queries = rng.integers(0, 4, (4, 24)).astype(np.uint8)
        compacting.search_batch(queries, 5, MatchMode.ED_STAR)
        assert compacting.ledger.checkpoint is not None
        compacting.ledger.clear()
        assert compacting.ledger.checkpoint is None
        assert len(compacting.ledger) == 0
        assert search_stats(compacting.ledger).n_searches == 0

    def test_event_object_survives_fold(self, rng):
        """A caller holding the event keeps reading cached views."""
        _, compacting = _twin_arrays(rng, compaction=1)
        queries = rng.integers(0, 4, (4, 24)).astype(np.uint8)
        result = compacting.search_batch(queries, 5, MatchMode.ED_STAR)
        folded_energy = result.energy_per_query_joules
        compacting.search_batch(queries, 5, MatchMode.HAMMING)
        assert np.array_equal(result.energy_per_query_joules,
                              folded_energy)


class TestRandomisedFoldPoints:
    """Property: any interleaving of searches and compact() calls
    reads the same stats as the append-only ledger."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=24),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_stats_invariant_under_fold_points(self, fold_points, seed):
        rng = np.random.default_rng(seed)
        plain, compacting = _twin_arrays(rng, compaction=None)
        compacting_manual = compacting  # manual compact() only
        for i, fold_here in enumerate(fold_points):
            query = rng.integers(0, 4, 24).astype(np.uint8)
            for array in (plain, compacting_manual):
                array.search(query, 5, MatchMode.ED_STAR,
                             noise_key=(i, 0))
            if fold_here:
                compacting_manual.ledger.compact()
        assert (search_stats(compacting_manual.ledger)
                == search_stats(plain.ledger))
        assert (component_energy_totals(compacting_manual.ledger)
                == component_energy_totals(plain.ledger))
