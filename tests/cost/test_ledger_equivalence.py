"""Ledger-equivalence property tests.

The acceptance contract of the cost-ledger refactor: energies and
latencies **derived from the ledger events** are bit-identical to the
seed's float accumulation on every execution path — scalar, batched,
sweep and sharded — under a fixed seed, for both array modes and both
error conditions.  Every comparison below is exact (``==`` /
``array_equal``), not approximate: the views and the outcomes must
read the same floats.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.cam.array import CamArray
from repro.cam.cell import MatchMode
from repro.cam.energy import search_energy_per_row
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.core.pipeline import ShardedReadMappingPipeline
from repro.cost.events import EdStarPass, SearchPassEvent, TasrRotationPass
from repro.cost.ledger import CostLedger


def _dataset_reads(dataset):
    return np.stack([record.read.codes for record in dataset.reads])


def _seed_pass_energy(event: SearchPassEvent) -> np.ndarray:
    """The pre-refactor per-query energy accumulation, re-derived.

    Replicates the seed's ``CamArray._search_energy_batch`` float
    arithmetic from the event's recorded mismatch populations.
    """
    counts = event.mismatch_counts
    n_rows = counts.shape[1]
    if event.domain == "charge":
        cells = search_energy_per_row(counts, event.n_cells,
                                      vdd=event.vdd).sum(axis=1)
    else:
        precharge = (constants.EDAM_ML_PRECHARGE_CAP_F
                     * event.vdd**2 * n_rows)
        discharge = (constants.EDAM_DISCHARGE_ENERGY_PER_MISMATCH_J
                     * counts.sum(axis=1, dtype=float))
        cells = precharge + discharge
    peripherals = constants.SA_ENERGY_PER_ROW_J * n_rows
    return np.asarray(cells + peripherals, dtype=float)


@pytest.mark.parametrize("domain", ["charge", "current"])
@pytest.mark.parametrize("mode", [MatchMode.ED_STAR, MatchMode.HAMMING])
class TestArrayPathIdentity:
    """Scalar / batched / sweep searches read identical energies."""

    def test_energy_identical_across_paths(self, rng, domain, mode):
        array_scalar = CamArray(rows=12, cols=24, domain=domain,
                                noisy=True, seed=5)
        array_batch = CamArray(rows=12, cols=24, domain=domain,
                               noisy=True, seed=5)
        array_sweep = CamArray(rows=12, cols=24, domain=domain,
                               noisy=True, seed=5)
        segments = rng.integers(0, 4, (12, 24)).astype(np.uint8)
        for array in (array_scalar, array_batch, array_sweep):
            array.store(segments)
        queries = rng.integers(0, 4, (7, 24)).astype(np.uint8)
        keys = [(i, 0) for i in range(7)]

        scalar_energies = np.asarray([
            array_scalar.search(q, 5, mode, noise_key=k).energy_joules
            for q, k in zip(queries, keys, strict=True)
        ])
        batch = array_batch.search_batch(queries, 5, mode, noise_keys=keys)
        sweep = array_sweep.search_sweep(queries, np.array([2, 5, 9]),
                                         mode, noise_keys=keys)

        assert np.array_equal(scalar_energies,
                              batch.energy_per_query_joules)
        assert np.array_equal(batch.energy_per_query_joules,
                              sweep.energy_per_query_joules)

    def test_view_matches_seed_accumulation(self, rng, domain, mode):
        array = CamArray(rows=10, cols=20, domain=domain, noisy=True,
                         seed=9)
        array.store(rng.integers(0, 4, (10, 20)).astype(np.uint8))
        queries = rng.integers(0, 4, (5, 20)).astype(np.uint8)
        array.search_batch(queries, 4, mode)
        array.search(queries[0], 4, mode)
        for event in array.ledger.search_passes():
            assert np.array_equal(event.energy_per_query_joules,
                                  _seed_pass_energy(event))


def _make_matcher(dataset, seed=0, config=None):
    array = CamArray(rows=dataset.n_segments, cols=dataset.read_length,
                     domain="charge", noisy=True, seed=seed)
    array.store(dataset.segments)
    return AsmCapMatcher(array, dataset.model, config or MatcherConfig(),
                         seed=seed + 1)


def _scalar_groups(ledger: CostLedger):
    """Split a scalar run's ledger into one event group per match()."""
    groups: list[list[SearchPassEvent]] = []
    for event in ledger.search_passes():
        if isinstance(event, EdStarPass) and not isinstance(
                event, TasrRotationPass):
            groups.append([event])
        else:
            groups[-1].append(event)
    return groups


CONDITION_THRESHOLD = {"A": 3, "B": 6}


class TestMatcherPathReconstruction:
    """MatchOutcome cost fields reconstruct exactly from the events."""

    @pytest.mark.parametrize("condition", ["A", "B"])
    def test_scalar_match(self, condition, small_dataset_a,
                          small_dataset_b):
        dataset = (small_dataset_a if condition == "A"
                   else small_dataset_b)
        threshold = CONDITION_THRESHOLD[condition]
        matcher = _make_matcher(dataset)
        reads = _dataset_reads(dataset)
        outcomes = [matcher.match(read, threshold, query_key=i)
                    for i, read in enumerate(reads)]
        groups = _scalar_groups(matcher.array.ledger)
        assert len(groups) == len(outcomes)
        for outcome, group in zip(outcomes, groups, strict=True):
            energy = 0.0
            latency = 0.0
            for event in group:
                energy += float(event.energy_per_query_joules[0])
                latency += event.search_time_ns
            assert outcome.energy_joules == energy
            assert outcome.latency_ns == latency
            assert outcome.n_searches == len(group)

    @pytest.mark.parametrize("condition", ["A", "B"])
    def test_batch_match(self, condition, small_dataset_a,
                         small_dataset_b):
        dataset = (small_dataset_a if condition == "A"
                   else small_dataset_b)
        threshold = CONDITION_THRESHOLD[condition]
        matcher = _make_matcher(dataset)
        reads = _dataset_reads(dataset)
        outcome = matcher.match_batch(reads, threshold)
        n = reads.shape[0]
        energy = np.zeros(n)
        latency = np.zeros(n)
        searches = np.zeros(n, dtype=int)
        for event in matcher.array.ledger.search_passes():
            positions = event.query_keys[:, 0]
            energy[positions] += event.energy_per_query_joules
            latency[positions] += event.search_time_ns
            searches[positions] += 1
        assert np.array_equal(outcome.energy_joules, energy)
        assert np.array_equal(outcome.latency_ns, latency)
        assert np.array_equal(outcome.n_searches, searches)

    @pytest.mark.parametrize("condition", ["A", "B"])
    def test_sweep_match(self, condition, small_dataset_a,
                         small_dataset_b):
        dataset = (small_dataset_a if condition == "A"
                   else small_dataset_b)
        thresholds = np.arange(1, 9)
        matcher = _make_matcher(dataset)
        reads = _dataset_reads(dataset)
        outcome = matcher.match_sweep(reads, thresholds)
        n_thresholds, n_queries = outcome.energy_joules.shape
        energy = np.zeros((n_thresholds, n_queries))
        latency = np.zeros((n_thresholds, n_queries))
        searches = np.zeros((n_thresholds, n_queries), dtype=int)
        for event in matcher.array.ledger.search_passes():
            assert event.sweep
            covered = np.isin(thresholds, event.thresholds)
            energy[covered] += event.energy_per_query_joules
            latency[covered] += event.search_time_ns
            searches[covered] += 1
        assert np.array_equal(outcome.energy_joules, energy)
        assert np.array_equal(outcome.latency_ns, latency)
        assert np.array_equal(outcome.n_searches, searches)
        # Sweep slice t carries what match_batch at thresholds[t] carries.
        fresh = _make_matcher(dataset)
        batch = fresh.match_batch(reads, int(thresholds[3]))
        assert np.array_equal(outcome.energy_joules[3],
                              batch.energy_joules)

    @pytest.mark.parametrize("condition", ["A", "B"])
    def test_sharded_report(self, condition, small_dataset_a,
                            small_dataset_b):
        dataset = (small_dataset_a if condition == "A"
                   else small_dataset_b)
        threshold = CONDITION_THRESHOLD[condition]
        pipeline = ShardedReadMappingPipeline(
            dataset.segments, dataset.model, n_shards=4, noisy=True,
            seed=0, chunk_size=7,
        )
        reads = _dataset_reads(dataset)
        report = pipeline.run(reads, threshold)
        n = reads.shape[0]
        # Per-shard per-query totals from each shard's ledger, then the
        # sharded merge semantics: energy sums over shards, latency
        # takes the shard max.
        shard_energy = np.zeros((pipeline.n_shards, n))
        shard_latency = np.zeros((pipeline.n_shards, n))
        for s, matcher in enumerate(pipeline.matchers):
            for event in matcher.array.ledger.search_passes():
                positions = event.query_keys[:, 0]
                shard_energy[s, positions] += event.energy_per_query_joules
                shard_latency[s, positions] += event.search_time_ns
        energy = np.sum(shard_energy, axis=0)
        latency = np.max(shard_latency, axis=0)
        for q, mapping in enumerate(report.mappings):
            assert mapping.outcome.energy_joules == energy[q]
            assert mapping.outcome.latency_ns == latency[q]
        # Report totals are the seed's query-order accumulation.
        total_energy = 0.0
        for q in range(n):
            total_energy += energy[q]
        assert report.total_energy_joules == total_energy

    def test_sharded_broadcast_events(self, small_dataset_a):
        pipeline = ShardedReadMappingPipeline(
            small_dataset_a.segments, small_dataset_a.model, n_shards=2,
            noisy=True, seed=0, chunk_size=10,
        )
        reads = _dataset_reads(small_dataset_a)  # 24 reads -> 3 chunks
        pipeline.run(reads, 3)
        broadcasts = pipeline.ledger.events
        assert [b.n_reads for b in broadcasts] == [10, 10, 4]
        merged = pipeline.merged_ledger()
        assert len(merged) == len(pipeline.ledger) + sum(
            len(m.array.ledger) for m in pipeline.matchers
        )
