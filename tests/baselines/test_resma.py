"""Tests for the ReSMA baseline."""

from __future__ import annotations

import pytest

from repro.baselines.resma import ResmaBaseline
from repro.distance.edit_distance import edit_distance
from repro.errors import ThresholdError
from repro.genome.generator import generate_reference
from repro.genome.sequence import DnaSequence


class TestFunctional:
    def test_exact_decision(self):
        baseline = ResmaBaseline()
        a = generate_reference(30, seed=0)
        b = generate_reference(30, seed=1)
        outcome = baseline.match(a, b, threshold=20)
        assert outcome.distance == edit_distance(a, b)
        assert outcome.decision == (outcome.distance <= 20)

    def test_wavefront_statistics(self):
        baseline = ResmaBaseline()
        a = generate_reference(20, seed=2)
        b = generate_reference(25, seed=3)
        outcome = baseline.match(a, b, 10)
        assert outcome.n_wavefronts == 20 + 25 - 1
        assert outcome.cell_updates == 20 * 25


class TestCostModel:
    def test_latency_linear_in_wavefronts(self):
        baseline = ResmaBaseline(filter_ns=0.0)
        l256 = baseline.read_latency_ns(256)
        l128 = baseline.read_latency_ns(128)
        assert l256 / l128 == pytest.approx((2 * 256 - 1) / (2 * 128 - 1))

    def test_energy_write_dominated(self):
        """Cell-update (write) energy must dwarf the filter energy."""
        baseline = ResmaBaseline()
        total = baseline.read_energy_joules(256)
        from repro import constants
        updates = 256 * 256 * constants.RESMA_CELL_UPDATE_ENERGY_J
        assert updates / total > 0.99

    def test_match_costs_equal_model_costs(self):
        baseline = ResmaBaseline()
        a = generate_reference(64, seed=4)
        b = generate_reference(64, seed=5)
        outcome = baseline.match(a, b, 10)
        assert outcome.latency_ns == pytest.approx(
            baseline.read_latency_ns(64)
        )
        assert outcome.energy_joules == pytest.approx(
            baseline.read_energy_joules(64)
        )

    def test_anti_diagonal_beats_cpu_row_order(self):
        """ReSMA's whole point: wavefront latency << cell-count latency."""
        from repro.baselines.cm_cpu import CmCpuBaseline
        assert (ResmaBaseline().read_latency_ns(256)
                < CmCpuBaseline().read_latency_ns(256))

    def test_invalid_parameters(self):
        with pytest.raises(ThresholdError):
            ResmaBaseline(wavefront_ns=0.0)
        with pytest.raises(ThresholdError):
            ResmaBaseline(cell_update_energy_j=-1.0)
        with pytest.raises(ThresholdError):
            ResmaBaseline().read_latency_ns(0)
        with pytest.raises(ThresholdError):
            ResmaBaseline().match(DnaSequence("A"), DnaSequence("A"), -2)
