"""Tests for the EDAM baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.baselines.edam import (
    EdamMatcher,
    edam_issue_period_ns,
    edam_search_energy_per_array,
)
from repro.cam.array import CamArray
from repro.errors import CamConfigError
from repro.genome.datasets import build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("A", n_reads=8, read_length=128, n_segments=16,
                         seed=80)


class TestMatcher:
    def test_requires_current_domain(self):
        charge = CamArray(rows=4, cols=16, domain="charge")
        with pytest.raises(CamConfigError):
            EdamMatcher(array=charge)

    def test_default_construction(self, dataset):
        matcher = EdamMatcher(rows=16, cols=128, noisy=False)
        matcher.store(dataset.segments)
        assert matcher.array.domain == "current"

    def test_single_search_without_sr(self, dataset):
        matcher = EdamMatcher(rows=16, cols=128, noisy=False)
        matcher.store(dataset.segments)
        outcome = matcher.match(dataset.reads[0].read.codes, 4)
        assert outcome.n_searches == 1

    def test_latency_includes_precharge(self, dataset):
        matcher = EdamMatcher(rows=16, cols=128, noisy=False)
        matcher.store(dataset.segments)
        outcome = matcher.match(dataset.reads[0].read.codes, 4)
        assert outcome.latency_ns == pytest.approx(
            constants.EDAM_SEARCH_TIME_NS + constants.EDAM_PRECHARGE_TIME_NS
        )

    def test_sr_issues_rotated_searches(self, dataset):
        matcher = EdamMatcher(rows=16, cols=128, noisy=False,
                              enable_sr=True, sr_nr=2, sr_direction="both")
        matcher.store(dataset.segments)
        outcome = matcher.match(dataset.reads[0].read.codes, 4)
        assert outcome.n_searches == 5

    def test_sr_or_semantics_recovers_rotation(self, dataset):
        """A read that only matches when rotated: SR must find it."""
        segment = dataset.segments[3]
        rotated_read = np.roll(segment, 1)
        plain = EdamMatcher(rows=16, cols=128, noisy=False)
        plain.store(dataset.segments)
        with_sr = EdamMatcher(rows=16, cols=128, noisy=False,
                              enable_sr=True)
        with_sr.store(dataset.segments)
        assert not plain.match(rotated_read, 0).decisions[3]
        assert with_sr.match(rotated_read, 0).decisions[3]

    def test_matches_origin_like_asmcap_plain(self, dataset):
        """Noiseless EDAM and noiseless ASMCap agree digitally."""
        from repro.core.matcher import AsmCapMatcher, MatcherConfig
        edam = EdamMatcher(rows=16, cols=128, noisy=False)
        edam.store(dataset.segments)
        asmcap_array = CamArray(rows=16, cols=128, domain="charge",
                                noisy=False)
        asmcap_array.store(dataset.segments)
        asmcap = AsmCapMatcher(asmcap_array, dataset.model,
                               MatcherConfig.plain())
        for record in dataset.reads:
            e = edam.match(record.read.codes, 6).decisions
            a = asmcap.match(record.read.codes, 6).decisions
            assert np.array_equal(e, a)


class TestCostModel:
    def test_energy_matches_closed_form_at_typical_activity(self):
        energy = edam_search_energy_per_array()
        assert energy > 0

    def test_issue_period_consistent_with_cell_power(self):
        period = edam_issue_period_ns()
        energy = edam_search_energy_per_array()
        implied_power = energy / (period * 1e-9)
        anchor = constants.EDAM_CELL_POWER_UW * 1e-6 * 256 * 256
        assert implied_power == pytest.approx(anchor)

    def test_edam_slower_than_asmcap(self):
        from repro.arch.power import steady_state_search_period_ns
        ratio = edam_issue_period_ns() / steady_state_search_period_ns()
        # The paper's w/o-strategy speedup over EDAM is 2.8x.
        assert 2.0 <= ratio <= 3.5

    def test_invalid_fraction(self):
        with pytest.raises(CamConfigError):
            edam_search_energy_per_array(mismatch_fraction=1.5)
