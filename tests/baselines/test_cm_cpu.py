"""Tests for the CM-CPU baseline."""

from __future__ import annotations

import pytest

from repro.baselines.cm_cpu import CmCpuBaseline
from repro.distance.edit_distance import edit_distance
from repro.errors import ThresholdError
from repro.genome.generator import generate_reference
from repro.genome.sequence import DnaSequence


class TestFunctional:
    def test_exact_decision(self):
        baseline = CmCpuBaseline()
        a = DnaSequence("ACGTACGTAC")
        b = DnaSequence("ACGAACGTAC")
        outcome = baseline.match(a, b, threshold=1)
        assert outcome.distance == edit_distance(a, b)
        assert outcome.decision

    def test_decision_respects_threshold(self):
        baseline = CmCpuBaseline()
        a = DnaSequence("AAAAAAAA")
        b = DnaSequence("TTTTTTTT")
        assert not baseline.match(a, b, threshold=3).decision
        assert baseline.match(a, b, threshold=8).decision

    def test_negative_threshold(self):
        baseline = CmCpuBaseline()
        with pytest.raises(ThresholdError):
            baseline.match(DnaSequence("A"), DnaSequence("A"), -1)


class TestCostModel:
    def test_cell_updates_counted(self):
        baseline = CmCpuBaseline()
        a = generate_reference(50, seed=0)
        b = generate_reference(40, seed=1)
        outcome = baseline.match(a, b, 5)
        assert outcome.cell_updates == 50 * 40

    def test_latency_scales_quadratically(self):
        baseline = CmCpuBaseline()
        assert baseline.read_latency_ns(512) == pytest.approx(
            4 * baseline.read_latency_ns(256)
        )

    def test_energy_is_power_times_time(self):
        baseline = CmCpuBaseline(cell_rate=1e8, power_w=100.0)
        latency_s = baseline.read_latency_ns(256) * 1e-9
        assert baseline.read_energy_joules(256) == pytest.approx(
            latency_s * 100.0
        )

    def test_paper_scale_per_read(self):
        """A 256x256 DP at the calibrated rate lands near 0.8 ms."""
        latency_ms = CmCpuBaseline().read_latency_ns(256) * 1e-6
        assert 0.1 < latency_ms < 10.0

    def test_invalid_parameters(self):
        with pytest.raises(ThresholdError):
            CmCpuBaseline(cell_rate=0.0)
        with pytest.raises(ThresholdError):
            CmCpuBaseline(power_w=-5.0)
        with pytest.raises(ThresholdError):
            CmCpuBaseline().read_latency_ns(0)
