"""Tests for the SaVI seed-and-vote baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.savi import SaviBaseline
from repro.errors import DatasetError, ThresholdError
from repro.genome.edits import ErrorModel
from repro.genome.generator import generate_reference
from repro.genome.reads import ReadSampler


@pytest.fixture(scope="module")
def reference():
    return generate_reference(20_000, seed=90, with_repeats=False)


@pytest.fixture(scope="module")
def savi(reference):
    return SaviBaseline(reference, k=16)


class TestMapping:
    def test_clean_read_maps_to_origin(self, reference, savi):
        read = reference.window(5000, 256)
        outcome = savi.map_read(read)
        assert outcome.mapped
        assert outcome.origin == 5000

    def test_random_read_does_not_map(self, savi, rng):
        from repro.genome.sequence import DnaSequence
        read = DnaSequence(rng.integers(0, 4, 256).astype(np.uint8))
        outcome = savi.map_read(read)
        # A random read shares no 16-mers with the reference (whp).
        assert not outcome.mapped

    def test_mild_errors_still_map(self, reference, savi):
        """Sparse substitutions leave enough intact seeds to vote."""
        sampler = ReadSampler(reference, 256,
                              ErrorModel(substitution=0.005), seed=1)
        mapped = 0
        for record in sampler.sample_batch(20):
            outcome = savi.map_read(record.read)
            if outcome.mapped and abs(outcome.origin - record.origin) <= 3:
                mapped += 1
        assert mapped >= 15

    def test_heavy_errors_break_seeding(self, reference, savi):
        """Dense errors break the exact seeds — SaVI's accuracy loss.

        At 15 % substitutions a 16-mer survives with p = 0.85^16 ~ 7 %,
        so most reads keep fewer than the 2 votes needed to map.
        """
        mild_sampler = ReadSampler(reference, 256,
                                   ErrorModel(substitution=0.005), seed=2)
        heavy_sampler = ReadSampler(reference, 256,
                                    ErrorModel(substitution=0.15), seed=2)
        mild = sum(int(savi.map_read(r.read).mapped)
                   for r in mild_sampler.sample_batch(20))
        heavy = sum(int(savi.map_read(r.read).mapped)
                    for r in heavy_sampler.sample_batch(20))
        assert heavy < mild
        assert heavy <= 12

    def test_short_read_rejected(self, savi):
        from repro.genome.sequence import DnaSequence
        with pytest.raises(DatasetError):
            savi.map_read(DnaSequence("ACGT"))


class TestSegmentDecisions:
    def test_decision_vector_shape(self, reference, savi):
        read = reference.window(256 * 4, 256)
        decisions = savi.decisions_for_segments(read, n_segments=16,
                                                segment_length=256)
        assert decisions.shape == (16,)
        assert decisions[4]
        assert decisions.sum() == 1


class TestCostModel:
    def test_kmers_counted(self, reference, savi):
        read = reference.window(0, 256)
        outcome = savi.map_read(read)
        assert outcome.n_kmers == 256 // 16

    def test_latency_model_matches_functional(self, reference, savi):
        read = reference.window(0, 256)
        outcome = savi.map_read(read)
        assert outcome.latency_ns == pytest.approx(
            savi.read_latency_ns(256)
        )

    def test_energy_positive(self, savi):
        assert savi.read_energy_joules(256) > 0

    def test_invalid_parameters(self, reference):
        with pytest.raises(ThresholdError):
            SaviBaseline(reference, min_votes=0)
        with pytest.raises(ThresholdError):
            SaviBaseline(reference, stride=0)
