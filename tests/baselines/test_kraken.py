"""Tests for the Kraken2-like exact-matching normalizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.kraken import KrakenLikeClassifier
from repro.errors import DatasetError, ThresholdError
from repro.genome.datasets import build_dataset
from repro.genome.sequence import DnaSequence


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("A", n_reads=16, read_length=128, n_segments=16,
                         seed=100)


class TestClassification:
    def test_clean_read_hits_own_segment(self, dataset):
        classifier = KrakenLikeClassifier(dataset.segments, k=31)
        clean_read = DnaSequence(dataset.segments[5])
        outcome = classifier.classify(clean_read)
        assert outcome.decisions[5]
        assert outcome.hit_fractions[5] == pytest.approx(1.0)

    def test_random_read_hits_nothing(self, dataset, rng):
        classifier = KrakenLikeClassifier(dataset.segments, k=31)
        read = DnaSequence(rng.integers(0, 4, 128).astype(np.uint8))
        assert not classifier.classify(read).decisions.any()

    def test_edits_degrade_hit_fraction(self, dataset):
        """Exact matching is brittle: edited reads lose most k-mers."""
        classifier = KrakenLikeClassifier(dataset.segments, k=31)
        fractions = []
        for record in dataset.reads:
            origin = dataset.origin_segment_index(record)
            outcome = classifier.classify(record.read)
            fractions.append(outcome.hit_fractions[origin])
        # Condition A injects ~1.3 edits per 128-base read on average:
        # a single interior edit already kills ~31 of the 98 k-mers
        # (edit-free reads keep fraction 1.0, so check mean and tail).
        assert np.mean(fractions) < 0.95
        assert min(fractions) < 0.8

    def test_classify_batch_matches_scalar(self, dataset):
        """The batch path is the scalar path's implementation — the
        two must agree bit-for-bit, fractions included."""
        classifier = KrakenLikeClassifier(dataset.segments, k=31)
        reads = np.stack([r.read.codes for r in dataset.reads])
        batch = classifier.classify_batch(reads)
        assert batch.decisions.shape == (reads.shape[0],
                                         classifier.n_segments)
        for q, record in enumerate(dataset.reads):
            outcome = classifier.classify(record.read)
            assert np.array_equal(batch.decisions[q], outcome.decisions)
            assert np.array_equal(batch.hit_fractions[q],
                                  outcome.hit_fractions)
            assert batch.n_kmers == outcome.n_kmers

    def test_classify_batch_validation(self, dataset):
        classifier = KrakenLikeClassifier(dataset.segments, k=31)
        with pytest.raises(DatasetError):
            classifier.classify_batch(dataset.segments[0])
        with pytest.raises(DatasetError):
            classifier.classify_batch(
                np.zeros((2, 16), dtype=np.uint8))

    def test_confidence_threshold_applied(self, dataset):
        strict = KrakenLikeClassifier(dataset.segments, k=31,
                                      confidence=0.99)
        lenient = KrakenLikeClassifier(dataset.segments, k=31,
                                       confidence=0.01)
        record = dataset.reads[0]
        assert (lenient.classify(record.read).decisions.sum()
                >= strict.classify(record.read).decisions.sum())


class TestValidation:
    def test_k_longer_than_segment(self, dataset):
        with pytest.raises(DatasetError):
            KrakenLikeClassifier(dataset.segments, k=500)

    def test_bad_confidence(self, dataset):
        with pytest.raises(ThresholdError):
            KrakenLikeClassifier(dataset.segments, confidence=0.0)

    def test_read_shorter_than_k(self, dataset):
        classifier = KrakenLikeClassifier(dataset.segments, k=31)
        with pytest.raises(DatasetError):
            classifier.classify(DnaSequence("ACGT"))

    def test_segment_count(self, dataset):
        classifier = KrakenLikeClassifier(dataset.segments, k=31)
        assert classifier.n_segments == 16
