"""Catalog-served sessions are bit-identical to freshly encoded ones.

The standing contract of the reference store: a mapping session over
a catalog-opened (mmap, ``n_encodes == 0``) reference produces
bit-identical decisions, costs and reports to one over a freshly
encoded reference — on every engine and fan-out, and with **zero**
reference-copy bytes when the process engine boots from store files.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cam.array import StoredReference
from repro.errors import CamConfigError, RefStoreError, ServiceError
from repro.genome.edits import ErrorModel
from repro.parallel import ProcessShardEngine
from repro.refstore import (
    FileReferenceHandle,
    ReferenceCatalog,
    open_stored_reference,
    save_stored_reference,
    slice_stored_reference,
)
from repro.service.frontend import MappingFrontend
from repro.service.stream import StreamingMappingService

THRESHOLD = 8

ENGINES = [
    ("batched", None),
    ("sharded", "thread"),
    ("sharded", "process"),
]


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(11)
    segments = rng.integers(0, 4, size=(48, 80), dtype=np.uint8)
    model = ErrorModel(substitution=0.02, insertion=0.01, deletion=0.01)
    reads = [segments[(i * 5) % 48] for i in range(25)]
    return segments, model, reads


@pytest.fixture(scope="module")
def catalog(workload, tmp_path_factory):
    segments, _, _ = workload
    root = tmp_path_factory.mktemp("catalog")
    rng = np.random.default_rng(5)
    other = rng.integers(0, 4, size=(32, 80), dtype=np.uint8)
    with ReferenceCatalog() as cat:
        cat.store("main", StoredReference.encode(segments),
                  root / "main.asmcap")
        cat.store("other", StoredReference.encode(other),
                  root / "other.asmcap")
        yield cat


def _reports_identical(a, b) -> None:
    assert a.n_reads == b.n_reads
    assert a.n_mapped == b.n_mapped
    assert a.total_energy_joules == b.total_energy_joules
    assert a.total_latency_ns == b.total_latency_ns
    assert ([m.matched_rows for m in a.mappings]
            == [m.matched_rows for m in b.mappings])
    assert ([m.outcome.n_searches for m in a.mappings]
            == [m.outcome.n_searches for m in b.mappings])


class TestStreamingService:
    def _run(self, source, workload, engine, shard_engine,
             catalog=None):
        _, model, reads = workload
        with StreamingMappingService(
                source, model, threshold=THRESHOLD, engine=engine,
                n_shards=(2 if engine == "sharded" else None),
                micro_batch=4, seed=3, shard_engine=shard_engine,
                catalog=catalog) as service:
            service.submit_many(reads)
            return service.drain()

    @pytest.mark.parametrize("engine,shard_engine", ENGINES)
    def test_catalog_session_matches_fresh_encode(self, workload,
                                                  catalog, engine,
                                                  shard_engine):
        segments = workload[0]
        fresh = self._run(segments, workload, engine, shard_engine)
        served = self._run("main", workload, engine, shard_engine,
                           catalog=catalog)
        _reports_identical(served, fresh)
        assert catalog.stats().pinned_count == 0  # close released it

    @pytest.mark.parametrize("engine,shard_engine", ENGINES)
    def test_stored_reference_matches_fresh_encode(self, workload,
                                                   tmp_path, engine,
                                                   shard_engine):
        segments = workload[0]
        path = tmp_path / "ref.asmcap"
        save_stored_reference(path, StoredReference.encode(segments))
        fresh = self._run(segments, workload, engine, shard_engine)
        with open_stored_reference(path) as mapped:
            served = self._run(mapped.reference, workload, engine,
                               shard_engine)
            assert mapped.reference.n_encodes == 0
        _reports_identical(served, fresh)

    def test_name_without_catalog_rejected(self, workload):
        _, model, _ = workload
        with pytest.raises(CamConfigError, match="needs catalog="):
            StreamingMappingService("main", model, threshold=THRESHOLD)

    def test_catalog_without_name_rejected(self, workload, catalog):
        segments, model, _ = workload
        with pytest.raises(CamConfigError, match="reference name"):
            StreamingMappingService(segments, model,
                                    threshold=THRESHOLD,
                                    catalog=catalog)

    def test_unknown_name_surfaces_catalog_error(self, workload,
                                                 catalog):
        _, model, _ = workload
        with pytest.raises(RefStoreError, match="ghost"):
            StreamingMappingService("ghost", model, threshold=THRESHOLD,
                                    catalog=catalog)
        assert catalog.stats().pinned_count == 0

    def test_unsealed_stored_reference_rejected(self, workload):
        _, model, _ = workload
        with pytest.raises(CamConfigError, match="sealed"):
            StreamingMappingService(StoredReference(rows=4, cols=8),
                                    model, threshold=THRESHOLD)


class TestProcessEngineZeroCopy:
    def test_file_backed_shards_boot_without_copies(self, workload,
                                                    tmp_path):
        """The acceptance criterion: booting the process engine from a
        store file moves zero reference bytes — no shared-memory
        segment is ever created, and no worker runs an encode pass."""
        segments, model, reads = workload
        path = tmp_path / "ref.asmcap"
        save_stored_reference(path, StoredReference.encode(segments))
        with open_stored_reference(path) as mapped:
            shards = slice_stored_reference(mapped.reference,
                                            [(0, 24), (24, 48)])
            assert all(isinstance(s.source, FileReferenceHandle)
                       for s in shards)
            with ProcessShardEngine(shards, n_workers=2) as engine:
                engine.start()
                assert engine.shared_nbytes == 0
                assert engine.worker_encode_counts() == (0, 0)

        with StreamingMappingService(
                segments, model, threshold=THRESHOLD, engine="sharded",
                n_shards=2, micro_batch=4, seed=3,
                shard_engine="process") as service:
            service.submit_many(reads)
            fresh = service.drain()
        with open_stored_reference(path) as mapped:
            with StreamingMappingService(
                    mapped.reference, model, threshold=THRESHOLD,
                    engine="sharded", n_shards=2, micro_batch=4,
                    seed=3, shard_engine="process") as service:
                service.submit_many(reads)
                served = service.drain()
                engine = service.pipeline.process_engine()
                assert engine.shared_nbytes == 0
                assert engine.worker_encode_counts() == tuple(
                    0 for _ in range(engine.n_workers))
        _reports_identical(served, fresh)

    def test_memory_backed_shards_still_share(self, workload):
        # The shared-memory fallback stays available for references
        # that never touched disk.
        segments, _, _ = workload
        reference = StoredReference.encode(segments)
        shards = slice_stored_reference(reference, [(0, 24), (24, 48)])
        assert all(s.source is None for s in shards)
        with ProcessShardEngine(shards, n_workers=2) as engine:
            engine.start()
            assert engine.shared_nbytes > 0
            assert engine.worker_encode_counts() == (0, 0)


class TestFrontend:
    def _base_report(self, workload, engine, shard_engine):
        segments, model, reads = workload
        with MappingFrontend(
                segments, model, engine=engine,
                n_shards=(2 if engine == "sharded" else None),
                shard_engine=shard_engine) as frontend:
            session = frontend.session(threshold=THRESHOLD, seed=3,
                                       micro_batch=4)
            session.submit_many(reads)
            return session.close()

    @pytest.mark.parametrize("engine,shard_engine", ENGINES)
    def test_catalog_sessions_match_fresh_encode(self, workload,
                                                 catalog, engine,
                                                 shard_engine):
        _, model, reads = workload
        fresh = self._base_report(workload, engine, shard_engine)
        with MappingFrontend(
                None, model, engine=engine,
                n_shards=(2 if engine == "sharded" else None),
                shard_engine=shard_engine, catalog=catalog) as frontend:
            main = frontend.session(threshold=THRESHOLD, seed=3,
                                    micro_batch=4, reference="main")
            other = frontend.session(threshold=THRESHOLD, seed=3,
                                     micro_batch=4, reference="other")
            for read in reads:
                main.submit(read)
                other.submit(read)
            served = main.close()
            other_report = other.close()
            assert frontend.encode_count() == 0
            assert frontend.cols is None
            assert frontend.catalog is catalog
        _reports_identical(served, fresh)
        # The tenant on the other reference ran its own geometry.
        assert other_report.n_reads == len(reads)
        assert catalog.stats().pinned_count == 0

    def test_two_tenants_share_one_opened_reference(self, workload,
                                                    catalog):
        _, model, reads = workload
        before = catalog.stats()
        with MappingFrontend(None, model, engine="sharded", n_shards=2,
                             catalog=catalog) as frontend:
            first = frontend.session(threshold=THRESHOLD, seed=3,
                                     micro_batch=4, reference="main")
            second = frontend.session(threshold=THRESHOLD, seed=11,
                                      micro_batch=5, reference="main")
            first.submit_many(reads)
            second.submit_many(reads[:13])
            first.close()
            second.close()
            shards = frontend.stored_references
            assert len(shards) == 2  # one open, one slice pass
            assert all(s.n_encodes == 0 for s in shards)
        after = catalog.stats()
        # Both sessions rode one borrow: exactly one open (hit or
        # miss), not two.
        assert (after.hits + after.misses
                - before.hits - before.misses) == 1
        assert after.pinned_count == 0

    def test_catalog_frontend_rejects_segments(self, workload, catalog):
        segments, model, _ = workload
        with pytest.raises(CamConfigError, match="construction-time"):
            MappingFrontend(segments, model, catalog=catalog)
        with pytest.raises(CamConfigError, match="segments is required"):
            MappingFrontend(None, model)

    def test_session_reference_knob_validated(self, workload, catalog):
        segments, model, _ = workload
        with MappingFrontend(None, model, catalog=catalog) as frontend:
            with pytest.raises(ServiceError, match="reference=<name>"):
                frontend.session(threshold=THRESHOLD)
            with pytest.raises(RefStoreError, match="ghost"):
                frontend.session(threshold=THRESHOLD, reference="ghost")
        with MappingFrontend(segments, model) as frontend:
            with pytest.raises(ServiceError, match="catalog frontend"):
                frontend.session(threshold=THRESHOLD, reference="main")

    def test_close_releases_pins_but_not_catalog(self, workload,
                                                 catalog):
        _, model, reads = workload
        frontend = MappingFrontend(None, model, catalog=catalog)
        session = frontend.session(threshold=THRESHOLD, seed=3,
                                   reference="main")
        session.submit_many(reads[:5])
        session.close()
        assert catalog.stats().pinned_count == 1  # frontend still pins
        frontend.close()
        assert catalog.stats().pinned_count == 0
        with catalog.borrow("main") as lease:  # catalog stays usable
            assert lease.reference.sealed
