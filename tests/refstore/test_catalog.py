"""Tests for the byte-budgeted, pin-aware reference catalog.

The invariants a multi-tenant service leans on: lazy single opens,
LRU eviction that respects the byte budget, and — above all — that
no sweep or explicit evict ever unmaps a reference while a lease
pins it.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cam.array import StoredReference
from repro.errors import RefStoreError
from repro.refstore import ReferenceCatalog, save_stored_reference


def _reference(seed: int, n_rows: int = 16,
               cols: int = 24) -> StoredReference:
    rng = np.random.default_rng(seed)
    return StoredReference.encode(
        rng.integers(0, 4, size=(n_rows, cols), dtype=np.uint8)
    )


@pytest.fixture()
def catalog(tmp_path):
    """A catalog holding three equal-size references a/b/c."""
    cat = ReferenceCatalog()
    for i, name in enumerate(("a", "b", "c")):
        cat.store(name, _reference(i), tmp_path / f"{name}.asmcap")
    yield cat
    if not cat._closed:
        cat.close()


def _store_size(tmp_path) -> int:
    path = tmp_path / "probe.asmcap"
    return save_stored_reference(path, _reference(99))


class TestRegistration:
    def test_store_then_borrow(self, catalog):
        assert catalog.names() == ("a", "b", "c")
        assert "a" in catalog and "nope" not in catalog
        assert list(catalog) == ["a", "b", "c"]
        with catalog.borrow("a") as lease:
            assert lease.name == "a"
            assert lease.reference.sealed
            assert lease.reference.n_encodes == 0
            assert lease.nbytes > 0

    def test_add_requires_existing_file(self, catalog, tmp_path):
        with pytest.raises(RefStoreError, match="no reference store"):
            catalog.add("d", tmp_path / "missing.asmcap")

    def test_duplicate_names_rejected(self, catalog, tmp_path):
        with pytest.raises(RefStoreError, match="already registered"):
            catalog.add("a", tmp_path / "a.asmcap")
        with pytest.raises(RefStoreError, match="already registered"):
            catalog.store("a", _reference(9), tmp_path / "a2.asmcap")

    def test_unknown_name_lists_registered(self, catalog):
        with pytest.raises(RefStoreError, match="'a', 'b', 'c'"):
            catalog.borrow("ghost")
        with pytest.raises(RefStoreError, match="unknown reference"):
            catalog.evict("ghost")

    def test_registration_is_lazy(self, catalog):
        assert catalog.resident_names() == ()
        assert catalog.stats().misses == 0

    def test_corrupt_file_fails_on_borrow(self, tmp_path):
        path = tmp_path / "bad.asmcap"
        save_stored_reference(path, _reference(1))
        with open(path, "r+b") as handle:
            handle.write(b"XXXXXXXX")
        cat = ReferenceCatalog()
        cat.add("bad", path)  # registration validates existence only
        with pytest.raises(RefStoreError, match="bad magic"):
            cat.borrow("bad")
        cat.close()


class TestStats:
    def test_hit_miss_accounting(self, catalog):
        catalog.borrow("a").close()
        catalog.borrow("a").close()
        catalog.borrow("b").close()
        stats = catalog.stats()
        assert stats.misses == 2      # first opens of a and b
        assert stats.hits == 1        # second borrow of a
        assert stats.resident_count == 2
        assert stats.resident_bytes > 0
        assert stats.pinned_count == 0
        assert stats.byte_budget is None
        assert stats.open_seconds_total >= stats.open_seconds_max > 0.0

    def test_failed_opens_counted_separately_from_misses(
            self, catalog, tmp_path):
        # Regression: a borrow whose open raises used to look like a
        # cheap miss-free catalog; it must count as an open failure,
        # and never as a miss (the caller got an error, not a mapping).
        path = tmp_path / "bad.asmcap"
        save_stored_reference(path, _reference(7))
        with open(path, "r+b") as handle:
            handle.write(b"XXXXXXXX")
        catalog.add("bad", path)
        for _ in range(2):
            with pytest.raises(RefStoreError, match="bad magic"):
                catalog.borrow("bad")
        stats = catalog.stats()
        assert stats.open_failures == 2
        assert stats.misses == 0
        assert stats.hits == 0
        # Failed opens never touch the timed miss path.
        assert stats.open_seconds_total == 0.0
        # A later healthy borrow is an ordinary miss again.
        catalog.borrow("a").close()
        stats = catalog.stats()
        assert stats.open_failures == 2
        assert stats.misses == 1

    def test_open_failures_zero_on_healthy_catalog(self, catalog):
        catalog.borrow("a").close()
        catalog.borrow("a").close()
        assert catalog.stats().open_failures == 0

    def test_pinned_count_follows_leases(self, catalog):
        lease_a = catalog.borrow("a")
        lease_a2 = catalog.borrow("a")
        lease_b = catalog.borrow("b")
        assert catalog.stats().pinned_count == 2
        lease_a.close()
        assert catalog.stats().pinned_count == 2  # a still pinned once
        lease_a2.close()
        lease_b.close()
        assert catalog.stats().pinned_count == 0


class TestEviction:
    def test_explicit_evict_unmaps(self, catalog):
        catalog.borrow("a").close()
        assert catalog.evict("a") is True
        assert catalog.resident_names() == ()
        assert catalog.evict("a") is False  # already out
        assert catalog.stats().evictions == 1
        # Evicted references reopen on the next borrow.
        with catalog.borrow("a") as lease:
            assert lease.reference.sealed
        assert catalog.stats().misses == 2

    def test_evict_refuses_pinned(self, catalog):
        with catalog.borrow("a"):
            with pytest.raises(RefStoreError,
                               match="pinned by 1 open lease"):
                catalog.evict("a")
        assert catalog.evict("a") is True  # lease closed: now fine

    def test_budget_sweeps_lru(self, tmp_path):
        size = _store_size(tmp_path)
        cat = ReferenceCatalog(byte_budget=2 * size)
        for i, name in enumerate(("a", "b", "c")):
            cat.store(name, _reference(i), tmp_path / f"{name}.asmcap")
        cat.borrow("a").close()
        cat.borrow("b").close()
        assert set(cat.resident_names()) == {"a", "b"}
        # Third open exceeds the budget: the LRU entry (a) goes.
        cat.borrow("c").close()
        assert set(cat.resident_names()) == {"b", "c"}
        # Touching b makes c the LRU victim of the next sweep.
        cat.borrow("b").close()
        cat.borrow("a").close()
        assert set(cat.resident_names()) == {"a", "b"}
        assert cat.stats().evictions == 2
        cat.close()

    def test_sweep_never_unmaps_pinned(self, tmp_path):
        size = _store_size(tmp_path)
        cat = ReferenceCatalog(byte_budget=size)  # fits exactly one
        for i, name in enumerate(("a", "b")):
            cat.store(name, _reference(i), tmp_path / f"{name}.asmcap")
        with cat.borrow("a") as lease_a:
            # b's open busts the budget, but a is pinned: the budget
            # is temporarily exceeded rather than the pin broken.
            with cat.borrow("b") as lease_b:
                assert set(cat.resident_names()) == {"a", "b"}
                assert cat.stats().resident_bytes > size
                assert lease_a.reference.sealed
                assert lease_b.reference.sealed
            # b unpinned: the deferred sweep now evicts it (LRU).
            assert cat.resident_names() == ("a",)
        cat.close()

    def test_borrowed_arrays_survive_pressure(self, tmp_path):
        size = _store_size(tmp_path)
        cat = ReferenceCatalog(byte_budget=size)
        for i, name in enumerate(("a", "b", "c")):
            cat.store(name, _reference(i), tmp_path / f"{name}.asmcap")
        with cat.borrow("a") as lease:
            before = lease.reference.encoded().segments.copy()
            cat.borrow("b").close()
            cat.borrow("c").close()
            np.testing.assert_array_equal(
                before, lease.reference.encoded().segments)
        cat.close()

    def test_bad_budget_rejected(self):
        with pytest.raises(RefStoreError, match="byte_budget"):
            ReferenceCatalog(byte_budget=0)
        with pytest.raises(RefStoreError, match="byte_budget"):
            ReferenceCatalog(byte_budget=-5)


class TestLifecycle:
    def test_lease_close_is_idempotent(self, catalog):
        lease = catalog.borrow("a")
        lease.close()
        lease.close()
        assert lease.closed
        with pytest.raises(RefStoreError, match="closed"):
            lease.reference

    def test_close_refuses_open_leases(self, catalog):
        lease = catalog.borrow("b")
        with pytest.raises(RefStoreError, match=r"\['b'\]"):
            catalog.close()
        lease.close()
        catalog.close()
        with pytest.raises(RefStoreError, match="closed"):
            catalog.borrow("a")
        with pytest.raises(RefStoreError, match="closed"):
            catalog.add("z", "anywhere")
        catalog.close()  # idempotent

    def test_context_manager(self, tmp_path):
        with ReferenceCatalog() as cat:
            cat.store("a", _reference(0), tmp_path / "a.asmcap")
            cat.borrow("a").close()
        with pytest.raises(RefStoreError, match="closed"):
            cat.borrow("a")


class TestConcurrency:
    def test_racing_borrows_under_pressure(self, tmp_path):
        """Threads hammer borrow/use/release against a tight budget.

        Every lease must keep valid arrays for its whole lifetime no
        matter how often the sweeper evicts around it.
        """
        size = _store_size(tmp_path)
        cat = ReferenceCatalog(byte_budget=size)  # max pressure
        expected = {}
        for i, name in enumerate(("a", "b", "c", "d")):
            reference = _reference(i)
            cat.store(name, reference, tmp_path / f"{name}.asmcap")
            expected[name] = reference.encoded().segments.copy()
        failures: "list[BaseException]" = []

        def worker(worker_index: int) -> None:
            names = ("a", "b", "c", "d")
            try:
                for round_index in range(25):
                    name = names[(worker_index + round_index) % 4]
                    with cat.borrow(name) as lease:
                        np.testing.assert_array_equal(
                            lease.reference.encoded().segments,
                            expected[name],
                        )
            except BaseException as exc:  # pragma: no cover - fail path
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        stats = cat.stats()
        assert stats.pinned_count == 0
        assert stats.hits + stats.misses == 8 * 25
        assert stats.evictions > 0  # the budget actually bit
        cat.close()


@pytest.mark.slow
class TestCatalogSoak:
    def test_churn_with_live_sessions(self, tmp_path):
        """Nightly soak: tenants boot mapping services off a
        budget-squeezed catalog for many rounds while the sweeper
        evicts and reopens around them.  Every boot must reproduce
        its reference baseline bit for bit — open/evict/re-open
        churn is invisible to results.
        """
        from repro.genome.edits import ErrorModel
        from repro.service.stream import StreamingMappingService

        names = ("a", "b", "c", "d")
        model = ErrorModel(substitution=0.02, insertion=0.01,
                           deletion=0.01)
        size = _store_size(tmp_path)
        cat = ReferenceCatalog(byte_budget=size)  # max churn
        reads = {}
        baselines = {}
        for i, name in enumerate(names):
            rng = np.random.default_rng(100 + i)
            segments = rng.integers(0, 4, size=(16, 24), dtype=np.uint8)
            cat.store(name, StoredReference.encode(segments),
                      tmp_path / f"{name}.asmcap")
            reads[name] = [segments[(j * 3) % 16] for j in range(8)]
            with StreamingMappingService(
                    segments, model, threshold=4, micro_batch=3,
                    seed=5) as service:
                service.submit_many(reads[name])
                baselines[name] = service.drain()
        failures: "list[BaseException]" = []

        def identical(a, b) -> bool:
            return (
                (a.n_reads, a.n_mapped, a.total_energy_joules,
                 a.total_latency_ns)
                == (b.n_reads, b.n_mapped, b.total_energy_joules,
                    b.total_latency_ns)
                and [m.matched_rows for m in a.mappings]
                == [m.matched_rows for m in b.mappings]
            )

        def tenant(worker_index: int) -> None:
            try:
                for round_index in range(40):
                    name = names[(worker_index + round_index) % 4]
                    with StreamingMappingService(
                            name, model, threshold=4, micro_batch=3,
                            seed=5, catalog=cat) as service:
                        service.submit_many(reads[name])
                        report = service.drain()
                    assert identical(report, baselines[name]), name
            except BaseException as exc:  # pragma: no cover - fail path
                failures.append(exc)

        threads = [threading.Thread(target=tenant, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        stats = cat.stats()
        assert stats.pinned_count == 0
        assert stats.hits + stats.misses == 6 * 40
        assert stats.evictions > 0  # churn actually happened
        cat.close()
