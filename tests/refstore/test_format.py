"""Tests for the on-disk stored-reference container.

Mirror of ``tests/parallel/test_shm.py`` for the restart boundary:
saving and mapping must be a bit-exact, zero-copy, encode-free
roundtrip, and every corrupted / truncated / foreign / stale file
must fail loudly with :class:`~repro.errors.RefStoreError` — never
with silently wrong mismatch counts.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cam.array import StoredReference
from repro.errors import CamConfigError, RefStoreError
from repro.kernels import ENCODED_REFERENCE_FIELDS, encoded_reference_arrays
from repro.parallel.header import HEADER, aligned
from repro.refstore import (
    REFSTORE_MAGIC,
    FileReferenceHandle,
    open_stored_reference,
    save_stored_reference,
    slice_stored_reference,
)


@pytest.fixture(scope="module")
def reference() -> StoredReference:
    rng = np.random.default_rng(42)
    segments = rng.integers(0, 4, size=(32, 96), dtype=np.uint8)
    return StoredReference.encode(segments)


@pytest.fixture()
def store(tmp_path, reference) -> str:
    path = str(tmp_path / "ref.asmcap")
    save_stored_reference(path, reference)
    return path


def _file_layout(path: str) -> "tuple[int, int]":
    """``(payload_start, payload_length)`` parsed from a store file."""
    with open(path, "rb") as handle:
        header = handle.read(HEADER.size)
    _, _, meta_length, _, _, payload_length = HEADER.unpack_from(header, 0)
    return aligned(HEADER.size + meta_length), payload_length


def _corrupt(path: str, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ 0xFF]))


def _assert_bit_exact(ours: StoredReference, theirs: StoredReference):
    original = dict(encoded_reference_arrays(theirs.encoded()))
    mirrored = dict(encoded_reference_arrays(ours.encoded()))
    assert tuple(mirrored) == ENCODED_REFERENCE_FIELDS
    for name in ENCODED_REFERENCE_FIELDS:
        assert original[name].dtype == mirrored[name].dtype
        np.testing.assert_array_equal(original[name], mirrored[name])


class TestRoundtrip:
    def test_open_is_bit_exact(self, store, reference):
        with open_stored_reference(store) as mapped:
            _assert_bit_exact(mapped.reference, reference)

    def test_opened_reference_is_sealed_without_encoding(self, store):
        with open_stored_reference(store) as mapped:
            opened = mapped.reference
            assert opened.sealed
            assert opened.n_encodes == 0
            opened.encoded()
            # Reading the cached encoding must never count as an
            # encode pass — the warm-boot encode-free evidence.
            assert opened.n_encodes == 0

    def test_opened_views_are_read_only(self, store):
        with open_stored_reference(store) as mapped:
            arrays = dict(encoded_reference_arrays(
                mapped.reference.encoded()
            ))
            for name in ENCODED_REFERENCE_FIELDS:
                with pytest.raises(ValueError):
                    arrays[name].flat[0] = 0

    def test_opened_reference_carries_file_source(self, store):
        with open_stored_reference(store) as mapped:
            source = mapped.reference.source
            assert isinstance(source, FileReferenceHandle)
            assert source.path == store
            assert mapped.path == store

    def test_accepts_handle_and_pathlike(self, store, tmp_path):
        with open_stored_reference(FileReferenceHandle(store)) as mapped:
            assert mapped.reference.sealed
        with open_stored_reference(tmp_path / "ref.asmcap") as mapped:
            assert mapped.reference.sealed

    def test_save_returns_file_size(self, tmp_path, reference):
        import os

        path = str(tmp_path / "sized.asmcap")
        nbytes = save_stored_reference(path, reference)
        assert nbytes == os.path.getsize(path)
        with open_stored_reference(path) as mapped:
            assert mapped.nbytes == nbytes

    def test_save_overwrites_atomically(self, tmp_path):
        rng = np.random.default_rng(7)
        path = str(tmp_path / "ref.asmcap")
        first = StoredReference.encode(
            rng.integers(0, 4, size=(8, 16), dtype=np.uint8))
        second = StoredReference.encode(
            rng.integers(0, 4, size=(12, 20), dtype=np.uint8))
        save_stored_reference(path, first)
        save_stored_reference(path, second)
        with open_stored_reference(path) as mapped:
            _assert_bit_exact(mapped.reference, second)


class TestSlicing:
    def test_slice_matches_fresh_encode(self, store):
        rng = np.random.default_rng(42)
        segments = rng.integers(0, 4, size=(32, 96), dtype=np.uint8)
        with open_stored_reference(store) as mapped:
            shards = slice_stored_reference(
                mapped.reference, [(0, 10), (10, 25), (25, 32)]
            )
            for shard, (start, stop) in zip(
                    shards, [(0, 10), (10, 25), (25, 32)], strict=True):
                assert shard.sealed
                assert shard.n_encodes == 0
                _assert_bit_exact(
                    shard, StoredReference.encode(segments[start:stop])
                )

    def test_shard_sources_name_file_and_range(self, store):
        with open_stored_reference(store) as mapped:
            shards = slice_stored_reference(mapped.reference,
                                            [(4, 12), (12, 32)])
        assert [shard.source for shard in shards] == [
            FileReferenceHandle(store, 4, 12),
            FileReferenceHandle(store, 12, 32),
        ]

    def test_handle_range_opens_the_shard(self, store):
        with open_stored_reference(store) as mapped:
            shard = slice_stored_reference(mapped.reference,
                                           [(6, 21)])[0]
            with open_stored_reference(shard.source) as remote:
                _assert_bit_exact(remote.reference, shard)
                assert remote.reference.n_encodes == 0

    def test_nested_slice_composes_file_offsets(self, store):
        with open_stored_reference(store) as mapped:
            outer = slice_stored_reference(mapped.reference,
                                           [(8, 28)])[0]
            inner = slice_stored_reference(outer, [(2, 9)])[0]
            assert inner.source == FileReferenceHandle(store, 10, 17)
            with open_stored_reference(inner.source) as remote:
                _assert_bit_exact(remote.reference, inner)

    def test_memoryless_slice_has_no_source(self, reference):
        shard = slice_stored_reference(reference, [(0, 8)])[0]
        assert shard.source is None

    def test_bad_ranges_rejected(self, store):
        with open_stored_reference(store) as mapped:
            with pytest.raises(RefStoreError):
                slice_stored_reference(mapped.reference, [(10, 5)])
            with pytest.raises(RefStoreError):
                slice_stored_reference(mapped.reference, [(0, 1000)])

    def test_unsealed_reference_rejected(self):
        with pytest.raises(RefStoreError, match="sealed"):
            slice_stored_reference(StoredReference(rows=4, cols=8),
                                   [(0, 2)])


class TestSavePreconditions:
    def test_unsealed_reference_rejected(self, tmp_path):
        with pytest.raises(RefStoreError, match="sealed"):
            save_stored_reference(tmp_path / "x.asmcap",
                                  StoredReference(rows=4, cols=8))

    def test_refstore_error_is_a_cam_config_error(self):
        # One except clause catches the whole config-fault family.
        assert issubclass(RefStoreError, CamConfigError)


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(RefStoreError, match="no reference store"):
            open_stored_reference(tmp_path / "absent.asmcap")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.asmcap"
        path.write_bytes(b"")
        with pytest.raises(RefStoreError, match="could not map"):
            open_stored_reference(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "stub.asmcap"
        path.write_bytes(b"\x00" * 4)
        with pytest.raises(RefStoreError, match="smaller than a header"):
            open_stored_reference(path)

    def test_bad_magic(self, store):
        _corrupt(store, 0)
        with pytest.raises(RefStoreError, match="bad magic"):
            open_stored_reference(store)

    def test_shm_segment_magic_is_foreign(self, store):
        # A shared-memory image is NOT a store file: same codec,
        # different magic, and the open must say so.
        with open(store, "r+b") as handle:
            handle.write(b"ASMCAPSM")
        with pytest.raises(RefStoreError, match="bad magic"):
            open_stored_reference(store)

    def test_version_skew(self, store):
        # The version field sits right after the 8-byte magic.
        _corrupt(store, len(REFSTORE_MAGIC))
        with pytest.raises(RefStoreError, match="header version"):
            open_stored_reference(store)

    def test_meta_corruption(self, store):
        _corrupt(store, HEADER.size)
        with pytest.raises(RefStoreError, match="meta checksum"):
            open_stored_reference(store)

    def test_payload_corruption(self, store):
        payload_start, payload_length = _file_layout(store)
        assert payload_length > 0
        _corrupt(store, payload_start + payload_length - 1)
        with pytest.raises(RefStoreError, match="payload checksum"):
            open_stored_reference(store)

    def test_truncated_payload(self, store):
        # Chop the file mid-payload: the header's promised length no
        # longer fits (a torn copy / partial download).
        payload_start, payload_length = _file_layout(store)
        with open(store, "r+b") as handle:
            handle.truncate(payload_start + payload_length // 2)
        with pytest.raises(RefStoreError, match="truncated"):
            open_stored_reference(store)

    def test_payload_length_lie(self, store):
        # Promise more bytes than the file holds.
        with open(store, "r+b") as handle:
            handle.seek(HEADER.size - 8)
            handle.write(struct.pack("<Q", 1 << 62))
        with pytest.raises(RefStoreError, match="truncated"):
            open_stored_reference(store)

    def test_error_names_the_file(self, store):
        _corrupt(store, 0)
        with pytest.raises(RefStoreError, match="ref.asmcap"):
            open_stored_reference(store)


class TestLifecycle:
    def test_close_is_idempotent_and_invalidates(self, store):
        mapped = open_stored_reference(store)
        assert not mapped.closed
        assert mapped.nbytes > 0
        mapped.close()
        mapped.close()
        assert mapped.closed
        assert mapped.nbytes == 0
        with pytest.raises(RefStoreError, match="closed"):
            mapped.reference

    def test_close_never_deletes_the_file(self, store):
        import os

        with open_stored_reference(store):
            pass
        assert os.path.isfile(store)
        with open_stored_reference(store) as mapped:
            assert mapped.reference.sealed

    def test_independent_opens_share_the_file(self, store):
        first = open_stored_reference(store)
        second = open_stored_reference(store)
        np.testing.assert_array_equal(
            first.reference.encoded().segments,
            second.reference.encoded().segments,
        )
        first.close()
        # The second mapping is untouched by the first's close.
        assert second.reference.sealed
        second.close()


class TestRoundtripProperty:
    @given(
        n_rows=st.integers(min_value=1, max_value=24),
        cols=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_save_open_roundtrip(self, tmp_path_factory, n_rows, cols,
                                 seed):
        rng = np.random.default_rng(seed)
        segments = rng.integers(0, 4, size=(n_rows, cols),
                                dtype=np.uint8)
        reference = StoredReference.encode(segments)
        path = tmp_path_factory.mktemp("prop") / "ref.asmcap"
        save_stored_reference(path, reference)
        with open_stored_reference(path) as mapped:
            _assert_bit_exact(mapped.reference, reference)
            assert mapped.reference.n_encodes == 0
            assert mapped.reference.n_segments == n_rows
            assert mapped.reference.cols == cols
