"""Immutable DNA sequence type backed by a 2-bit code array.

:class:`DnaSequence` is the currency of the whole library: the genome
generator produces one, edit injection transforms one into another, CAM
arrays store rows of them, and the distance kernels consume their code
arrays directly (zero-copy) for speed.
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

from repro.errors import SequenceError
from repro.genome import alphabet


class DnaSequence:
    """An immutable DNA sequence.

    Instances wrap a read-only ``uint8`` numpy array of 2-bit base codes.
    Construction validates the alphabet once; afterwards every operation
    can trust the invariant ``codes ∈ {0,1,2,3}``.

    Parameters
    ----------
    data:
        Either a base string over ``ACGT`` or a numpy array of codes.

    Examples
    --------
    >>> s = DnaSequence("GATTACA")
    >>> len(s), str(s[1:4])
    (7, 'ATT')
    >>> s.reverse_complement()
    DnaSequence('TGTAATC')
    """

    __slots__ = ("_codes",)

    def __init__(self, data: Union[str, np.ndarray, "DnaSequence"]):
        if isinstance(data, DnaSequence):
            codes = data._codes
        elif isinstance(data, str):
            codes = alphabet.encode(data)
        else:
            codes = np.asarray(data, dtype=np.uint8)
            if codes.ndim != 1:
                raise SequenceError(
                    f"sequence codes must be 1-D, got shape {codes.shape}"
                )
            if codes.size and int(codes.max()) >= alphabet.ALPHABET_SIZE:
                raise SequenceError("sequence codes must be in 0..3")
            codes = codes.copy()
        codes.setflags(write=False)
        self._codes = codes

    # -- core protocol ------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """The read-only ``uint8`` code array (no copy)."""
        return self._codes

    def __len__(self) -> int:
        return int(self._codes.size)

    def __str__(self) -> str:
        return alphabet.decode(self._codes)

    def __repr__(self) -> str:
        text = str(self)
        if len(text) > 40:
            text = text[:37] + "..."
        return f"DnaSequence({text!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DnaSequence):
            return np.array_equal(self._codes, other._codes)
        if isinstance(other, str):
            return str(self) == other.upper()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._codes.tobytes())

    def __iter__(self) -> Iterator[str]:
        for code in self._codes:
            yield alphabet.CODE_TO_BASE[int(code)]

    def __getitem__(self, item: Union[int, slice]) -> "DnaSequence":
        if isinstance(item, int):
            return DnaSequence(self._codes[item : item + 1 or None])
        if isinstance(item, slice):
            return DnaSequence(self._codes[item])
        raise SequenceError(f"indices must be int or slice, not {type(item).__name__}")

    def __add__(self, other: "DnaSequence") -> "DnaSequence":
        if not isinstance(other, DnaSequence):
            return NotImplemented
        return DnaSequence(np.concatenate([self._codes, other._codes]))

    # -- biology helpers ------------------------------------------------

    def complement(self) -> "DnaSequence":
        """Watson-Crick complement (A<->T, C<->G)."""
        return DnaSequence(alphabet.complement_codes(self._codes))

    def reverse_complement(self) -> "DnaSequence":
        """Reverse complement, the opposite strand read 5'->3'."""
        return DnaSequence(alphabet.reverse_complement_codes(self._codes))

    def gc_content(self) -> float:
        """Fraction of bases that are C or G (0.0 for empty sequences)."""
        if not len(self):
            return 0.0
        is_gc = (self._codes == 1) | (self._codes == 2)
        return float(is_gc.mean())

    def base_counts(self) -> dict[str, int]:
        """Counts of each base, keyed ``A``/``C``/``G``/``T``."""
        counts = np.bincount(self._codes, minlength=alphabet.ALPHABET_SIZE)
        return {base: int(counts[code])
                for code, base in enumerate(alphabet.BASES)}

    # -- structural helpers ---------------------------------------------

    def rotate(self, offset: int) -> "DnaSequence":
        """Circularly rotate the sequence.

        Positive *offset* rotates **left** (bases move toward index 0,
        the front bases wrap to the back); negative rotates right.  This
        mirrors the shift-register rotation the TASR strategy performs in
        hardware (Section IV-B).
        """
        if not len(self):
            return self
        offset %= len(self)
        if offset == 0:
            return self
        return DnaSequence(np.roll(self._codes, -offset))

    def window(self, start: int, length: int) -> "DnaSequence":
        """Extract a window, raising if it falls outside the sequence."""
        if start < 0 or length < 0 or start + length > len(self):
            raise SequenceError(
                f"window [{start}, {start + length}) out of range for "
                f"sequence of length {len(self)}"
            )
        return DnaSequence(self._codes[start : start + length])
