"""Mutation-spectrum-aware substitutions (transition/transversion bias).

Real genomes do not substitute uniformly: **transitions** (A<->G,
C<->T, purine<->purine / pyrimidine<->pyrimidine) occur roughly twice
as often as **transversions** in human data (Ti/Tv ~ 2.0-2.1 genome
wide).  The baseline injector draws replacement bases uniformly (the
paper does not specify a spectrum); this module provides the biased
alternative plus measurement utilities, so dataset realism can be
dialled up and its effect on the matcher quantified.

The Ti/Tv ratio is defined as (transition count) / (transversion
count); with uniform replacement it converges to 0.5, because each
base has one transition partner and two transversion partners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EditModelError
from repro.genome import alphabet
from repro.genome.sequence import DnaSequence

#: Transition partner per code: A<->G (0<->2), C<->T (1<->3).
TRANSITION_PARTNER = np.array([2, 3, 0, 1], dtype=np.uint8)

#: The two transversion partners per code.
TRANSVERSION_PARTNERS = {
    0: (1, 3),  # A -> C, T
    1: (0, 2),  # C -> A, G
    2: (1, 3),  # G -> C, T
    3: (0, 2),  # T -> A, G
}


def is_transition(original: int, replacement: int) -> bool:
    """Whether a substitution is a transition."""
    if original == replacement:
        raise EditModelError("not a substitution: bases are equal")
    return int(TRANSITION_PARTNER[original]) == int(replacement)


@dataclass(frozen=True)
class MutationSpectrum:
    """Substitution spectrum parameterised by the Ti/Tv ratio.

    Attributes
    ----------
    ti_tv_ratio:
        Target transition/transversion ratio (human ~2.0; uniform
        replacement corresponds to 0.5).
    """

    ti_tv_ratio: float = 2.0

    def __post_init__(self) -> None:
        if self.ti_tv_ratio <= 0:
            raise EditModelError(
                f"ti_tv_ratio must be positive, got {self.ti_tv_ratio}"
            )

    @property
    def transition_probability(self) -> float:
        """P(transition | substitution) implied by the ratio."""
        return self.ti_tv_ratio / (self.ti_tv_ratio + 1.0)

    def replacement(self, original: int, rng: np.random.Generator) -> int:
        """Draw a replacement base according to the spectrum."""
        if not 0 <= original < alphabet.ALPHABET_SIZE:
            raise EditModelError(f"invalid base code {original}")
        if rng.random() < self.transition_probability:
            return int(TRANSITION_PARTNER[original])
        partners = TRANSVERSION_PARTNERS[int(original)]
        return int(partners[rng.integers(0, 2)])

    def substitute(self, sequence: DnaSequence, rate: float,
                   rng: np.random.Generator) -> tuple[DnaSequence, np.ndarray]:
        """Apply spectrum-biased substitutions at a per-base rate.

        Returns the edited sequence and the boolean substitution mask.
        """
        if not 0.0 <= rate < 1.0:
            raise EditModelError(f"rate must be in [0, 1), got {rate}")
        mask = rng.random(len(sequence)) < rate
        codes = sequence.codes.copy()
        for index in np.flatnonzero(mask):
            codes[index] = self.replacement(int(codes[index]), rng)
        return DnaSequence(codes), mask


def measure_ti_tv(original: DnaSequence, edited: DnaSequence) -> float:
    """Measured Ti/Tv ratio between two equal-length sequences.

    Returns ``inf`` when there are transitions but no transversions and
    raises when the sequences are identical (ratio undefined).
    """
    if len(original) != len(edited):
        raise EditModelError("sequences must have equal length")
    differences = np.flatnonzero(original.codes != edited.codes)
    if differences.size == 0:
        raise EditModelError("no substitutions to measure")
    transitions = sum(
        1 for i in differences
        if is_transition(int(original.codes[i]), int(edited.codes[i]))
    )
    transversions = differences.size - transitions
    if transversions == 0:
        return float("inf")
    return transitions / transversions
