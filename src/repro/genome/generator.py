"""Synthetic "human-like" reference genome generator.

The paper evaluates on reads extracted from the NCBI human genome
(Section V-A).  We have no network access, so this module synthesises
references with the statistical features that matter to the experiment:

* **GC bias** — human DNA averages ~41 % GC.
* **Tandem repeats** — short motifs repeated back-to-back (microsatellites),
  which create near-duplicate reference segments and therefore *hard
  negatives* for an approximate matcher.
* **Interspersed repeats** — long motifs (Alu-like, ~300 bp) copied with
  slight divergence to many locations, the dominant repeat class in the
  human genome.

The experiment's decision problem (does segment S match read R within
threshold T?) only depends on the read/edit model and on how similar
*non-origin* segments are to the read, and the repeat machinery controls
exactly that.  Real FASTA references can be substituted at any time via
:mod:`repro.genome.io_fasta`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.genome import alphabet
from repro.genome.sequence import DnaSequence

#: Default GC fraction of the synthetic reference (human genome average).
DEFAULT_GC_CONTENT = 0.41


@dataclass(frozen=True)
class RepeatProfile:
    """Parameters controlling synthetic repeat structure.

    Attributes
    ----------
    tandem_fraction:
        Fraction of the genome covered by tandem repeats.
    tandem_motif_lengths:
        Inclusive range of tandem motif lengths (e.g. 2..6 bp).
    interspersed_fraction:
        Fraction covered by interspersed (Alu-like) repeats.
    interspersed_length:
        Length of the interspersed repeat element.
    interspersed_divergence:
        Per-base substitution probability applied to each inserted copy,
        modelling the sequence divergence of old repeat copies.
    """

    tandem_fraction: float = 0.03
    tandem_motif_lengths: tuple[int, int] = (2, 6)
    interspersed_fraction: float = 0.10
    interspersed_length: int = 300
    interspersed_divergence: float = 0.05

    def validate(self) -> None:
        if not 0.0 <= self.tandem_fraction <= 1.0:
            raise DatasetError("tandem_fraction must be in [0, 1]")
        if not 0.0 <= self.interspersed_fraction <= 1.0:
            raise DatasetError("interspersed_fraction must be in [0, 1]")
        if self.tandem_fraction + self.interspersed_fraction > 0.9:
            raise DatasetError("repeat fractions leave too little unique sequence")
        low, high = self.tandem_motif_lengths
        if not 1 <= low <= high:
            raise DatasetError("tandem_motif_lengths must satisfy 1 <= low <= high")
        if self.interspersed_length < 1:
            raise DatasetError("interspersed_length must be positive")
        if not 0.0 <= self.interspersed_divergence < 1.0:
            raise DatasetError("interspersed_divergence must be in [0, 1)")


@dataclass
class ReferenceGenerator:
    """Seeded generator of synthetic reference genomes.

    Parameters
    ----------
    gc_content:
        Target GC fraction of the random background.
    repeats:
        Repeat structure profile; ``None`` disables repeats entirely
        (pure i.i.d. background, useful in unit tests).
    seed:
        Seed for the internal :class:`numpy.random.Generator`.
    """

    gc_content: float = DEFAULT_GC_CONTENT
    repeats: RepeatProfile | None = field(default_factory=RepeatProfile)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.repeats is not None:
            self.repeats.validate()
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def generate(self, length: int) -> DnaSequence:
        """Generate a reference of exactly *length* bases."""
        if length <= 0:
            raise DatasetError(f"reference length must be positive, got {length}")
        codes = alphabet.random_codes(length, self._rng, self.gc_content)
        if self.repeats is not None:
            codes = self._plant_tandem_repeats(codes, self.repeats)
            codes = self._plant_interspersed_repeats(codes, self.repeats)
        return DnaSequence(codes)

    # ------------------------------------------------------------------
    def _plant_tandem_repeats(self, codes: np.ndarray,
                              profile: RepeatProfile) -> np.ndarray:
        """Overwrite random stretches with tandem-repeated short motifs."""
        target = int(len(codes) * profile.tandem_fraction)
        covered = 0
        codes = codes.copy()
        low, high = profile.tandem_motif_lengths
        while covered < target:
            motif_len = int(self._rng.integers(low, high + 1))
            copies = int(self._rng.integers(5, 40))
            run = motif_len * copies
            if run > len(codes):
                break
            start = int(self._rng.integers(0, len(codes) - run + 1))
            motif = alphabet.random_codes(motif_len, self._rng, self.gc_content)
            codes[start : start + run] = np.tile(motif, copies)
            covered += run
        return codes

    def _plant_interspersed_repeats(self, codes: np.ndarray,
                                    profile: RepeatProfile) -> np.ndarray:
        """Copy a single long element to many loci with small divergence."""
        element_len = min(profile.interspersed_length, len(codes))
        if element_len == 0:
            return codes
        target = int(len(codes) * profile.interspersed_fraction)
        n_copies = max(0, target // element_len)
        if n_copies == 0:
            return codes
        codes = codes.copy()
        element = alphabet.random_codes(element_len, self._rng, self.gc_content)
        for _ in range(n_copies):
            start = int(self._rng.integers(0, len(codes) - element_len + 1))
            copy = element.copy()
            diverge = self._rng.random(element_len) < profile.interspersed_divergence
            if diverge.any():
                shift = self._rng.integers(
                    1, alphabet.ALPHABET_SIZE, size=int(diverge.sum())
                ).astype(np.uint8)
                copy[diverge] = (copy[diverge] + shift) % alphabet.ALPHABET_SIZE
            codes[start : start + element_len] = copy
        return codes


def generate_reference(length: int, seed: int = 0,
                       gc_content: float = DEFAULT_GC_CONTENT,
                       with_repeats: bool = True) -> DnaSequence:
    """Convenience wrapper: one call, one synthetic reference."""
    repeats = RepeatProfile() if with_repeats else None
    return ReferenceGenerator(gc_content=gc_content, repeats=repeats,
                              seed=seed).generate(length)
