"""Genomics substrate: sequences, synthetic references, reads, datasets.

This subpackage provides everything the accelerator models consume:

* :mod:`repro.genome.alphabet` — 2-bit base encoding;
* :mod:`repro.genome.sequence` — the immutable :class:`DnaSequence`;
* :mod:`repro.genome.generator` — synthetic human-like references;
* :mod:`repro.genome.edits` — substitution/indel injection with provenance;
* :mod:`repro.genome.reads` — fixed-length read sampling;
* :mod:`repro.genome.kmer` — k-mer indexing (seeding baselines);
* :mod:`repro.genome.io_fasta` — FASTA/FASTQ I/O;
* :mod:`repro.genome.datasets` — the paper's Condition A/B datasets.
"""

from repro.genome.alphabet import BASES, decode, encode
from repro.genome.datasets import Dataset, build_dataset, resolve_condition
from repro.genome.edits import Edit, EditKind, EditPlan, ErrorModel, inject_edits
from repro.genome.generator import (
    ReferenceGenerator,
    RepeatProfile,
    generate_reference,
)
from repro.genome.kmer import KmerIndex, canonical_kmer, iter_kmers, kmer_profile
from repro.genome.quality import (
    QualityProfile,
    error_probability_to_phred,
    phred_to_error_probability,
    quality_aware_substitutions,
)
from repro.genome.reads import ReadRecord, ReadSampler
from repro.genome.spectrum import MutationSpectrum, is_transition, measure_ti_tv
from repro.genome.sequence import DnaSequence

__all__ = [
    "BASES",
    "Dataset",
    "DnaSequence",
    "Edit",
    "EditKind",
    "EditPlan",
    "ErrorModel",
    "KmerIndex",
    "MutationSpectrum",
    "QualityProfile",
    "ReadRecord",
    "ReadSampler",
    "ReferenceGenerator",
    "RepeatProfile",
    "build_dataset",
    "canonical_kmer",
    "decode",
    "encode",
    "error_probability_to_phred",
    "generate_reference",
    "phred_to_error_probability",
    "quality_aware_substitutions",
    "inject_edits",
    "is_transition",
    "measure_ti_tv",
    "iter_kmers",
    "kmer_profile",
    "resolve_condition",
]
