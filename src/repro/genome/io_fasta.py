"""Minimal FASTA/FASTQ reading and writing.

Real references (e.g. the NCBI human genome the paper uses) arrive as
FASTA; sequencer reads arrive as FASTQ.  This module parses both into
library types so every experiment can run on real data when it is
available, falling back to the synthetic generator otherwise.

Ambiguity codes: real assemblies contain ``N`` runs (and rarer IUPAC
codes).  The CAM hardware stores exactly two bits per base, so ambiguous
characters must be resolved at parse time.  Three policies are offered:

* ``"error"`` — refuse the file (default; safest);
* ``"skip"`` — drop ambiguous characters from the sequence;
* ``"random"`` — replace each with a random concrete base (seeded).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, TextIO, Union

import numpy as np

from repro.errors import DatasetError
from repro.genome import alphabet
from repro.genome.sequence import DnaSequence

_AMBIGUOUS = set("NRYSWKMBDHVn")
_RESOLUTIONS = ("error", "skip", "random")


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: header (without ``>``) and sequence."""

    name: str
    sequence: DnaSequence


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ record: name, sequence and per-base Phred qualities."""

    name: str
    sequence: DnaSequence
    qualities: np.ndarray

    def __post_init__(self) -> None:
        if len(self.sequence) != len(self.qualities):
            raise DatasetError(
                f"FASTQ record {self.name!r}: sequence length "
                f"{len(self.sequence)} != quality length {len(self.qualities)}"
            )


def _clean(raw: str, ambiguous: str, rng: np.random.Generator) -> str:
    """Apply the ambiguity policy to a raw sequence string."""
    if ambiguous not in _RESOLUTIONS:
        raise DatasetError(
            f"ambiguous policy must be one of {_RESOLUTIONS}, got {ambiguous!r}"
        )
    if all(ch not in _AMBIGUOUS for ch in raw):
        return raw
    if ambiguous == "error":
        raise DatasetError(
            "sequence contains ambiguity codes (e.g. 'N'); pass "
            "ambiguous='skip' or ambiguous='random' to resolve them"
        )
    if ambiguous == "skip":
        return "".join(ch for ch in raw if ch not in _AMBIGUOUS)
    out = []
    for ch in raw:
        if ch in _AMBIGUOUS:
            out.append(alphabet.BASES[int(rng.integers(0, 4))])
        else:
            out.append(ch)
    return "".join(out)


def _open(source: Union[str, Path, TextIO]) -> TextIO:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="ascii")
    return source


def parse_fasta(source: Union[str, Path, TextIO], ambiguous: str = "error",
                seed: int = 0) -> list[FastaRecord]:
    """Parse all records of a FASTA file or file-like object."""
    rng = np.random.default_rng(seed)
    handle = _open(source)
    close = isinstance(source, (str, Path))
    records: list[FastaRecord] = []
    try:
        name: str | None = None
        chunks: list[str] = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    records.append(_finish_fasta(name, chunks, ambiguous, rng))
                name = line[1:].split()[0] if len(line) > 1 else ""
                chunks = []
            else:
                if name is None:
                    raise DatasetError("FASTA data before first '>' header")
                chunks.append(line)
        if name is not None:
            records.append(_finish_fasta(name, chunks, ambiguous, rng))
    finally:
        if close:
            handle.close()
    if not records:
        raise DatasetError("no FASTA records found")
    return records


def _finish_fasta(name: str, chunks: list[str], ambiguous: str,
                  rng: np.random.Generator) -> FastaRecord:
    cleaned = _clean("".join(chunks), ambiguous, rng)
    return FastaRecord(name=name, sequence=DnaSequence(cleaned))


def write_fasta(records: Iterable[FastaRecord],
                destination: Union[str, Path, TextIO],
                width: int = 70) -> None:
    """Write records in wrapped FASTA format."""
    handle = _open(destination) if not isinstance(destination, (str, Path)) \
        else open(destination, "w", encoding="ascii")
    close = isinstance(destination, (str, Path))
    try:
        for record in records:
            handle.write(f">{record.name}\n")
            text = str(record.sequence)
            for i in range(0, len(text), width):
                handle.write(text[i : i + width] + "\n")
    finally:
        if close:
            handle.close()


def parse_fastq(source: Union[str, Path, TextIO], ambiguous: str = "error",
                seed: int = 0) -> list[FastqRecord]:
    """Parse all records of a FASTQ file or file-like object."""
    rng = np.random.default_rng(seed)
    handle = _open(source)
    close = isinstance(source, (str, Path))
    records: list[FastqRecord] = []
    try:
        lines = [line.rstrip("\n") for line in handle if line.strip()]
    finally:
        if close:
            handle.close()
    if len(lines) % 4 != 0:
        raise DatasetError(
            f"FASTQ line count {len(lines)} is not a multiple of 4"
        )
    for i in range(0, len(lines), 4):
        header, seq_line, plus, qual_line = lines[i : i + 4]
        if not header.startswith("@"):
            raise DatasetError(f"FASTQ record {i // 4}: header must start with '@'")
        if not plus.startswith("+"):
            raise DatasetError(f"FASTQ record {i // 4}: separator must start with '+'")
        cleaned = _clean(seq_line, ambiguous, rng)
        if ambiguous == "skip" and len(cleaned) != len(seq_line):
            raise DatasetError(
                "ambiguous='skip' would desynchronise FASTQ qualities; "
                "use 'random' or 'error' for FASTQ"
            )
        qualities = np.array([ord(c) - 33 for c in qual_line], dtype=np.int16)
        records.append(FastqRecord(name=header[1:].split()[0],
                                   sequence=DnaSequence(cleaned),
                                   qualities=qualities))
    if not records:
        raise DatasetError("no FASTQ records found")
    return records


def write_fastq(records: Iterable[FastqRecord],
                destination: Union[str, Path, TextIO]) -> None:
    """Write records in FASTQ format (Phred+33)."""
    handle = _open(destination) if not isinstance(destination, (str, Path)) \
        else open(destination, "w", encoding="ascii")
    close = isinstance(destination, (str, Path))
    try:
        for record in records:
            quality_text = "".join(chr(int(q) + 33) for q in record.qualities)
            handle.write(f"@{record.name}\n{record.sequence}\n+\n{quality_text}\n")
    finally:
        if close:
            handle.close()
