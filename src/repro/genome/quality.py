"""Phred quality modelling for synthetic reads.

Real sequencers emit a Phred quality per base call
(``Q = -10 log10 P(error)``), and short-read error rates rise toward the
3' end of the read.  This module generates position-dependent quality
profiles, draws per-base qualities, and converts between quality and
error probability — so the FASTQ files the library writes carry
realistic quality strings and quality-aware tools can be tested.

The edit injector of :mod:`repro.genome.edits` uses flat rates (that is
what the paper specifies); :func:`quality_aware_substitutions` offers
the position-dependent alternative for the extended examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.genome import alphabet
from repro.genome.sequence import DnaSequence

#: Valid Phred range for the +33 ASCII encoding.
MIN_PHRED = 0
MAX_PHRED = 93


def phred_to_error_probability(quality: "int | np.ndarray") -> np.ndarray:
    """``P(error) = 10^(-Q/10)``."""
    quality = np.asarray(quality, dtype=float)
    if (quality < MIN_PHRED).any() or (quality > MAX_PHRED).any():
        raise DatasetError(
            f"Phred quality out of range {MIN_PHRED}..{MAX_PHRED}"
        )
    return np.power(10.0, -quality / 10.0)


def error_probability_to_phred(probability: "float | np.ndarray") -> np.ndarray:
    """Inverse of :func:`phred_to_error_probability`, clipped to range."""
    probability = np.asarray(probability, dtype=float)
    if (probability <= 0).any() or (probability > 1).any():
        raise DatasetError("error probability must be in (0, 1]")
    quality = -10.0 * np.log10(probability)
    return np.clip(np.round(quality), MIN_PHRED, MAX_PHRED).astype(np.int16)


@dataclass(frozen=True)
class QualityProfile:
    """Position-dependent quality model for a sequencing platform.

    The mean quality decays linearly from ``start_quality`` at the
    5' end to ``end_quality`` at the 3' end (the classic Illumina
    droop), with i.i.d. Gaussian jitter of ``jitter`` Phred units.
    """

    start_quality: int = 38
    end_quality: int = 28
    jitter: float = 3.0

    def __post_init__(self) -> None:
        for name in ("start_quality", "end_quality"):
            value = getattr(self, name)
            if not MIN_PHRED <= value <= MAX_PHRED:
                raise DatasetError(
                    f"{name} must be in {MIN_PHRED}..{MAX_PHRED}, got {value}"
                )
        if self.jitter < 0:
            raise DatasetError(f"jitter must be non-negative, got {self.jitter}")

    def mean_qualities(self, length: int) -> np.ndarray:
        """The deterministic per-position mean quality curve."""
        if length <= 0:
            raise DatasetError(f"length must be positive, got {length}")
        return np.linspace(self.start_quality, self.end_quality, length)

    def sample(self, length: int, rng: np.random.Generator) -> np.ndarray:
        """Draw a quality string for one read."""
        qualities = self.mean_qualities(length)
        qualities = qualities + rng.normal(0.0, self.jitter, size=length)
        return np.clip(np.round(qualities), MIN_PHRED,
                       MAX_PHRED).astype(np.int16)

    def expected_error_rate(self, length: int) -> float:
        """Mean per-base error probability over the read."""
        return float(
            phred_to_error_probability(self.mean_qualities(length)).mean()
        )


def quality_aware_substitutions(read: DnaSequence, qualities: np.ndarray,
                                rng: np.random.Generator
                                ) -> tuple[DnaSequence, np.ndarray]:
    """Substitute each base with its quality-implied error probability.

    Returns the edited read and the boolean error-position mask.  Only
    substitutions are modelled (base-call errors); indels come from the
    standard injector.
    """
    qualities = np.asarray(qualities)
    if qualities.shape != (len(read),):
        raise DatasetError(
            f"quality shape {qualities.shape} != read length {len(read)}"
        )
    probabilities = phred_to_error_probability(qualities)
    errors = rng.random(len(read)) < probabilities
    codes = read.codes.copy()
    if errors.any():
        shift = rng.integers(1, alphabet.ALPHABET_SIZE,
                             size=int(errors.sum())).astype(np.uint8)
        codes[errors] = (codes[errors] + shift) % alphabet.ALPHABET_SIZE
    return DnaSequence(codes), errors
