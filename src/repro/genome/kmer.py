"""k-mer machinery: iteration, canonical form, and an exact-match index.

The seeding-strategy baselines (SaVI's seed-and-vote, the Kraken2-like
classifier) and several examples need exact k-mer matching against a
reference.  k-mers are packed into Python integers (2 bits per base) so
dictionary lookups are cheap and hashable.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import DatasetError
from repro.genome.sequence import DnaSequence

#: Maximum k supported by the 2-bit integer packing (Python ints are
#: unbounded, but 64 keeps reverse-complement math simple and is far
#: beyond genomics practice).
MAX_K = 64


def pack_kmer(codes: np.ndarray) -> int:
    """Pack an array of base codes into a 2-bit-per-base integer."""
    value = 0
    for code in codes:
        value = (value << 2) | int(code)
    return value


def unpack_kmer(value: int, k: int) -> np.ndarray:
    """Inverse of :func:`pack_kmer`."""
    codes = np.empty(k, dtype=np.uint8)
    for i in range(k - 1, -1, -1):
        codes[i] = value & 0b11
        value >>= 2
    return codes


def reverse_complement_kmer(value: int, k: int) -> int:
    """Reverse complement directly in packed space."""
    rc = 0
    for _ in range(k):
        rc = (rc << 2) | (3 - (value & 0b11))
        value >>= 2
    return rc


def canonical_kmer(value: int, k: int) -> int:
    """The smaller of a packed k-mer and its reverse complement.

    Canonicalisation makes indices strand-symmetric, as genomics tools
    (including Kraken2) do.
    """
    return min(value, reverse_complement_kmer(value, k))


def iter_kmers(sequence: DnaSequence, k: int,
               canonical: bool = False) -> Iterator[tuple[int, int]]:
    """Yield ``(position, packed_kmer)`` for every k-mer of *sequence*."""
    if not 1 <= k <= MAX_K:
        raise DatasetError(f"k must be in 1..{MAX_K}, got {k}")
    codes = sequence.codes
    n = len(codes)
    if n < k:
        return
    mask = (1 << (2 * k)) - 1
    value = pack_kmer(codes[:k])
    yield 0, canonical_kmer(value, k) if canonical else value
    for i in range(k, n):
        value = ((value << 2) | int(codes[i])) & mask
        position = i - k + 1
        yield position, canonical_kmer(value, k) if canonical else value


def kmer_profile(sequence: DnaSequence, k: int,
                 canonical: bool = False) -> dict[int, int]:
    """Count occurrences of each k-mer."""
    counts: dict[int, int] = defaultdict(int)
    for _, kmer in iter_kmers(sequence, k, canonical=canonical):
        counts[kmer] += 1
    return dict(counts)


@dataclass
class KmerIndex:
    """Exact-match k-mer index over a reference sequence.

    Maps each packed k-mer to the sorted list of reference positions
    where it occurs.  This is the substrate both seeding baselines use:
    SaVI votes on positions returned by lookups, and the Kraken-like
    classifier tests k-mer membership.
    """

    k: int
    positions: dict[int, list[int]]
    reference_length: int
    canonical: bool = False

    @classmethod
    def build(cls, reference: DnaSequence, k: int,
              canonical: bool = False) -> "KmerIndex":
        """Index every k-mer of *reference*."""
        table: dict[int, list[int]] = defaultdict(list)
        for position, kmer in iter_kmers(reference, k, canonical=canonical):
            table[kmer].append(position)
        return cls(k=k, positions=dict(table),
                   reference_length=len(reference), canonical=canonical)

    def lookup(self, kmer: int) -> list[int]:
        """Positions of *kmer* in the reference (empty when absent)."""
        return self.positions.get(kmer, [])

    def contains(self, kmer: int) -> bool:
        return kmer in self.positions

    def __len__(self) -> int:
        """Number of distinct k-mers indexed."""
        return len(self.positions)

    def distinct_fraction(self) -> float:
        """Distinct k-mers / total k-mer slots — a repetitiveness gauge."""
        total = max(1, self.reference_length - self.k + 1)
        return len(self.positions) / total
