"""DNA alphabet utilities: 2-bit base encoding, validation, complements.

Genome sequences consist of the four bases Adenine (A), Guanine (G),
Cytosine (C) and Thymine (T).  Internally the library stores sequences as
``numpy`` arrays of 2-bit codes (``uint8`` values 0..3), which matches the
hardware encoding the paper assumes: each ASMCap cell stores one base in
two 6T SRAM cells (Fig. 4(c)), i.e. exactly two bits.

Ambiguity codes (``N`` etc.) that appear in real FASTA files are resolved
*before* encoding (see :mod:`repro.genome.io_fasta`), because the CAM
hardware has no representation for them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlphabetError

#: Canonical base order.  Code 0=A, 1=C, 2=G, 3=T (alphabetical).
BASES = ("A", "C", "G", "T")

#: Number of distinct bases.
ALPHABET_SIZE = 4

#: Bits needed per base in the SRAM storage model.
BITS_PER_BASE = 2

#: Map base character -> 2-bit code.
BASE_TO_CODE = {base: code for code, base in enumerate(BASES)}

#: Map 2-bit code -> base character.
CODE_TO_BASE = {code: base for code, base in enumerate(BASES)}

#: Watson-Crick complements (A-T and C-G pairs, Section II-A).
COMPLEMENT = {"A": "T", "T": "A", "C": "G", "G": "C"}

#: Complement in code space: A(0)<->T(3), C(1)<->G(2), i.e. 3 - code.
_COMPLEMENT_CODES = np.array([3, 2, 1, 0], dtype=np.uint8)

# Lookup table from ASCII byte -> code (255 marks invalid characters).
_ASCII_TO_CODE = np.full(256, 255, dtype=np.uint8)
for _base, _code in BASE_TO_CODE.items():
    _ASCII_TO_CODE[ord(_base)] = _code
    _ASCII_TO_CODE[ord(_base.lower())] = _code

_CODE_TO_ASCII = np.array([ord(b) for b in BASES], dtype=np.uint8)


def encode(text: str) -> np.ndarray:
    """Encode a base string into an array of 2-bit codes.

    Parameters
    ----------
    text:
        A string over ``ACGT`` (case insensitive).

    Returns
    -------
    numpy.ndarray
        ``uint8`` array with values in ``{0, 1, 2, 3}``.

    Raises
    ------
    AlphabetError
        If any character is outside the DNA alphabet.
    """
    raw = np.frombuffer(text.encode("ascii", errors="replace"), dtype=np.uint8)
    codes = _ASCII_TO_CODE[raw]
    bad = codes == 255
    if bad.any():
        index = int(np.argmax(bad))
        raise AlphabetError(
            f"invalid base {text[index]!r} at position {index}; "
            "expected one of A, C, G, T"
        )
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode an array of 2-bit codes back into a base string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max()) >= ALPHABET_SIZE:
        raise AlphabetError(
            f"code {int(codes.max())} out of range 0..{ALPHABET_SIZE - 1}"
        )
    return _CODE_TO_ASCII[codes].tobytes().decode("ascii")


def complement_codes(codes: np.ndarray) -> np.ndarray:
    """Return the Watson-Crick complement of a code array."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max()) >= ALPHABET_SIZE:
        raise AlphabetError("cannot complement codes outside 0..3")
    return _COMPLEMENT_CODES[codes]


def reverse_complement_codes(codes: np.ndarray) -> np.ndarray:
    """Return the reverse complement of a code array."""
    return complement_codes(codes)[::-1]


def is_valid_sequence(text: str) -> bool:
    """Check whether *text* is a valid (possibly empty) DNA string."""
    if not text:
        return True
    raw = np.frombuffer(text.encode("ascii", errors="replace"), dtype=np.uint8)
    return bool((_ASCII_TO_CODE[raw] != 255).all())


def random_codes(length: int, rng: np.random.Generator,
                 gc_content: float = 0.5) -> np.ndarray:
    """Draw *length* random base codes with a target GC content.

    ``gc_content`` is the total probability of drawing C or G (split
    evenly between them); A and T share the remainder evenly.  The human
    genome averages ~41 % GC, which the synthetic reference generator
    uses by default.
    """
    if not 0.0 <= gc_content <= 1.0:
        raise AlphabetError(f"gc_content must be in [0, 1], got {gc_content}")
    if length < 0:
        raise AlphabetError(f"length must be non-negative, got {length}")
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    probabilities = np.array([at, gc, gc, at])  # order A, C, G, T
    return rng.choice(ALPHABET_SIZE, size=length, p=probabilities).astype(np.uint8)
