"""Read extraction with provenance.

The evaluation extracts fixed-length reads (256 bases) from random
positions of the reference and injects edits (Section V-A).  The CAM
hardware needs reads of *exactly* the row width, while indel injection
changes the sequence length, so the sampler works on a slightly wider
window and truncates:

1. take a window of ``length + slack`` reference bases at the origin;
2. inject edits over the window;
3. keep the first ``length`` bases of the edited window.

This mirrors how a sequencer behaves — it emits a fixed number of base
calls from the start of the fragment regardless of how many underlying
bases were skipped or duplicated.  The trailing slack guarantees a full-
length read survives even when deletions fire (slack is sized to make
underflow astronomically unlikely, and the sampler raises if it ever
happens rather than padding with invented bases).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.genome.edits import EditPlan, ErrorModel, inject_edits
from repro.genome.sequence import DnaSequence


@dataclass(frozen=True)
class ReadRecord:
    """A sampled read plus everything needed to score it later.

    Attributes
    ----------
    read:
        The edited, fixed-length read sequence.
    origin:
        Start position of the source window in the reference.
    plan:
        Every edit injected into the (wider) source window.  Edits at
        window positions beyond the kept prefix may not affect the final
        read; the *true* edit distance should always be computed against
        the reference segment, not inferred from this plan.
    model:
        The error model used for injection (HDAC/TASR consume its rates).
    """

    read: DnaSequence
    origin: int
    plan: EditPlan
    model: ErrorModel

    def __len__(self) -> int:
        return len(self.read)


class ReadSampler:
    """Samples fixed-length, edit-injected reads from a reference.

    Parameters
    ----------
    reference:
        The reference sequence to sample from.
    read_length:
        Final read length (the paper uses 256).
    model:
        Error model for edit injection.
    seed:
        Seed for the internal random generator.
    slack:
        Extra reference bases taken beyond ``read_length`` before edit
        injection.  Defaults to enough to absorb a >=6-sigma deletion
        excursion, with a floor of 16.
    """

    def __init__(self, reference: DnaSequence, read_length: int,
                 model: ErrorModel, seed: int = 0,
                 slack: int | None = None):
        if read_length <= 0:
            raise DatasetError(f"read_length must be positive, got {read_length}")
        if len(reference) < read_length:
            raise DatasetError(
                f"reference ({len(reference)} bases) shorter than "
                f"read_length ({read_length})"
            )
        if slack is None:
            expected_deletions = read_length * model.deletion
            burst_factor = 1.0 / max(1e-9, 1.0 - model.burst_prob)
            slack = max(16, int(6 * (expected_deletions * burst_factor + 2)))
        if len(reference) < read_length + slack:
            slack = len(reference) - read_length
        self._reference = reference
        self._read_length = read_length
        self._model = model
        self._slack = slack
        self._rng = np.random.default_rng(seed)

    @property
    def read_length(self) -> int:
        return self._read_length

    @property
    def model(self) -> ErrorModel:
        return self._model

    def sample(self) -> ReadRecord:
        """Sample one read at a uniformly random origin."""
        max_origin = len(self._reference) - self._read_length - self._slack
        origin = int(self._rng.integers(0, max_origin + 1))
        return self.sample_at(origin)

    def sample_at(self, origin: int) -> ReadRecord:
        """Sample one read at a fixed origin (still random edits)."""
        window_len = self._read_length + self._slack
        if origin < 0 or origin + window_len > len(self._reference):
            raise DatasetError(
                f"origin {origin} with window {window_len} exceeds reference "
                f"of length {len(self._reference)}"
            )
        window = self._reference.window(origin, window_len)
        edited, plan = inject_edits(window, self._model, self._rng)
        if len(edited) < self._read_length:
            raise DatasetError(
                "edited window shorter than read length; increase slack "
                f"(got {len(edited)}, need {self._read_length})"
            )
        read = edited[: self._read_length]
        return ReadRecord(read=read, origin=origin, plan=plan,
                          model=self._model)

    def sample_batch(self, count: int) -> list[ReadRecord]:
        """Sample *count* independent reads."""
        if count < 0:
            raise DatasetError(f"count must be non-negative, got {count}")
        return [self.sample() for _ in range(count)]
