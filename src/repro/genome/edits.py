"""Edit injection: substitutions, insertions, deletions.

The paper's datasets are built by extracting 256-base reads from the
reference and randomly injecting edits at configured rates
(Section V-A).  This module implements that injection with full
provenance: every injected edit is recorded in an :class:`EditPlan`, so
experiments know the *intended* edit count as well as being able to
compute the true edit distance afterwards.

Indels in real sequencers (and in the paper's Fig. 6 example, which
deletes a consecutive ``AA``) frequently occur in bursts.  The injector
therefore supports geometric burst lengths: after starting an indel
event, each additional adjacent base is included with probability
``burst_prob``.  ``burst_prob = 0`` gives pure i.i.d. single-base indels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import EditModelError
from repro.genome import alphabet
from repro.genome.sequence import DnaSequence


class EditKind(enum.Enum):
    """The three edit types of Fig. 1(a)."""

    SUBSTITUTION = "substitution"
    INSERTION = "insertion"
    DELETION = "deletion"


@dataclass(frozen=True)
class Edit:
    """A single injected edit.

    ``position`` indexes the *original* sequence: a substitution replaces
    the base at ``position``; an insertion inserts ``base`` *before*
    ``position``; a deletion removes the base at ``position``.
    """

    kind: EditKind
    position: int
    base: str = ""


@dataclass
class EditPlan:
    """The full set of edits applied to one sequence."""

    edits: list[Edit] = field(default_factory=list)

    @property
    def n_substitutions(self) -> int:
        return sum(1 for e in self.edits if e.kind is EditKind.SUBSTITUTION)

    @property
    def n_insertions(self) -> int:
        return sum(1 for e in self.edits if e.kind is EditKind.INSERTION)

    @property
    def n_deletions(self) -> int:
        return sum(1 for e in self.edits if e.kind is EditKind.DELETION)

    @property
    def n_indels(self) -> int:
        return self.n_insertions + self.n_deletions

    def __len__(self) -> int:
        return len(self.edits)


@dataclass(frozen=True)
class ErrorModel:
    """Per-base error rates for edit injection.

    Attributes
    ----------
    substitution:
        Per-base substitution probability (``es`` in the paper).
    insertion:
        Per-base insertion probability (``ei``).
    deletion:
        Per-base deletion probability (``ed``).
    burst_prob:
        Probability of extending an indel event by one more base
        (geometric bursts; 0 disables bursts).
    """

    substitution: float = 0.0
    insertion: float = 0.0
    deletion: float = 0.0
    burst_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in ("substitution", "insertion", "deletion", "burst_prob"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise EditModelError(f"{name} rate must be in [0, 1), got {value}")
        total = self.substitution + self.insertion + self.deletion
        if total >= 1.0:
            raise EditModelError(f"total error rate must be < 1, got {total}")

    @property
    def indel_rate(self) -> float:
        """``eid = ei + ed`` as used by HDAC/TASR (Section IV)."""
        return self.insertion + self.deletion

    @property
    def total_rate(self) -> float:
        return self.substitution + self.insertion + self.deletion

    @property
    def substitution_fraction(self) -> float:
        """``es / (es + eid)``; 0 when the model injects no errors."""
        if self.total_rate == 0.0:
            return 0.0
        return self.substitution / self.total_rate

    @classmethod
    def condition_a(cls, burst_prob: float = 0.3) -> "ErrorModel":
        """Paper Condition A: es = 1 %, ei = ed = 0.05 %."""
        return cls(substitution=0.01, insertion=0.0005, deletion=0.0005,
                   burst_prob=burst_prob)

    @classmethod
    def condition_b(cls, burst_prob: float = 0.3) -> "ErrorModel":
        """Paper Condition B: es = 0.1 %, ei = ed = 0.5 %."""
        return cls(substitution=0.001, insertion=0.005, deletion=0.005,
                   burst_prob=burst_prob)


def inject_edits(sequence: DnaSequence, model: ErrorModel,
                 rng: np.random.Generator) -> tuple[DnaSequence, EditPlan]:
    """Apply random edits to *sequence* according to *model*.

    The scan walks the original sequence once.  At each position an
    event is drawn: substitution, insertion (before the base), deletion,
    or none.  Indel events extend into geometric bursts when
    ``model.burst_prob > 0``.  Substitutions always change the base (a
    random *different* base is drawn), so every recorded substitution is
    a real edit.

    Returns the edited sequence (whose length may differ from the input
    when indels fired) and the :class:`EditPlan` recording every edit.
    """
    source = sequence.codes
    out: list[int] = []
    plan = EditPlan()
    p_sub, p_ins, p_del = model.substitution, model.insertion, model.deletion
    i = 0
    n = len(source)
    while i < n:
        x = rng.random()
        if x < p_sub:
            new_code = _different_base(int(source[i]), rng)
            plan.edits.append(Edit(EditKind.SUBSTITUTION, i,
                                   alphabet.CODE_TO_BASE[new_code]))
            out.append(new_code)
            i += 1
        elif x < p_sub + p_ins:
            # Insert a burst of random bases before position i.
            while True:
                code = int(rng.integers(0, alphabet.ALPHABET_SIZE))
                plan.edits.append(Edit(EditKind.INSERTION, i,
                                       alphabet.CODE_TO_BASE[code]))
                out.append(code)
                if rng.random() >= model.burst_prob:
                    break
            out.append(int(source[i]))
            i += 1
        elif x < p_sub + p_ins + p_del:
            # Delete a burst of consecutive bases starting at i.
            while i < n:
                plan.edits.append(Edit(EditKind.DELETION, i,
                                       alphabet.CODE_TO_BASE[int(source[i])]))
                i += 1
                if rng.random() >= model.burst_prob:
                    break
        else:
            out.append(int(source[i]))
            i += 1
    edited = DnaSequence(np.array(out, dtype=np.uint8))
    return edited, plan


def _different_base(code: int, rng: np.random.Generator) -> int:
    """Draw a base code uniformly among the three codes != *code*."""
    return int((code + rng.integers(1, alphabet.ALPHABET_SIZE))
               % alphabet.ALPHABET_SIZE)
