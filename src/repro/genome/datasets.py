"""Metagenomic evaluation dataset builders (Section V-A).

The paper's accuracy experiments work as follows:

* the reference (human genome) is *segmented*: consecutive windows of the
  read length are stored, one per CAM row;
* 256-base reads are extracted from random positions and edits are
  injected at the Condition A or B rates;
* each read is searched against every stored segment, and the decision
  for each (read, segment) pair is compared with ground truth
  (``ED <= T``) to produce the confusion matrix behind the F1 score.

For a read to have any true match at all, its origin must coincide with
a stored segment, so the sampler here draws origins on the segment grid.
Every other stored segment is a negative candidate — mostly easy ones,
but the synthetic reference's repeat structure (and low-complexity
regions) produce hard near-duplicates exactly like real genomes do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.genome.edits import ErrorModel
from repro.genome.generator import ReferenceGenerator, RepeatProfile
from repro.genome.reads import ReadRecord, ReadSampler
from repro.genome.sequence import DnaSequence

#: Canonical names for the paper's two error-injection conditions.
CONDITION_NAMES = ("A", "B")


def resolve_condition(condition: "str | ErrorModel",
                      burst_prob: float = 0.3) -> ErrorModel:
    """Turn ``"A"``/``"B"`` (or an explicit model) into an ErrorModel."""
    if isinstance(condition, ErrorModel):
        return condition
    label = str(condition).strip().upper()
    if label == "A":
        return ErrorModel.condition_a(burst_prob=burst_prob)
    if label == "B":
        return ErrorModel.condition_b(burst_prob=burst_prob)
    raise DatasetError(
        f"unknown condition {condition!r}; expected 'A', 'B' or an ErrorModel"
    )


@dataclass
class Dataset:
    """A built evaluation dataset.

    Attributes
    ----------
    reference:
        The full synthetic reference sequence.
    segments:
        ``(n_segments, read_length)`` uint8 matrix of stored reference
        segments — exactly the contents of the CAM rows.
    reads:
        Sampled, edit-injected reads with provenance.
    model:
        The error model used for injection.
    condition:
        ``"A"``, ``"B"`` or ``"custom"``.
    """

    reference: DnaSequence
    segments: np.ndarray
    reads: list[ReadRecord]
    model: ErrorModel
    condition: str

    @property
    def n_segments(self) -> int:
        return int(self.segments.shape[0])

    @property
    def read_length(self) -> int:
        return int(self.segments.shape[1])

    def segment(self, index: int) -> DnaSequence:
        """The *index*-th stored segment as a sequence object."""
        return DnaSequence(self.segments[index])

    def origin_segment_index(self, record: ReadRecord) -> int:
        """Row index of the segment the read was extracted from."""
        return record.origin // self.read_length


def build_dataset(condition: "str | ErrorModel" = "A",
                  n_reads: int = 128,
                  read_length: int = 256,
                  n_segments: int = 256,
                  seed: int = 0,
                  burst_prob: float = 0.3,
                  with_repeats: bool = True) -> Dataset:
    """Build a metagenomic evaluation dataset.

    Parameters
    ----------
    condition:
        ``"A"`` (substitution dominant), ``"B"`` (indel dominant) or an
        explicit :class:`~repro.genome.edits.ErrorModel`.
    n_reads:
        Number of reads to sample.
    read_length:
        Read and segment length (paper: 256).
    n_segments:
        Number of stored reference segments (paper: 256 rows per array).
    seed:
        Master seed; reference generation and read sampling derive
        independent streams from it.
    burst_prob:
        Indel burst extension probability (see
        :class:`~repro.genome.edits.ErrorModel`).
    with_repeats:
        Disable to get a pure i.i.d. reference (unit tests).
    """
    if n_reads <= 0:
        raise DatasetError(f"n_reads must be positive, got {n_reads}")
    if n_segments <= 0:
        raise DatasetError(f"n_segments must be positive, got {n_segments}")
    model = resolve_condition(condition, burst_prob=burst_prob)
    label = condition if isinstance(condition, str) else "custom"

    # Reference long enough for all segments plus sampler slack.
    slack_margin = 4 * read_length
    ref_length = n_segments * read_length + slack_margin
    repeats = RepeatProfile() if with_repeats else None
    reference = ReferenceGenerator(repeats=repeats, seed=seed).generate(ref_length)

    segments = np.stack([
        reference.codes[i * read_length : (i + 1) * read_length]
        for i in range(n_segments)
    ])

    sampler = ReadSampler(reference, read_length, model, seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    reads = []
    for _ in range(n_reads):
        segment_index = int(rng.integers(0, n_segments))
        reads.append(sampler.sample_at(segment_index * read_length))

    return Dataset(reference=reference, segments=segments, reads=reads,
                   model=model, condition=str(label))
