"""One shared validation gate for the cross-layer constructor knobs.

``backend=``, ``max_workers=``, ``micro_batch=`` and ``compaction=``
appear at four constructor boundaries (:class:`repro.cam.CamArray`,
:class:`repro.core.pipeline.ShardedReadMappingPipeline`,
:class:`repro.service.StreamingMappingService` and
:class:`repro.service.MappingFrontend`).  They are validated *here*,
once, so a falsy or invalid value raises the same
:class:`~repro.errors.CamConfigError` with the same message at every
boundary — ``micro_batch=0`` is a configuration mistake, not a request
for autotuning (that is ``None``), and it should fail loudly instead
of being coerced or surfacing as an unrelated lower-layer error.

The sharded fan-out's execution-engine knob (``engine="thread" |
"process"`` on the pipeline, ``shard_engine=`` at the service layer —
see :mod:`repro.parallel`) is validated here too, since it threads
through the same layers.  Knobs that only exist at the service layer
(the service's own ``engine="batched" | "sharded"``,
``backpressure=``, ``pool_workers=``) keep raising
:class:`~repro.errors.ServiceError` there — this gate owns exactly the
knobs that thread through multiple layers.
"""

from __future__ import annotations

from repro.errors import CamConfigError
from repro.kernels import KernelBackend, get_backend


def validate_service_knobs(micro_batch: "int | None" = None,
                           compaction: "int | None" = None,
                           *,
                           max_workers: "int | None" = None,
                           backend: "str | KernelBackend | None" = None,
                           engine: "str | None" = None,
                           ) -> None:
    """Reject falsy/invalid cross-layer knobs at a constructor boundary.

    Every knob treats ``None`` as "autotune/disable"; explicit values
    must be valid.  Raises :class:`~repro.errors.CamConfigError`.
    """
    if engine is not None:
        # Function-level import: the autotune module sits above the
        # kernels registry this gate already imports.
        from repro.arch.autotune import EXECUTION_ENGINES

        if engine not in EXECUTION_ENGINES:
            raise CamConfigError(
                f"engine must be one of {EXECUTION_ENGINES}, got "
                f"{engine!r}"
            )
    if micro_batch is not None and int(micro_batch) < 1:
        raise CamConfigError(
            f"micro_batch must be positive, got {micro_batch}"
        )
    if compaction is not None and int(compaction) < 1:
        raise CamConfigError(
            f"compaction must be a positive live-event bound (or None "
            f"to disable), got {compaction}"
        )
    if max_workers is not None and int(max_workers) < 1:
        raise CamConfigError(
            f"max_workers must be positive, got {max_workers}"
        )
    if backend is not None and not isinstance(backend, KernelBackend):
        get_backend(backend)  # raises CamConfigError on unknown names


def validate_reference_source(segments, *,
                              catalog: "object | None" = None) -> None:
    """Reject inconsistent ``(segments, catalog)`` constructor pairings.

    The service layer accepts three reference sources in the
    ``segments`` position: a raw segment matrix, a sealed
    :class:`~repro.cam.array.StoredReference` (e.g. from
    :func:`repro.refstore.open_stored_reference`), or — with
    ``catalog=`` — a reference *name* to borrow from a
    :class:`~repro.refstore.ReferenceCatalog`.  This gate pins the
    pairing rules once, so every boundary raises the same
    :class:`~repro.errors.CamConfigError`:

    * ``catalog=`` given → ``segments`` must be a name string;
    * a name string without ``catalog=`` is meaningless;
    * a passed-in stored reference must be sealed (an unsealed one
      still accepts stores, and sessions must never race them).
    """
    # Function-level import: cam.array imports this module's sibling
    # gate, so the reference type cannot be imported at module level.
    from repro.cam.array import StoredReference

    if catalog is not None and not isinstance(segments, str):
        raise CamConfigError(
            f"with catalog=, pass the reference name (a str) in "
            f"the segments position, got {type(segments).__name__}"
        )
    if catalog is None and isinstance(segments, str):
        raise CamConfigError(
            f"a reference name ({segments!r}) needs catalog=; without "
            f"one, pass a segment matrix or a sealed StoredReference"
        )
    if isinstance(segments, StoredReference) and not segments.sealed:
        raise CamConfigError(
            "a StoredReference passed to the service layer must be "
            "sealed (StoredReference.encode(...) seals; adopted "
            "references are born sealed)"
        )
