"""H-tree distribution network model (Fig. 4(a)).

Reads travel from the global buffer to the arrays through a balanced
H-tree.  A broadcast traverses ``log2(n_arrays)`` levels; each level
adds repeater latency and wire energy proportional to the bits moved.
The constants are modest 65 nm-class estimates; the H-tree is a small
contributor next to the search itself, matching the paper's focus on
the array cost (the system-level numbers fold it in regardless).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ArchConfigError

#: Repeater + wire latency per H-tree level.
LEVEL_LATENCY_NS = 0.05

#: Wire + repeater energy per bit per level (65 nm class, ~50 fJ/bit/mm
#: at sub-mm segment lengths).
LEVEL_ENERGY_PER_BIT_J = 20e-15


@dataclass(frozen=True)
class HTreeModel:
    """Cost model of the read-broadcast H-tree."""

    n_arrays: int
    level_latency_ns: float = LEVEL_LATENCY_NS
    level_energy_per_bit_j: float = LEVEL_ENERGY_PER_BIT_J

    def __post_init__(self) -> None:
        if self.n_arrays <= 0:
            raise ArchConfigError(
                f"n_arrays must be positive, got {self.n_arrays}"
            )

    @property
    def levels(self) -> int:
        """Tree depth: ceil(log2(n_arrays)), at least 1."""
        return max(1, math.ceil(math.log2(self.n_arrays)))

    def broadcast_latency_ns(self) -> float:
        """Latency for one read to reach every array."""
        return self.levels * self.level_latency_ns

    def broadcast_energy_joules(self, n_bits: int) -> float:
        """Energy to broadcast *n_bits* to all arrays.

        Each level doubles the fan-out, so the bits are driven over
        ``2^1 + 2^2 + ... + 2^levels - 1`` segments; we charge the
        standard ``(2 * n_arrays - 2)`` segment count of a balanced
        binary H-tree.
        """
        if n_bits < 0:
            raise ArchConfigError(f"n_bits must be non-negative, got {n_bits}")
        n_segments = max(1, 2 * self.n_arrays - 2)
        return n_bits * self.level_energy_per_bit_j * n_segments / self.levels
