"""System architecture: configuration, timing, power, interconnect.

* :mod:`repro.arch.config` — geometry/electrical configuration;
* :mod:`repro.arch.timing` — cycle-level latency model;
* :mod:`repro.arch.power` — Section V-B area/power breakdown;
* :mod:`repro.arch.htree` — read-broadcast H-tree;
* :mod:`repro.arch.buffer` — global buffer and controller;
* :mod:`repro.arch.accelerator` — the assembled multi-array system.
"""

from repro.arch.accelerator import (
    AsmCapAccelerator,
    ReadCostEstimate,
    SystemMatch,
)
from repro.arch.autotune import (
    ServicePoolPlan,
    ShardPlan,
    estimate_stored_reference_bytes,
    plan_microbatch,
    plan_service_pool,
    plan_shards,
    sweep_worker_count,
)
from repro.arch.buffer import Controller, GlobalBuffer
from repro.arch.config import ArchConfig
from repro.arch.htree import HTreeModel
from repro.arch.power import (
    PowerBreakdown,
    array_area_mm2,
    array_power_breakdown,
    cell_area_fraction,
    cell_area_um2,
    component_energies_per_search,
    steady_state_search_period_ns,
)
from repro.arch.scheduler import BatchSchedule, BatchScheduler
from repro.arch.timing import TimingModel

__all__ = [
    "ArchConfig",
    "AsmCapAccelerator",
    "BatchSchedule",
    "BatchScheduler",
    "Controller",
    "GlobalBuffer",
    "HTreeModel",
    "PowerBreakdown",
    "ReadCostEstimate",
    "ServicePoolPlan",
    "ShardPlan",
    "SystemMatch",
    "TimingModel",
    "array_area_mm2",
    "array_power_breakdown",
    "cell_area_fraction",
    "cell_area_um2",
    "component_energies_per_search",
    "estimate_stored_reference_bytes",
    "plan_microbatch",
    "plan_service_pool",
    "plan_shards",
    "steady_state_search_period_ns",
    "sweep_worker_count",
]
