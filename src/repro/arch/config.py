"""Accelerator architecture configuration (Fig. 4(a), Section V-A).

The evaluated system: 512 arrays of 256 x 256 ASMCap cells (64 Mb of
reference capacity — enough to hold small virus genomes such as
SARS-CoV-2 entirely), a global buffer feeding reads through an H-tree,
and a controller taking instructions from the host CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ArchConfigError
from repro.genome import alphabet


@dataclass(frozen=True)
class ArchConfig:
    """Geometry and electrical configuration of one accelerator.

    Defaults reproduce the paper's evaluated system.
    """

    array_rows: int = constants.ARRAY_ROWS
    array_cols: int = constants.ARRAY_COLS
    n_arrays: int = constants.ARRAY_COUNT
    vdd: float = constants.VDD_VOLTS
    technology_nm: int = constants.TECHNOLOGY_NM
    domain: str = "charge"

    def __post_init__(self) -> None:
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ArchConfigError(
                f"array geometry must be positive, got "
                f"{self.array_rows}x{self.array_cols}"
            )
        if self.n_arrays <= 0:
            raise ArchConfigError(
                f"n_arrays must be positive, got {self.n_arrays}"
            )
        if self.vdd <= 0.0:
            raise ArchConfigError(f"vdd must be positive, got {self.vdd}")
        if self.domain not in ("charge", "current"):
            raise ArchConfigError(
                f"domain must be 'charge' or 'current', got {self.domain!r}"
            )

    # -- capacity ------------------------------------------------------

    @property
    def cells_per_array(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def total_cells(self) -> int:
        return self.cells_per_array * self.n_arrays

    @property
    def total_segments(self) -> int:
        """Reference segments the whole system can hold."""
        return self.array_rows * self.n_arrays

    @property
    def capacity_bases(self) -> int:
        return self.total_cells

    @property
    def capacity_bits(self) -> int:
        return self.total_cells * alphabet.BITS_PER_BASE

    @property
    def capacity_mb(self) -> float:
        """Capacity in megabits (the paper quotes 64 Mb)."""
        return self.capacity_bits / (1 << 20)

    @property
    def read_bits(self) -> int:
        """Bits per broadcast read (2 bits/base)."""
        return self.array_cols * alphabet.BITS_PER_BASE

    def fits_reference(self, reference_length: int) -> bool:
        """Whether a reference of this length fits entirely on-chip."""
        return reference_length <= self.capacity_bases

    @classmethod
    def paper_system(cls) -> "ArchConfig":
        """The exact evaluated configuration (512 x 256 x 256, 1.2 V)."""
        return cls()

    @classmethod
    def edam_system(cls) -> "ArchConfig":
        """EDAM with the same geometry (Section V-A: both 256x256x512)."""
        return cls(domain="current")
