"""Batch scheduler: reference loading plus pipelined read streams.

The Fig. 8 numbers charge only the steady-state search path; a real
deployment also pays to *load* the reference (one row write per
segment) and to stream reads through the buffer/H-tree front end while
arrays search.  This scheduler models a complete batch:

1. **Load phase** — writes every segment row (decoder + WL driver +
   SRAM write per row; rows across arrays load in parallel, rows within
   an array serialise).
2. **Stream phase** — reads issue back-to-back; the front end (fetch +
   broadcast) of read ``i+1`` overlaps the array search of read ``i``
   (classic two-stage pipeline), so batch latency is
   ``front_end + n_reads * max(front_end, search_path)``.

The model exposes amortised per-read costs so users can judge when a
reference is worth loading (many reads) versus mapping on CPU (few).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.buffer import Controller, GlobalBuffer
from repro.arch.config import ArchConfig
from repro.arch.htree import HTreeModel
from repro.arch.power import component_energies_per_search
from repro.arch.timing import TimingModel
from repro.errors import ArchConfigError

#: Row-write latency (decode + WL pulse + SRAM write), 65 nm class.
ROW_WRITE_NS = 2.0

#: Energy per row write (512 SRAM bits plus drivers).
ROW_WRITE_ENERGY_J = 1.5e-12


def bank_row_ranges(n_rows: int, n_banks: int,
                    bank_capacity: "int | None" = None
                    ) -> tuple[tuple[int, int], ...]:
    """Contiguous ``(start, stop)`` row ranges assigned to each bank.

    Rows map to contiguous blocks in bank order.  With an explicit
    ``bank_capacity`` banks fill front-to-back, each taking up to that
    many rows — the accelerator's load phase, where array 0 fills
    first.  Without one the rows are balanced across the requested
    banks (sizes differ by at most one row) — the sharded software
    pipeline, where an even split keeps every worker busy.  Banks that
    would receive no rows are omitted, so the result may be shorter
    than ``n_banks``.
    """
    if n_rows <= 0:
        raise ArchConfigError(f"n_rows must be positive, got {n_rows}")
    if n_banks <= 0:
        raise ArchConfigError(f"n_banks must be positive, got {n_banks}")
    if bank_capacity is None:
        base, extra = divmod(n_rows, n_banks)
        sizes = [base + 1] * extra + [base] * (n_banks - extra)
    else:
        if bank_capacity <= 0:
            raise ArchConfigError(
                f"bank_capacity must be positive, got {bank_capacity}"
            )
        if n_rows > bank_capacity * n_banks:
            raise ArchConfigError(
                f"{n_rows} rows exceed capacity {bank_capacity} x "
                f"{n_banks} banks"
            )
        full, remainder = divmod(n_rows, bank_capacity)
        sizes = [bank_capacity] * full + ([remainder] if remainder else [])
    ranges = []
    start = 0
    for size in sizes:
        if size == 0:
            continue
        ranges.append((start, start + size))
        start += size
    return tuple(ranges)


@dataclass(frozen=True)
class BatchSchedule:
    """Cost breakdown of one scheduled batch."""

    n_reads: int
    n_segments: int
    load_latency_ns: float
    load_energy_joules: float
    stream_latency_ns: float
    stream_energy_joules: float

    @property
    def total_latency_ns(self) -> float:
        return self.load_latency_ns + self.stream_latency_ns

    @property
    def total_energy_joules(self) -> float:
        return self.load_energy_joules + self.stream_energy_joules

    @property
    def amortised_latency_per_read_ns(self) -> float:
        return self.total_latency_ns / self.n_reads

    @property
    def amortised_energy_per_read_joules(self) -> float:
        return self.total_energy_joules / self.n_reads

    @property
    def reads_per_second(self) -> float:
        return self.n_reads / (self.total_latency_ns * 1e-9)


class BatchScheduler:
    """Load-then-stream batch cost model for one accelerator.

    Parameters
    ----------
    config:
        The accelerator configuration.
    searches_per_read:
        Average searches issued per read (strategy overhead).
    """

    def __init__(self, config: "ArchConfig | None" = None,
                 searches_per_read: float = 1.0):
        self._config = config or ArchConfig.paper_system()
        if searches_per_read <= 0:
            raise ArchConfigError(
                f"searches_per_read must be positive, got {searches_per_read}"
            )
        self._searches_per_read = searches_per_read
        self._buffer = GlobalBuffer()
        self._htree = HTreeModel(self._config.n_arrays)
        self._controller = Controller()
        self._timing = TimingModel(domain=self._config.domain)

    def load_cost(self, n_segments: int) -> tuple[float, float]:
        """(latency_ns, energy_joules) to write *n_segments* rows.

        Arrays load concurrently; the slowest array writes
        ``ceil(n_segments / n_arrays)`` rows... rows are distributed
        round-robin in practice, but the accelerator fills array 0
        first, so the bound is rows-in-fullest-array.
        """
        if n_segments <= 0:
            raise ArchConfigError(
                f"n_segments must be positive, got {n_segments}"
            )
        if n_segments > self._config.total_segments:
            raise ArchConfigError(
                f"{n_segments} segments exceed system capacity "
                f"{self._config.total_segments}"
            )
        ranges = bank_row_ranges(n_segments, self._config.n_arrays,
                                 bank_capacity=self._config.array_rows)
        rows_in_fullest = max(stop - start for start, stop in ranges)
        latency = rows_in_fullest * ROW_WRITE_NS
        energy = n_segments * ROW_WRITE_ENERGY_J
        return latency, energy

    def front_end_latency_ns(self) -> float:
        """Fetch + broadcast + dispatch for one read."""
        return (self._buffer.fetch_latency_ns()
                + self._htree.broadcast_latency_ns()
                + self._controller.dispatch_latency_ns(1))

    def search_path_latency_ns(self) -> float:
        """Array-side latency per read (all its searches)."""
        return self._timing.read_match_latency_ns(
            max(1, round(self._searches_per_read))
        )

    def schedule(self, n_reads: int, n_segments: int) -> BatchSchedule:
        """Cost a full load-then-stream batch."""
        if n_reads <= 0:
            raise ArchConfigError(f"n_reads must be positive, got {n_reads}")
        load_latency, load_energy = self.load_cost(n_segments)

        front = self.front_end_latency_ns()
        search = self.search_path_latency_ns()
        stage = max(front, search)
        stream_latency = front + n_reads * stage

        per_array = sum(component_energies_per_search().values())
        read_bits = self._config.read_bits
        per_read_energy = (
            self._buffer.fetch_energy_joules(read_bits)
            + self._htree.broadcast_energy_joules(read_bits)
            + self._controller.dispatch_energy_joules(1)
            + per_array * self._config.n_arrays * self._searches_per_read
        )
        return BatchSchedule(
            n_reads=n_reads,
            n_segments=n_segments,
            load_latency_ns=load_latency,
            load_energy_joules=load_energy,
            stream_latency_ns=stream_latency,
            stream_energy_joules=per_read_energy * n_reads,
        )

    def break_even_reads(self, n_segments: int,
                         per_read_alternative_ns: float) -> int:
        """Reads needed before loading beats an alternative mapper.

        Solves ``load + n * stage <= n * alternative`` for the smallest
        integer ``n`` (returns a large sentinel when the alternative is
        faster per read and loading never pays off).
        """
        if per_read_alternative_ns <= 0:
            raise ArchConfigError("alternative latency must be positive")
        load_latency, _ = self.load_cost(n_segments)
        stage = max(self.front_end_latency_ns(),
                    self.search_path_latency_ns())
        if per_read_alternative_ns <= stage:
            return 1 << 62
        import math
        return max(1, math.ceil(load_latency
                                / (per_read_alternative_ns - stage)))
