"""Cycle-level timing model for the search data path.

The latency of matching one read decomposes into (Sections III-IV):

* buffer fetch + H-tree broadcast (per read);
* one search cycle per issued search operation — the base ED* search,
  plus one for HDAC's Hamming search when enabled, plus one per TASR
  rotation (the paper: "one more cycle" for HDAC, "NR more cycles" for
  TASR);
* shift-register cycles for the rotations themselves (one per base of
  net rotation, far faster than a search cycle).

ASMCap's search cycle (0.9 ns) skips EDAM's pre-charge and sample/hold
phases (2.4 ns) — Table I.  The per-phase split below decomposes EDAM's
cycle so the benches can show *why* it is slower; the totals are the
Table I anchors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ArchConfigError

#: EDAM cycle phase decomposition (sums to the 2.4 ns Table I anchor).
EDAM_PRECHARGE_NS = 0.8
EDAM_DISCHARGE_NS = 0.9
EDAM_SAMPLE_HOLD_NS = 0.7

#: Shift-register cycle (one base of rotation).
SHIFT_CYCLE_NS = 0.1


@dataclass(frozen=True)
class TimingModel:
    """Latency accounting for one accelerator flavour."""

    domain: str = "charge"
    shift_cycle_ns: float = SHIFT_CYCLE_NS

    def __post_init__(self) -> None:
        if self.domain not in ("charge", "current"):
            raise ArchConfigError(
                f"domain must be 'charge' or 'current', got {self.domain!r}"
            )

    @property
    def search_cycle_ns(self) -> float:
        """One in-array search operation."""
        if self.domain == "charge":
            return constants.ASMCAP_SEARCH_TIME_NS
        return constants.EDAM_SEARCH_TIME_NS

    def search_phases_ns(self) -> dict[str, float]:
        """Per-phase breakdown of the search cycle."""
        if self.domain == "charge":
            # No pre-charge, no sample/hold: evaluate + sense only.
            return {"evaluate": 0.6, "sense": 0.3}
        return {
            "precharge": EDAM_PRECHARGE_NS,
            "discharge": EDAM_DISCHARGE_NS,
            "sample_hold": EDAM_SAMPLE_HOLD_NS,
        }

    def read_match_latency_ns(self, n_searches: int,
                              rotation_cycles: int = 0) -> float:
        """Array-level latency for matching one read.

        ``n_searches`` counts every issued search (base + HD + rotated);
        ``rotation_cycles`` counts single-base register shifts.
        """
        if n_searches <= 0:
            raise ArchConfigError(
                f"n_searches must be positive, got {n_searches}"
            )
        if rotation_cycles < 0:
            raise ArchConfigError(
                f"rotation_cycles must be non-negative, got {rotation_cycles}"
            )
        return (n_searches * self.search_cycle_ns
                + rotation_cycles * self.shift_cycle_ns)

    def throughput_reads_per_second(self, searches_per_read: float,
                                    rotation_cycles_per_read: float = 0.0
                                    ) -> float:
        """Steady-state reads/s of one array issuing back-to-back searches."""
        latency = (searches_per_read * self.search_cycle_ns
                   + rotation_cycles_per_read * self.shift_cycle_ns)
        if latency <= 0.0:
            raise ArchConfigError("per-read latency must be positive")
        return 1e9 / latency
