"""Global buffer and controller models (Fig. 4(a)).

The global buffer stages reads (or k-mers) fetched from memory before
broadcasting them into the H-tree; the controller sequences search
operations according to host instructions.  Both are small, simple cost
contributors — SRAM-buffer access energy per bit and a fixed per-search
control overhead — but modelling them keeps the system-level accounting
honest (ASMCap's speedups over the non-CAM baselines are so large that
ignoring peripheral overheads would overstate them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchConfigError

#: SRAM buffer access energy per bit (65 nm class).
BUFFER_ENERGY_PER_BIT_J = 5e-15

#: Buffer access latency per read fetch.
BUFFER_LATENCY_NS = 0.3

#: Controller decode/dispatch overhead per issued search.
CONTROL_LATENCY_NS = 0.1

#: Controller energy per issued search.
CONTROL_ENERGY_J = 50e-15


@dataclass(frozen=True)
class GlobalBuffer:
    """Read-staging buffer cost model."""

    energy_per_bit_j: float = BUFFER_ENERGY_PER_BIT_J
    latency_ns: float = BUFFER_LATENCY_NS

    def fetch_energy_joules(self, n_bits: int) -> float:
        """Energy to stage *n_bits* for broadcast."""
        if n_bits < 0:
            raise ArchConfigError(f"n_bits must be non-negative, got {n_bits}")
        return n_bits * self.energy_per_bit_j

    def fetch_latency_ns(self) -> float:
        return self.latency_ns


@dataclass(frozen=True)
class Controller:
    """Search-sequencing controller cost model."""

    latency_per_search_ns: float = CONTROL_LATENCY_NS
    energy_per_search_j: float = CONTROL_ENERGY_J

    def dispatch_latency_ns(self, n_searches: int) -> float:
        if n_searches < 0:
            raise ArchConfigError(
                f"n_searches must be non-negative, got {n_searches}"
            )
        return n_searches * self.latency_per_search_ns

    def dispatch_energy_joules(self, n_searches: int) -> float:
        if n_searches < 0:
            raise ArchConfigError(
                f"n_searches must be non-negative, got {n_searches}"
            )
        return n_searches * self.energy_per_search_j
