"""Area and power models: Section V-B breakdown and Table I rows.

**Area.**  Cell area scales with the transistor budget at a per-
transistor area calibrated to the ASMCap anchor (24 um^2 for a 28-T
cell at 65 nm).  The MIM capacitor sits above the cell (no footprint,
Section V-C).  Peripherals (decoder, WL/SL drivers, SAs, shift
registers) add well under 1 % for a 256 x 256 array, reproducing the
">99 % of area is cells" claim.

**Power.**  Steady-state array power is the per-search energy of each
component (cells via Eq. (1) at the typical genome ED* activity,
shift registers, SAs) divided by the steady-state search period.  The
period is *derived* from the 7.67 mW Section V-B anchor once, here, and
the resulting component fractions (~75 / 19 / 6 %) then follow from the
component energy models — they are checked, not hard-coded.

Since the cost-ledger refactor the per-component energies are read
from :func:`repro.cost.views.component_energies` over a synthetic
typical-activity search pass
(:func:`repro.cost.profile.typical_search_event`) — the same view
every *measured* pass of the functional engine flows through, so the
Section V-B breakdown, Table I and the ledger cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.cam.cell import AsmCapCell
from repro.cost.profile import typical_search_event
from repro.cost.views import component_energies
from repro.errors import ArchConfigError

#: Layout area per transistor, calibrated so a 28-transistor ASMCap cell
#: occupies the Table-I 24 um^2 at 65 nm.
AREA_PER_TRANSISTOR_UM2 = constants.ASMCAP_CELL_AREA_UM2 / AsmCapCell.TRANSISTOR_COUNT

#: Peripheral area per array (decoder + drivers + SAs + shift registers),
#: 65 nm estimate for a 256-row / 512-searchline array.
PERIPHERAL_AREA_UM2 = 8000.0


def cell_area_um2(transistor_count: int = AsmCapCell.TRANSISTOR_COUNT) -> float:
    """Cell area from its transistor budget."""
    if transistor_count <= 0:
        raise ArchConfigError(
            f"transistor_count must be positive, got {transistor_count}"
        )
    return transistor_count * AREA_PER_TRANSISTOR_UM2


def array_area_mm2(rows: int = constants.ARRAY_ROWS,
                   cols: int = constants.ARRAY_COLS,
                   cell_um2: "float | None" = None) -> float:
    """Total array area in mm^2 (cells + peripherals)."""
    if rows <= 0 or cols <= 0:
        raise ArchConfigError(f"geometry must be positive, got {rows}x{cols}")
    cell = constants.ASMCAP_CELL_AREA_UM2 if cell_um2 is None else cell_um2
    return (rows * cols * cell + PERIPHERAL_AREA_UM2) * 1e-6


def cell_area_fraction(rows: int = constants.ARRAY_ROWS,
                       cols: int = constants.ARRAY_COLS) -> float:
    """Fraction of array area occupied by cells (paper: > 99 %)."""
    cells = rows * cols * constants.ASMCAP_CELL_AREA_UM2
    return cells / (cells + PERIPHERAL_AREA_UM2)


@dataclass(frozen=True)
class PowerBreakdown:
    """Steady-state power of one array, split by component (watts)."""

    cells_w: float
    shift_registers_w: float
    sense_amps_w: float

    @property
    def total_w(self) -> float:
        return self.cells_w + self.shift_registers_w + self.sense_amps_w

    @property
    def fractions(self) -> dict[str, float]:
        total = self.total_w
        if total == 0.0:
            return {"cells": 0.0, "shift_registers": 0.0, "sense_amps": 0.0}
        return {
            "cells": self.cells_w / total,
            "shift_registers": self.shift_registers_w / total,
            "sense_amps": self.sense_amps_w / total,
        }


def component_energies_per_search(rows: int = constants.ARRAY_ROWS,
                                  cols: int = constants.ARRAY_COLS,
                                  mismatch_fraction: float =
                                  constants.TYPICAL_ED_STAR_MISMATCH_FRACTION,
                                  vdd: float = constants.VDD_VOLTS
                                  ) -> dict[str, float]:
    """Per-search energy of each array component at typical activity.

    Computed as the ledger view over a synthetic typical-activity pass
    (every row at the typical ED* mismatch fraction), i.e. exactly the
    accounting a measured pass of the functional engine receives.
    """
    if not 0.0 <= mismatch_fraction <= 1.0:
        raise ArchConfigError("mismatch_fraction must be in [0, 1]")
    event = typical_search_event(rows=rows, cols=cols,
                                 mismatch_fraction=mismatch_fraction,
                                 vdd=vdd)
    return component_energies(event)


def steady_state_search_period_ns(rows: int = constants.ARRAY_ROWS,
                                  cols: int = constants.ARRAY_COLS) -> float:
    """Search issue period implied by the 7.67 mW Section V-B anchor."""
    energies = component_energies_per_search(rows, cols)
    total = sum(energies.values())
    return total / (constants.ARRAY_POWER_MW * 1e-3) * 1e9


def array_power_breakdown(rows: int = constants.ARRAY_ROWS,
                          cols: int = constants.ARRAY_COLS,
                          period_ns: "float | None" = None) -> PowerBreakdown:
    """Steady-state power split of one array.

    With the default (anchor-derived) period the total reproduces the
    7.67 mW figure exactly; the *split* across components comes from
    the component energy models.
    """
    energies = component_energies_per_search(rows, cols)
    if period_ns is None:
        period_ns = steady_state_search_period_ns(rows, cols)
    if period_ns <= 0.0:
        raise ArchConfigError(f"period must be positive, got {period_ns}")
    scale = 1.0 / (period_ns * 1e-9)
    return PowerBreakdown(
        cells_w=energies["cells"] * scale,
        shift_registers_w=energies["shift_registers"] * scale,
        sense_amps_w=energies["sense_amps"] * scale,
    )
