"""The assembled accelerator: arrays + buffer + H-tree + controller.

:class:`AsmCapAccelerator` offers two complementary paths:

* a **functional path** (``match_read`` / ``match_batch``): reads are
  broadcast to every array, each array searches its stored segments
  (with full strategy support through per-array matchers), and the
  result maps global segment indices to decisions.  Use moderate array
  counts here — it simulates every cell.

* an **analytic path** (``estimate_read_cost``): closed-form per-read
  latency/energy at full system scale (512 arrays) from the timing and
  energy models plus strategy statistics (how many searches per read on
  average).  Fig. 8 uses this, with strategy statistics measured on the
  functional path at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.arch.buffer import Controller, GlobalBuffer
from repro.arch.config import ArchConfig
from repro.arch.htree import HTreeModel
from repro.arch.timing import TimingModel
from repro.cam.array import CamArray
from repro.cam.energy import search_energy_per_row
from repro.core.matcher import (
    AsmCapMatcher,
    MatchBatchOutcome,
    MatcherConfig,
    MatchOutcome,
)
from repro.cost.events import BufferBroadcast, ReferenceLoad
from repro.cost.ledger import CostLedger
from repro.cost.profile import StrategyProfile
from repro.errors import ArchConfigError
from repro.genome.edits import ErrorModel


@dataclass(frozen=True)
class SystemMatch:
    """One read's system-level result.

    ``matches`` maps global segment index -> True for every matched
    stored segment across all arrays.
    """

    matches: np.ndarray
    latency_ns: float
    energy_joules: float
    n_searches: int


@dataclass(frozen=True)
class ReadCostEstimate:
    """Analytic per-read cost at full system scale."""

    latency_ns: float
    energy_joules: float
    searches_per_read: float
    reads_per_second: float

    @property
    def reads_per_joule(self) -> float:
        if self.energy_joules == 0.0:
            return float("inf")
        return 1.0 / self.energy_joules


class AsmCapAccelerator:
    """Multi-array accelerator with system-level cost accounting.

    Parameters
    ----------
    config:
        Architecture geometry/domain.
    error_model:
        Workload error rates (drives the strategies).
    matcher_config:
        Strategy configuration shared by all arrays.
    n_functional_arrays:
        How many arrays to actually instantiate for the functional
        path; defaults to ``config.n_arrays`` (cap it for speed).
    backend:
        Kernel backend for every functional array's mismatch-count
        primitives (``None`` = the standard selection order; see
        :mod:`repro.kernels`).
    """

    def __init__(self, config: "ArchConfig | None" = None,
                 error_model: "ErrorModel | None" = None,
                 matcher_config: "MatcherConfig | None" = None,
                 n_functional_arrays: "int | None" = None,
                 seed: int = 0,
                 noisy: bool = True,
                 backend: "str | None" = None):
        self._config = config or ArchConfig.paper_system()
        self._model = error_model or ErrorModel.condition_a()
        self._matcher_config = matcher_config or MatcherConfig()
        n_func = (self._config.n_arrays if n_functional_arrays is None
                  else n_functional_arrays)
        if not 1 <= n_func <= self._config.n_arrays:
            raise ArchConfigError(
                f"n_functional_arrays must be in 1..{self._config.n_arrays}, "
                f"got {n_func}"
            )
        self._arrays = [
            CamArray(rows=self._config.array_rows,
                     cols=self._config.array_cols,
                     domain=self._config.domain,
                     noisy=noisy, seed=seed + i,
                     backend=backend)
            for i in range(n_func)
        ]
        self._matchers = [
            AsmCapMatcher(array, self._model, self._matcher_config,
                          seed=seed + 1000 + i)
            for i, array in enumerate(self._arrays)
        ]
        self._htree = HTreeModel(self._config.n_arrays)
        self._buffer = GlobalBuffer()
        self._controller = Controller()
        self._timing = TimingModel(domain=self._config.domain)
        self._loaded_segments = 0
        #: System-level traffic events (reference loads, broadcasts);
        #: the per-array search passes live in each array's ledger.
        self.ledger = CostLedger()

    # -- introspection -----------------------------------------------------

    @property
    def config(self) -> ArchConfig:
        return self._config

    @property
    def arrays(self) -> list[CamArray]:
        return self._arrays

    @property
    def timing(self) -> TimingModel:
        return self._timing

    @property
    def n_functional_arrays(self) -> int:
        return len(self._arrays)

    @property
    def loaded_segments(self) -> int:
        return self._loaded_segments

    def merged_ledger(self) -> CostLedger:
        """One deterministic ledger over the whole system: the
        accelerator's traffic events, then every functional array's
        search passes in array order.  Arrays contribute search passes
        only — their per-chunk ``ReferenceLoad`` events cover the same
        rows as the accelerator's system-level load and would double
        count the storage traffic."""
        return CostLedger.merged(
            self.ledger,
            *(CostLedger(array.ledger.search_passes())
              for array in self._arrays),
        )

    # -- data loading ------------------------------------------------------

    def load_reference(self, segments: np.ndarray) -> None:
        """Distribute reference segments across the functional arrays.

        Segments fill array 0's rows first, then array 1, etc.
        """
        segments = np.asarray(segments, dtype=np.uint8)
        if segments.ndim != 2 or segments.shape[1] != self._config.array_cols:
            raise ArchConfigError(
                f"segments shape {segments.shape} does not fit column width "
                f"{self._config.array_cols}"
            )
        capacity = self.n_functional_arrays * self._config.array_rows
        if segments.shape[0] > capacity:
            raise ArchConfigError(
                f"{segments.shape[0]} segments exceed functional capacity "
                f"{capacity}"
            )
        rows = self._config.array_rows
        for index, array in enumerate(self._arrays):
            chunk = segments[index * rows : (index + 1) * rows]
            if chunk.shape[0] == 0:
                break
            array.store(chunk)
        self._loaded_segments = int(segments.shape[0])
        self.ledger.record(ReferenceLoad(
            n_segments=self._loaded_segments,
            n_cells=self._config.array_cols,
        ))

    # -- functional path ------------------------------------------------

    def match_read(self, read: np.ndarray, threshold: int) -> SystemMatch:
        """Broadcast one read to all arrays and merge decisions."""
        if self._loaded_segments == 0:
            raise ArchConfigError("no reference loaded")
        read = np.asarray(read, dtype=np.uint8)
        self.ledger.record(BufferBroadcast(
            n_reads=1, read_bits=self._config.read_bits,
        ))
        decisions: list[np.ndarray] = []
        array_energy = 0.0
        array_latency = 0.0
        n_searches = 0
        for matcher in self._matchers:
            if matcher.array.plane.n_written == 0:
                break
            outcome: MatchOutcome = matcher.match(read, threshold)
            decisions.append(outcome.decisions)
            array_energy += outcome.energy_joules
            # Arrays operate in parallel: latency is the max, and all
            # arrays issue the same search schedule, so any one works.
            array_latency = max(array_latency, outcome.latency_ns)
            n_searches = max(n_searches, outcome.n_searches)
        merged = np.concatenate(decisions)[: self._loaded_segments]
        fetch_latency = self._buffer.fetch_latency_ns()
        broadcast_latency = self._htree.broadcast_latency_ns()
        dispatch_latency = self._controller.dispatch_latency_ns(n_searches)
        fetch_energy = self._buffer.fetch_energy_joules(self._config.read_bits)
        broadcast_energy = self._htree.broadcast_energy_joules(
            self._config.read_bits
        )
        dispatch_energy = self._controller.dispatch_energy_joules(n_searches)
        return SystemMatch(
            matches=merged,
            latency_ns=(fetch_latency + broadcast_latency + dispatch_latency
                        + array_latency),
            energy_joules=(fetch_energy + broadcast_energy + dispatch_energy
                           + array_energy),
            n_searches=n_searches,
        )

    def match_batch(self, reads: "list[np.ndarray] | np.ndarray",
                    threshold: int,
                    query_keys: "list[int] | None" = None
                    ) -> list[SystemMatch]:
        """Broadcast a read block to every array in one batched pass.

        The software image of Fig. 4(a)'s steady state: the global
        buffer streams the whole ``(B, N)`` block down the H-tree and
        every array runs its vectorised
        :meth:`~repro.core.matcher.AsmCapMatcher.match_batch` over it —
        ED*, masked HDAC and TASR passes included — instead of looping
        reads through :meth:`match_read` one at a time.  Per-read
        decisions merge across arrays in global segment order; energy
        sums over arrays while array latency takes the max (arrays
        search in parallel behind the H-tree).

        Determinism is anchored on per-read ``query_keys`` (default:
        the read's position in the block), so chunked calls that pass
        global positions compose bit-identically — matches, energy and
        latency alike (the regression tests pin this composition).
        Reads that need the legacy *sequential* noise stream go
        through :meth:`match_read` one at a time.
        """
        if self._loaded_segments == 0:
            raise ArchConfigError("no reference loaded")
        codes = np.asarray(reads, dtype=np.uint8)
        if codes.ndim != 2:
            raise ArchConfigError(
                f"match_batch needs a (B, N) read block, got shape "
                f"{codes.shape}"
            )
        n_reads = codes.shape[0]
        if n_reads == 0:
            return []
        self.ledger.record(BufferBroadcast(
            n_reads=n_reads, read_bits=self._config.read_bits,
        ))
        outcomes: list[MatchBatchOutcome] = []
        for matcher in self._matchers:
            if matcher.array.plane.n_written == 0:
                break
            outcomes.append(
                matcher.match_batch(codes, threshold,
                                    query_keys=query_keys)
            )
        merged = np.hstack([o.decisions for o in outcomes])
        merged = merged[:, : self._loaded_segments]
        array_energy = np.sum([o.energy_joules for o in outcomes], axis=0)
        array_latency = np.max([o.latency_ns for o in outcomes], axis=0)
        # All arrays issue the same per-read search schedule.
        n_searches = np.max([o.n_searches for o in outcomes], axis=0)

        fetch_latency = self._buffer.fetch_latency_ns()
        broadcast_latency = self._htree.broadcast_latency_ns()
        fetch_energy = self._buffer.fetch_energy_joules(
            self._config.read_bits
        )
        broadcast_energy = self._htree.broadcast_energy_joules(
            self._config.read_bits
        )
        results: list[SystemMatch] = []
        for q in range(n_reads):
            searches = int(n_searches[q])
            results.append(SystemMatch(
                matches=merged[q],
                latency_ns=(fetch_latency + broadcast_latency
                            + self._controller.dispatch_latency_ns(searches)
                            + float(array_latency[q])),
                energy_joules=(fetch_energy + broadcast_energy
                               + self._controller.dispatch_energy_joules(
                                   searches)
                               + float(array_energy[q])),
                n_searches=searches,
            ))
        return results

    # -- analytic path ------------------------------------------------------

    def estimate_read_cost(self, profile: "StrategyProfile | None" = None,
                           *,
                           mismatch_fraction: float =
                           constants.TYPICAL_ED_STAR_MISMATCH_FRACTION
                           ) -> ReadCostEstimate:
        """Closed-form per-read cost at full configured scale.

        Parameters
        ----------
        profile:
            The workload's :class:`~repro.cost.profile.StrategyProfile`
            — the strategy statistics (searches and rotation cycles per
            read); measure it with
            :func:`repro.cost.profile.measure_strategy_profile` (one
            ``match_sweep`` pass per condition) or build one
            analytically.  ``None`` means the strategy-free baseline,
            :meth:`~repro.cost.profile.StrategyProfile.plain` (one ED*
            search, no rotations).
        mismatch_fraction:
            Typical per-row ED* mismatch fraction for the energy model.
        """
        if profile is None:
            profile = StrategyProfile.plain()
        elif not isinstance(profile, StrategyProfile):
            raise ArchConfigError(
                f"estimate_read_cost takes a StrategyProfile, got "
                f"{type(profile).__name__} (build one with "
                f"measure_strategy_profile or StrategyProfile.plain())"
            )
        searches_per_read = profile.searches_per_read
        rotation_cycles_per_read = profile.rotation_cycles_per_read
        if searches_per_read <= 0.0:
            raise ArchConfigError("searches_per_read must be positive")
        cols = self._config.array_cols
        rows = self._config.array_rows
        n_arrays = self._config.n_arrays

        latency = (
            self._buffer.fetch_latency_ns()
            + self._htree.broadcast_latency_ns()
            + self._controller.dispatch_latency_ns(1) * searches_per_read
            + self._timing.read_match_latency_ns(1) * searches_per_read
            + rotation_cycles_per_read * self._timing.shift_cycle_ns
        )

        n_mis = np.full(rows, mismatch_fraction * cols)
        if self._config.domain == "charge":
            array_energy = float(
                search_energy_per_row(n_mis, cols, vdd=self._config.vdd).sum()
            )
        else:
            array_energy = (
                constants.EDAM_ML_PRECHARGE_CAP_F * self._config.vdd**2 * rows
                + constants.EDAM_DISCHARGE_ENERGY_PER_MISMATCH_J
                * float(n_mis.sum())
            )
        array_energy += constants.SA_ENERGY_PER_ROW_J * rows
        array_energy += constants.SHIFT_REGISTER_ENERGY_PER_SEARCH_J
        energy = (
            self._buffer.fetch_energy_joules(self._config.read_bits)
            + self._htree.broadcast_energy_joules(self._config.read_bits)
            + self._controller.dispatch_energy_joules(1) * searches_per_read
            + array_energy * n_arrays * searches_per_read
        )
        return ReadCostEstimate(
            latency_ns=latency,
            energy_joules=energy,
            searches_per_read=searches_per_read,
            reads_per_second=1e9 / latency,
        )
