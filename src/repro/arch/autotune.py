"""Shard/chunk autotuning: pick execution parameters from the workload.

PR 1's sharded pipeline took ``n_shards`` and ``chunk_size`` as
constants, which silently mis-sizes both extremes: a 64-row reference
split across 16 shards wastes every worker on 4-row arrays, while a
million-row reference on 4 shards leaves cores idle.  This module
derives the parameters from the only two things that matter — the
reference size and the machine — with the same memory-bounding logic
the array's batched GEMM path uses.

Heuristics (all clamped, all deterministic given their inputs):

* **shards** — one worker core per shard, but never shards smaller
  than :data:`MIN_ROWS_PER_SHARD` rows (a shard must amortise its
  per-pass Python overhead over enough matchline rows) and never more
  shards than rows.
* **chunk size** — bound the peak boolean/one-hot working set of one
  worker's vectorised pass to :data:`TARGET_CHUNK_ELEMS` elements,
  mirroring ``repro.cam.array``'s internal chunking, and keep chunks
  large enough (:data:`MIN_CHUNK_READS`) that per-chunk dispatch cost
  stays negligible.
* **workers** — one thread per shard, capped at the CPU count (numpy
  releases the GIL inside the comparison kernels, so threads scale
  until cores run out).

The Monte-Carlo sweep runner reuses the same machine signal through
:func:`sweep_worker_count` (independent repetitions, so the only cap
is cores vs runs), and the streaming service sizes its micro-batches
through :func:`plan_microbatch` (the same working-set bound, applied
to the coalescing buffer a long-running feed accumulates between
dispatches).

The multi-session frontend (:mod:`repro.service.frontend`) sizes its
persistent dispatch pool through :func:`plan_service_pool`: session
dispatches are independent of each other, but a *sharded* session's
dispatch itself fans out across shard workers, so the session-level
worker count divides the core budget by the per-dispatch fan-out
width (stacking both levels at full width would only oversubscribe
the cores), and the backlog bound scales with the worker count so
backpressure engages before the queue outruns the pool.

The kernel-backend registry (:mod:`repro.kernels`) resolves its
autotune tail here too: :func:`plan_backend` micro-calibrates every
registered backend once per process and caches the winner — the last
step of the selection order (explicit ``backend=`` knob >
``REPRO_KERNEL_BACKEND`` env var > calibration).

The sharded fan-out's *execution engine* (worker threads vs worker
processes over shared-memory references — :mod:`repro.parallel`)
resolves here as well: :func:`plan_engine` is the autotune tail of the
selection order (explicit ``engine=`` knob > ``REPRO_EXECUTION_ENGINE``
env var > this), implemented by :func:`resolve_engine`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.errors import ArchConfigError, CamConfigError

#: A shard below this many rows spends more time in per-pass Python
#: dispatch than in the vectorised compare kernels.
MIN_ROWS_PER_SHARD = 32

#: Target element count of one worker chunk's comparison working set
#: (matches the kernel backends' ``repro.kernels.base.CHUNK_ELEMS``
#: bound: ~8 MB of boolean planes).
TARGET_CHUNK_ELEMS = 1 << 23

#: Lower bound on reads per chunk — below this the chunk bookkeeping
#: dominates.
MIN_CHUNK_READS = 64

#: Upper bound on reads per chunk — above this the merged per-pass
#: blocks stop fitting in outer caches regardless of element budget.
MAX_CHUNK_READS = 8192


@dataclass(frozen=True)
class ShardPlan:
    """Autotuned execution parameters for a sharded pipeline run.

    Attributes
    ----------
    n_shards:
        CAM-array shards to partition the reference across.
    chunk_size:
        Reads per worker task.
    max_workers:
        Worker threads for the shard fan-out.
    """

    n_shards: int
    chunk_size: int
    max_workers: int


def available_cpus(cpu_count: "int | None" = None) -> int:
    """The core budget used by every heuristic (>= 1)."""
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    return max(1, int(cpu_count))


def plan_shards(n_rows: int, cols: int,
                cpu_count: "int | None" = None) -> ShardPlan:
    """Pick ``(n_shards, chunk_size, max_workers)`` for a reference.

    Parameters
    ----------
    n_rows:
        Reference segment rows to be partitioned across shards.
    cols:
        Segment width in bases (drives the per-read memory bound).
    cpu_count:
        Core budget; defaults to ``os.cpu_count()``.  Explicit values
        make plans reproducible across machines (tests pin this).
    """
    if n_rows <= 0:
        raise ArchConfigError(f"n_rows must be positive, got {n_rows}")
    if cols <= 0:
        raise ArchConfigError(f"cols must be positive, got {cols}")
    cpus = available_cpus(cpu_count)
    by_size = max(1, n_rows // MIN_ROWS_PER_SHARD)
    n_shards = max(1, min(cpus, by_size, n_rows))

    rows_per_shard = -(-n_rows // n_shards)  # ceil
    return ShardPlan(n_shards=n_shards,
                     chunk_size=_chunk_reads(rows_per_shard, cols),
                     max_workers=min(n_shards, cpus))


def _chunk_reads(rows_per_shard: int, cols: int) -> int:
    """Reads per dispatch bounding one vectorised pass's working set.

    One block materialises roughly a ``(chunk, rows_per_shard)`` count
    matrix plus a ``(chunk, cols * 4)`` one-hot encoding per pass;
    bound the larger of the two to :data:`TARGET_CHUNK_ELEMS`, clamped
    to ``[MIN_CHUNK_READS, MAX_CHUNK_READS]``.  Shared by the worker
    chunking (:func:`plan_shards`) and the streaming micro-batches
    (:func:`plan_microbatch`) so the two sizings cannot drift.
    """
    per_read_elems = max(rows_per_shard, cols * 4, 1)
    chunk = TARGET_CHUNK_ELEMS // per_read_elems
    return int(min(MAX_CHUNK_READS, max(MIN_CHUNK_READS, chunk)))


def plan_microbatch(n_rows: int, cols: int,
                    n_shards: int = 1) -> int:
    """Reads per streaming micro-batch for a reference of this size.

    The streaming service coalesces incrementally-submitted reads and
    dispatches them through the batched (or sharded) engine once a
    micro-batch is full.  The size balances the same two forces the
    worker-chunk heuristic does: batches big enough to amortise
    per-dispatch Python overhead over the vectorised passes
    (:data:`MIN_CHUNK_READS`), small enough that one dispatch's
    comparison working set stays inside the array's ~8 MB target
    (:data:`TARGET_CHUNK_ELEMS`) — with the per-read footprint taken
    from the *largest* shard when the reference is partitioned.

    Parameters
    ----------
    n_rows:
        Total reference segment rows stored across the system.
    cols:
        Segment width in bases.
    n_shards:
        Shards the rows are partitioned across (1 = single array);
        each shard sees the whole micro-batch, so the bound applies
        per shard.
    """
    if n_rows <= 0:
        raise ArchConfigError(f"n_rows must be positive, got {n_rows}")
    if cols <= 0:
        raise ArchConfigError(f"cols must be positive, got {cols}")
    if n_shards <= 0:
        raise ArchConfigError(f"n_shards must be positive, got {n_shards}")
    rows_per_shard = -(-n_rows // n_shards)  # ceil
    return _chunk_reads(rows_per_shard, cols)


@dataclass(frozen=True)
class ServicePoolPlan:
    """Autotuned sizing for a multi-session service frontend.

    Attributes
    ----------
    n_workers:
        Persistent dispatch-worker threads (concurrent micro-batch
        dispatches across sessions).
    shard_workers:
        Threads of the *shared* shard fan-out executor (sharded
        engine only; 0 when the engine has a single array).
    max_backlog:
        Queued micro-batches (across all sessions) before submits
        block or fail — the frontend's backpressure bound.
    """

    n_workers: int
    shard_workers: int
    max_backlog: int


#: Minimum frontend backlog: even a one-core host should absorb a
#: small burst before backpressure engages.
MIN_SERVICE_BACKLOG = 8


def plan_service_pool(n_shards: int = 1,
                      cpu_count: "int | None" = None) -> ServicePoolPlan:
    """Size the frontend's dispatch pool for this machine.

    Parameters
    ----------
    n_shards:
        Shard fan-out width of one session dispatch (1 = the batched
        engine's single array).
    cpu_count:
        Core budget; defaults to ``os.cpu_count()``.  Explicit values
        make plans reproducible across machines (tests pin this).
    """
    if n_shards < 1:
        raise ArchConfigError(f"n_shards must be positive, got {n_shards}")
    cpus = available_cpus(cpu_count)
    fanout = min(int(n_shards), cpus)
    n_workers = max(1, cpus // fanout)
    shard_workers = 0 if n_shards == 1 else min(cpus, fanout * n_workers)
    return ServicePoolPlan(
        n_workers=n_workers,
        shard_workers=shard_workers,
        max_backlog=max(MIN_SERVICE_BACKLOG, 2 * n_workers),
    )


def sweep_worker_count(n_runs: int,
                       cpu_count: "int | None" = None) -> int:
    """Worker threads for a Monte-Carlo sweep of independent runs.

    Each repetition owns its dataset, arrays and noise streams, so runs
    parallelise freely; the only cap is cores (and it never pays to
    spawn more workers than runs).
    """
    if n_runs < 1:
        raise ArchConfigError(f"n_runs must be positive, got {n_runs}")
    return max(1, min(int(n_runs), available_cpus(cpu_count)))


# -- execution-engine selection ---------------------------------------------

#: The sharded fan-out's execution engines: worker threads sharing the
#: parent's memory, or worker processes attaching the encoded
#: reference through shared memory (:mod:`repro.parallel`).
EXECUTION_ENGINES = ("thread", "process")

#: Environment knob forcing the execution engine (mirrors
#: ``REPRO_KERNEL_BACKEND``): explicit ``engine=`` > this > autotune.
ENGINE_ENV = "REPRO_EXECUTION_ENGINE"

#: Below this core budget a process pool only adds spawn/IPC overhead
#: on top of thread workers that already release the GIL in the
#: vectorised kernels.
PROCESS_MIN_CPUS = 4

#: Encoded-reference bytes per stored cell: 1 (segments) + 16 (float32
#: one-hot) + the 2-bit packed planes and masks (~0.25) — the payload
#: :func:`repro.parallel.share_stored_reference` puts in shared memory.
ENCODED_BYTES_PER_CELL = 17

#: References whose encoded payload is smaller than this amortise
#: neither the worker spawn nor the per-task queue hop; keep them on
#: threads.
PROCESS_MIN_REFERENCE_BYTES = 1 << 22


def estimate_stored_reference_bytes(n_rows: int, cols: int) -> int:
    """Approximate encoded-payload bytes of one stored reference.

    :data:`ENCODED_BYTES_PER_CELL` over the reference geometry — the
    same estimate :func:`plan_engine` thresholds on, exposed so a
    :class:`~repro.refstore.ReferenceCatalog` byte budget can be sized
    from reference shapes before any file exists.  An upper-ish bound
    on the true store-file size (which adds a fixed header and
    per-array alignment padding but packs the planes tighter).
    """
    if n_rows <= 0:
        raise ArchConfigError(f"n_rows must be positive, got {n_rows}")
    if cols <= 0:
        raise ArchConfigError(f"cols must be positive, got {cols}")
    return int(n_rows) * int(cols) * ENCODED_BYTES_PER_CELL


def plan_engine(n_rows: int, cols: int,
                n_shards: "int | None" = None,
                cpu_count: "int | None" = None) -> str:
    """Pick the sharded fan-out's execution engine for this workload.

    ``"process"`` only pays off when all three of: the machine has
    cores to scale onto (:data:`PROCESS_MIN_CPUS`), the reference is
    partitioned (a single shard has no fan-out to parallelise), and
    the encoded payload is large enough
    (:data:`PROCESS_MIN_REFERENCE_BYTES`) that zero-copy sharing beats
    the workers' spawn cost.  Everything else stays on ``"thread"``.
    Either answer is purely a performance choice — the engines are
    bit-identical by contract (see :mod:`repro.parallel`).

    Parameters
    ----------
    n_rows / cols:
        Reference geometry (drives the shared-payload estimate).
    n_shards:
        Resolved shard count (``None`` = unknown, assume partitioned).
    cpu_count:
        Core budget; defaults to ``os.cpu_count()``.  Explicit values
        make plans reproducible across machines (tests pin this).
    """
    if n_rows <= 0:
        raise ArchConfigError(f"n_rows must be positive, got {n_rows}")
    if cols <= 0:
        raise ArchConfigError(f"cols must be positive, got {cols}")
    if n_shards is not None and n_shards < 2:
        return "thread"
    if available_cpus(cpu_count) < PROCESS_MIN_CPUS:
        return "thread"
    if n_rows * cols * ENCODED_BYTES_PER_CELL < PROCESS_MIN_REFERENCE_BYTES:
        return "thread"
    return "process"


def resolve_engine(engine: "str | None", n_rows: int, cols: int,
                   n_shards: "int | None" = None,
                   cpu_count: "int | None" = None) -> str:
    """Resolve the ``engine=`` knob through the standard order.

    Explicit knob > :data:`ENGINE_ENV` environment variable >
    :func:`plan_engine` autotune — the same shape as the kernel-backend
    selection (:func:`repro.kernels.resolve_backend`).  Raises
    :class:`~repro.errors.CamConfigError` on names outside
    :data:`EXECUTION_ENGINES`, wherever they came from.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or None
    if engine is None:
        return plan_engine(n_rows, cols, n_shards=n_shards,
                           cpu_count=cpu_count)
    if engine not in EXECUTION_ENGINES:
        raise CamConfigError(
            f"engine must be one of {EXECUTION_ENGINES}, got {engine!r}"
        )
    return engine


# -- kernel-backend calibration ---------------------------------------------

#: Calibration workload: small enough that the one-time measurement is
#: a few milliseconds, large enough that the backends' per-call fixed
#: costs do not dominate the comparison.
_CALIBRATION_ROWS = 64
_CALIBRATION_COLS = 128
_CALIBRATION_QUERIES = 16
_CALIBRATION_REPEATS = 3

#: Cached :func:`plan_backend` result (one calibration per process).
_PLANNED_BACKEND: "str | None" = None


def calibrate_kernel_backends(
        rows: int = _CALIBRATION_ROWS,
        cols: int = _CALIBRATION_COLS,
        n_queries: int = _CALIBRATION_QUERIES,
        repeats: int = _CALIBRATION_REPEATS) -> "dict[str, float]":
    """Best-of-*repeats* seconds per registered kernel backend.

    Times one dual (ED* + HD) counts pass plus one ED* pass on a
    deterministic synthetic workload — the mix every execution path
    actually issues.  Timings decide only *which* backend runs; the
    counts themselves are bit-identical across backends, so this
    nondeterminism never reaches a decision, ledger or report.
    """
    import numpy as np

    from repro import kernels

    rng = np.random.default_rng(0xA5)
    segments = rng.integers(0, 4, (rows, cols)).astype(np.uint8)
    queries = rng.integers(0, 4, (n_queries, cols)).astype(np.uint8)
    encoded = kernels.encode_reference(segments)
    timings: "dict[str, float]" = {}
    for name in kernels.available_backends():
        backend = kernels.get_backend(name)
        backend.counts_batch_dual(encoded, queries)  # warm-up / JIT
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            backend.counts_batch_dual(encoded, queries)
            backend.counts_batch(encoded, queries, ed_star=True)
            best = min(best, time.perf_counter() - start)
        timings[name] = best
    return timings


def plan_backend() -> str:
    """The fastest kernel backend on this machine (cached).

    The autotune tail of the selection order (explicit ``backend=``
    knob > ``REPRO_KERNEL_BACKEND`` env var > this): a one-time
    micro-calibration over every registered backend, cached for the
    process lifetime.  Ties and timer noise are harmless — any
    registered backend produces bit-identical results.
    """
    global _PLANNED_BACKEND
    if _PLANNED_BACKEND is None:
        timings = calibrate_kernel_backends()
        _PLANNED_BACKEND = min(timings, key=timings.get)
    return _PLANNED_BACKEND
