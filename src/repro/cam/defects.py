"""Array-level defect injection for robustness studies.

Manufacturing defects and wear leave CAM arrays with broken elements;
an accelerator deployed for "task-intensive but accuracy-insensitive"
screening (Section V-E) must degrade gracefully rather than fail.  The
models here inject the three defect classes that matter to a search
array, as post-processing on a :class:`~repro.cam.array.CamArray`
search result or its stored data:

* **stuck rows** — a matchline shorted high or low: the row always or
  never reports 'match' regardless of data;
* **dead sense amplifiers** — the row's comparator output is frozen at
  its last value; modelled as stuck-mismatch (conservative);
* **storage bit flips** — delegated to
  :meth:`repro.cam.sram.SramPlane.inject_bit_flips`.

:class:`DefectModel` wraps an array and applies row defects to every
search result, so experiments can sweep defect density and measure the
F1 cliff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cam.array import CamArray, SearchResult
from repro.cam.cell import MatchMode
from repro.errors import CamConfigError


@dataclass
class DefectMap:
    """Which rows are broken, and how."""

    stuck_match: np.ndarray
    stuck_mismatch: np.ndarray

    @classmethod
    def sample(cls, n_rows: int, stuck_match_rate: float,
               stuck_mismatch_rate: float,
               rng: np.random.Generator) -> "DefectMap":
        """Draw independent row defects at the given rates."""
        for name, rate in (("stuck_match_rate", stuck_match_rate),
                           ("stuck_mismatch_rate", stuck_mismatch_rate)):
            if not 0.0 <= rate <= 1.0:
                raise CamConfigError(f"{name} must be in [0, 1], got {rate}")
        draws = rng.random(n_rows)
        stuck_match = draws < stuck_match_rate
        stuck_mismatch = ((draws >= stuck_match_rate)
                          & (draws < stuck_match_rate + stuck_mismatch_rate))
        return cls(stuck_match=stuck_match, stuck_mismatch=stuck_mismatch)

    @property
    def n_defective(self) -> int:
        return int(self.stuck_match.sum() + self.stuck_mismatch.sum())

    def apply(self, matches: np.ndarray) -> np.ndarray:
        """Overlay the row defects on a decision vector."""
        matches = np.asarray(matches, dtype=bool)
        if matches.shape != self.stuck_match.shape:
            raise CamConfigError(
                f"decision shape {matches.shape} != defect map shape "
                f"{self.stuck_match.shape}"
            )
        out = matches.copy()
        out[self.stuck_match] = True
        out[self.stuck_mismatch] = False
        return out


class DefectiveArray:
    """A CamArray wrapper that overlays row defects on every search."""

    def __init__(self, array: CamArray, defects: DefectMap):
        if defects.stuck_match.shape != (array.rows,):
            raise CamConfigError(
                f"defect map covers {defects.stuck_match.shape[0]} rows, "
                f"array has {array.rows}"
            )
        self._array = array
        self._defects = defects

    @property
    def array(self) -> CamArray:
        return self._array

    @property
    def defects(self) -> DefectMap:
        return self._defects

    @property
    def rows(self) -> int:
        return self._array.rows

    @property
    def cols(self) -> int:
        return self._array.cols

    def store(self, segments: np.ndarray) -> None:
        self._array.store(segments)

    def search(self, read: np.ndarray, threshold: int,
               mode: MatchMode = MatchMode.ED_STAR) -> SearchResult:
        """Search, with defective rows overriding their decisions."""
        result = self._array.search(read, threshold, mode)
        # Trim/pad: decisions only cover written rows.
        n = result.matches.shape[0]
        defects = DefectMap(
            stuck_match=self._defects.stuck_match[:n],
            stuck_mismatch=self._defects.stuck_mismatch[:n],
        )
        patched = defects.apply(result.matches)
        return SearchResult(
            matches=patched,
            mismatch_counts=result.mismatch_counts,
            v_ml=result.v_ml,
            threshold=result.threshold,
            mode=result.mode,
            energy_joules=result.energy_joules,
            latency_ns=result.latency_ns,
        )
