"""SRAM storage model for CAM rows.

Each ASMCap cell stores one 2-bit base in two 6T SRAM cells
(Fig. 4(c)).  This module models the storage plane of an array: a
matrix of base codes with write/read operations, transistor-count
bookkeeping for the area model, and optional bit-flip fault injection
used by the failure-injection tests (a stuck or flipped storage bit
turns into a systematically wrong stored base, which the matcher must
tolerate gracefully, not crash on).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CamConfigError
from repro.genome import alphabet

#: Transistors per 6T SRAM bit cell.
TRANSISTORS_PER_SRAM_BIT = 6

#: SRAM bits per stored base (2-bit encoding).
BITS_PER_BASE = alphabet.BITS_PER_BASE


class SramPlane:
    """The storage plane of one CAM array: ``rows x cols`` base codes.

    Parameters
    ----------
    rows, cols:
        Array geometry (M reference segments of N bases each).
    """

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise CamConfigError(
                f"SRAM plane needs positive dimensions, got {rows}x{cols}"
            )
        self._rows = rows
        self._cols = cols
        self._data = np.zeros((rows, cols), dtype=np.uint8)
        self._written = np.zeros(rows, dtype=bool)

    @classmethod
    def from_stored(cls, data: np.ndarray) -> "SramPlane":
        """A fully-written plane *adopting* an existing code matrix.

        The zero-copy attach path of :mod:`repro.parallel`: the matrix
        (typically a read-only view over a shared-memory buffer) backs
        the plane directly — no per-row copy — and every row is marked
        written.  Such a plane is immutable in practice: the adopted
        matrix is left read-only, so fault injection on it raises.
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] == 0 or data.shape[1] == 0:
            raise CamConfigError(
                f"a stored plane needs a non-empty (rows, cols) code "
                f"matrix, got shape {data.shape}"
            )
        if data.size and int(data.max()) >= alphabet.ALPHABET_SIZE:
            raise CamConfigError("segment codes must be 2-bit (0..3)")
        plane = cls.__new__(cls)
        plane._rows = int(data.shape[0])
        plane._cols = int(data.shape[1])
        plane._data = data
        plane._written = np.ones(plane._rows, dtype=bool)
        return plane

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def cols(self) -> int:
        return self._cols

    @property
    def data(self) -> np.ndarray:
        """The stored code matrix (read-only view)."""
        view = self._data.view()
        view.setflags(write=False)
        return view

    @property
    def written_mask(self) -> np.ndarray:
        """Boolean mask of rows that hold valid segments."""
        view = self._written.view()
        view.setflags(write=False)
        return view

    @property
    def n_written(self) -> int:
        return int(self._written.sum())

    def write_row(self, row: int, codes: np.ndarray) -> None:
        """Write one reference segment into a row."""
        if not 0 <= row < self._rows:
            raise CamConfigError(f"row {row} out of range 0..{self._rows - 1}")
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.shape != (self._cols,):
            raise CamConfigError(
                f"segment shape {codes.shape} does not fit row width "
                f"{self._cols}"
            )
        if codes.size and int(codes.max()) >= alphabet.ALPHABET_SIZE:
            raise CamConfigError("segment codes must be 2-bit (0..3)")
        self._data[row] = codes
        self._written[row] = True

    def write_all(self, segments: np.ndarray) -> None:
        """Write up to ``rows`` segments starting at row 0."""
        segments = np.asarray(segments, dtype=np.uint8)
        if segments.ndim != 2 or segments.shape[1] != self._cols:
            raise CamConfigError(
                f"segments shape {segments.shape} does not fit plane "
                f"{self._rows}x{self._cols}"
            )
        if segments.shape[0] > self._rows:
            raise CamConfigError(
                f"{segments.shape[0]} segments exceed {self._rows} rows"
            )
        for row, segment in enumerate(segments):
            self.write_row(row, segment)

    def read_row(self, row: int) -> np.ndarray:
        """Read a stored row (copy)."""
        if not self._written[row]:
            raise CamConfigError(f"row {row} has not been written")
        return self._data[row].copy()

    def clear(self) -> None:
        """Invalidate all rows."""
        self._data.fill(0)
        self._written.fill(False)

    # -- fault injection -------------------------------------------------

    def inject_bit_flips(self, rate: float, rng: np.random.Generator) -> int:
        """Flip each stored SRAM *bit* independently with probability *rate*.

        Returns the number of flipped bits.  Used by robustness tests to
        check that storage corruption degrades accuracy smoothly instead
        of breaking invariants.
        """
        if not 0.0 <= rate <= 1.0:
            raise CamConfigError(f"bit-flip rate must be in [0, 1], got {rate}")
        flips_low = rng.random(self._data.shape) < rate
        flips_high = rng.random(self._data.shape) < rate
        self._data ^= flips_low.astype(np.uint8)
        self._data ^= (flips_high.astype(np.uint8) << 1)
        return int(flips_low.sum() + flips_high.sum())

    # -- bookkeeping -------------------------------------------------------

    def transistor_count(self) -> int:
        """Total transistors in the storage plane (2 x 6T per base)."""
        return self._rows * self._cols * BITS_PER_BASE * TRANSISTORS_PER_SRAM_BIT

    def capacity_bits(self) -> int:
        """Storage capacity in bits."""
        return self._rows * self._cols * BITS_PER_BASE
