"""CAM array model: M x N cells, write and search operations (Fig. 4(b)).

:class:`CamArray` ties the pieces together:

* an :class:`~repro.cam.sram.SramPlane` holding the reference segments;
* vectorised cell logic (the ``O_L/O_C/O_R`` planes of
  :mod:`repro.distance.ed_star` — bit-exact with
  :class:`~repro.cam.cell.AsmCapCell`);
* a matchline transfer function (charge or current domain);
* a variation model that perturbs the analog voltage;
* a bank of sense amplifiers that turn voltages into match decisions;
* shift registers for TASR rotations;
* a cost ledger recording every physical pass as a typed event
  (:mod:`repro.cost`); per-search energy/latency are derived views
  over those events.

The same class models both ASMCap (``domain="charge"``) and EDAM
(``domain="current"``); the EDAM baseline wraps it with EDAM's
parameters.  A *search* compares one read against every stored row in
parallel and returns a :class:`SearchResult`.

**Shared stored references.**  The expensive part of bringing an array
up is writing the reference into the SRAM plane and encoding it for
the batched kernel backends (:mod:`repro.kernels`); everything else an
array owns (noise streams, the sequential RNG, the cost ledger) is
cheap per-session state.  :class:`StoredReference` splits the two: it
holds the stored segments plus the cached encoding (one pass builds
every backend's cache) as an immutable, thread-safe
value that **many arrays can share** — ``CamArray(stored=ref)`` borrows
the reference without re-encoding or re-storing it, while keeping its
own seed, noise prefix and ledger.  This is what lets a multi-session
service front end (:mod:`repro.service.frontend`) encode the reference
exactly once and serve N concurrent sessions over it.

**Batched searches.**  :meth:`CamArray.search_batch` evaluates a
``(B, N)`` block of reads against all stored rows in one set of 3-D
numpy broadcasts — the software analogue of Fig. 4(a)'s global buffer
streaming reads into the array back-to-back.  Noise determinism across
execution orders is handled by *keyed* noise streams: when a search
carries a ``noise_key`` (a tuple of non-negative ints, typically
``(query_id, pass_tag)``), its variation noise is drawn from a
generator seeded by ``(array_seed, stream_tag) + noise_key`` instead of
the array's sequential generator.  Two executions that issue the same
keyed searches — in any order, scalar or batched, single-threaded or
sharded across workers — therefore see bit-identical noise and make
bit-identical decisions.  Un-keyed searches keep the legacy sequential
stream so Monte-Carlo experiments still get fresh noise per trial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import constants
from repro.cam.cell import MatchMode
from repro.cam.matchline import ChargeDomainMatchline, CurrentDomainMatchline
from repro.cam.sense_amp import SenseAmplifier
from repro.cam.shift_register import ShiftRegisterBank
from repro.cam.sram import SramPlane
from repro.cam.variation import ChargeDomainVariation, CurrentDomainVariation
from repro.cam.keyed_noise import (
    fold_key,
    fold_key_block,
    fold_key_from,
    standard_normals,
)
from repro.cost.events import (
    EdStarPass,
    HdacPass,
    ReferenceLoad,
    SearchPassEvent,
    TasrRotationPass,
)
from repro.cost.ledger import CostLedger
from repro.cost.views import SearchStats, search_stats
from repro.errors import CamConfigError, ThresholdError
from repro.kernels import (
    EncodedReference,
    KernelBackend,
    as_backend,
    encode_reference,
    resolve_backend,
)
from repro.knobs import validate_service_knobs

_DOMAINS = ("charge", "current")

#: Domain-separation tag for keyed noise streams (arbitrary constant;
#: keeps keyed draws disjoint from any other derived stream).
_NOISE_STREAM_TAG = 0x5EED


def as_segments_matrix(segments: np.ndarray) -> np.ndarray:
    """Validate and coerce a reference-segment matrix.

    The one definition of "a storable reference" shared by every layer
    that accepts raw segments (arrays, pipelines, services, the
    frontend): a non-empty 2-D uint8 ``(rows, N)`` matrix.
    """
    segments = np.asarray(segments, dtype=np.uint8)
    if segments.ndim != 2 or segments.shape[0] == 0:
        raise CamConfigError(
            f"segments must be a non-empty (rows, N) matrix, got "
            f"shape {segments.shape}"
        )
    return segments


@dataclass(frozen=True)
class SearchResult:
    """Everything one parallel search produced.

    Attributes
    ----------
    matches:
        Per-row boolean decisions (True = 'match', i.e. the SA fired).
    mismatch_counts:
        The *digital* per-row mismatch counts (ED* or HD) — what an
        ideal, variation-free array would measure.
    v_ml:
        The noisy analog matchline voltages the SAs actually saw.
    threshold:
        The threshold ``T`` the search used.
    mode:
        ED*/HD mode of this search.
    energy_joules:
        Array energy spent on this search.
    latency_ns:
        Search latency.
    """

    matches: np.ndarray
    mismatch_counts: np.ndarray
    v_ml: np.ndarray
    threshold: int
    mode: MatchMode
    energy_joules: float
    latency_ns: float


@dataclass(frozen=True)
class BatchSearchResult:
    """Everything one batched parallel search produced.

    The batched analogue of :class:`SearchResult`: ``B`` reads stream
    through the array back-to-back, so per-query axes come first.

    Attributes
    ----------
    matches:
        ``(B, M)`` boolean decisions (query q, stored row i).
    mismatch_counts:
        ``(B, M)`` digital mismatch counts (ED* or HD).
    v_ml:
        ``(B, M)`` noisy analog matchline voltages.
    thresholds:
        ``(B,)`` per-query thresholds (a scalar input is broadcast).
    mode:
        ED*/HD mode of the whole batch.
    energy_joules / latency_ns:
        Totals over the batch; see the per-query accessors for the
        amortised view.
    energy_per_query_joules:
        ``(B,)`` per-query array energies.
    """

    matches: np.ndarray
    mismatch_counts: np.ndarray
    v_ml: np.ndarray
    thresholds: np.ndarray
    mode: MatchMode
    energy_joules: float
    latency_ns: float
    energy_per_query_joules: np.ndarray

    @property
    def n_queries(self) -> int:
        return int(self.matches.shape[0])

    @property
    def amortised_energy_per_query_joules(self) -> float:
        return self.energy_joules / self.n_queries if self.n_queries else 0.0

    @property
    def amortised_latency_per_query_ns(self) -> float:
        return self.latency_ns / self.n_queries if self.n_queries else 0.0


@dataclass(frozen=True)
class SweepSearchResult:
    """One search pass evaluated against a whole threshold sweep.

    The digital mismatch counts and the keyed variation noise of a
    search depend only on the query (and its noise key), never on the
    threshold — so a ``T``-point threshold sweep needs one count pass
    and one noise draw, with only the sense-amp references varying.
    Slice ``t`` of :attr:`matches` is bit-identical to the ``matches``
    of a :meth:`CamArray.search_batch` call at ``thresholds[t]`` with
    the same noise keys.

    Attributes
    ----------
    matches:
        ``(T, B, M)`` boolean decisions (threshold t, query q, row i).
    mismatch_counts:
        ``(B, M)`` digital mismatch counts (threshold-independent).
    v_ml:
        ``(B, M)`` noisy analog matchline voltages (shared by every
        threshold — the sweep's whole point).
    thresholds:
        ``(T,)`` the sweep vector.
    mode:
        ED*/HD mode of the pass.
    energy_per_query_joules:
        ``(B,)`` array energy of issuing this search once per query;
        a scalar path would spend it once per (query, threshold).
    latency_ns:
        Latency of one pass through the array.
    """

    matches: np.ndarray
    mismatch_counts: np.ndarray
    v_ml: np.ndarray
    thresholds: np.ndarray
    mode: MatchMode
    energy_per_query_joules: np.ndarray
    latency_ns: float

    @property
    def n_thresholds(self) -> int:
        return int(self.thresholds.shape[0])

    @property
    def n_queries(self) -> int:
        return int(self.mismatch_counts.shape[0])


class StoredReference:
    """The stored, encoded reference content of one CAM array.

    The digital half of an array: an :class:`~repro.cam.sram.SramPlane`
    holding the reference segments plus the cached
    :class:`~repro.kernels.EncodedReference` (float one-hot *and*
    2-bit-packed bitplanes, built in one pass) every kernel backend
    searches against.  Everything here is a pure function of the
    stored segments — no noise, no RNG, no ledger
    — so once *sealed* a ``StoredReference`` is an immutable,
    thread-safe value that any number of :class:`CamArray` instances
    can share (``CamArray(stored=ref)``): per-session arrays keep their
    own seeds, noise prefixes and cost ledgers while the expensive
    encode/store work happens exactly once.

    Two lifecycles:

    * **owned (mutable)** — every ``CamArray()`` constructed without
      ``stored=`` creates its own private, unsealed reference;
      :meth:`CamArray.store` rewrites it (invalidating the encoding
      cache), preserving the pre-existing single-array semantics.
    * **shared (sealed)** — :meth:`StoredReference.encode` stores and
      eagerly encodes a segment matrix, then seals it: later
      :meth:`store` calls raise and every cache is precomputed, so
      concurrent readers never race on lazy initialisation.

    :attr:`n_encodes` counts encoding passes — the evidence
    ``benchmarks/bench_frontend_concurrency.py`` uses to show a shared
    reference is encoded once, not once per session.
    """

    def __init__(self, rows: int, cols: int):
        self._plane = SramPlane(rows, cols)
        self._encoded: "EncodedReference | None" = None
        self._segments: "np.ndarray | None" = None
        self._sealed = False
        self._n_encodes = 0
        self._source: "object | None" = None

    @classmethod
    def encode(cls, segments: np.ndarray,
               rows: "int | None" = None) -> "StoredReference":
        """Store *segments*, encode them once, and seal the result.

        Parameters
        ----------
        segments:
            ``(n_rows, N)`` uint8 matrix of reference segments.
        rows:
            Plane row count (default: exactly ``n_rows``) — a larger
            plane models a partially-filled bank.
        """
        segments = as_segments_matrix(segments)
        reference = cls(rows if rows is not None else segments.shape[0],
                        segments.shape[1])
        reference.store(segments)
        reference.seal()
        return reference

    @classmethod
    def adopt_encoded(cls, encoded: EncodedReference,
                      source: "object | None" = None) -> "StoredReference":
        """A sealed reference *adopting* a pre-built encoding, zero-copy.

        The attach path of :mod:`repro.parallel` and the mmap-open
        path of :mod:`repro.refstore`: a process that mapped the
        encoded payload out of shared memory or a store file rebuilds
        the sealed value directly — the plane backs onto the shared
        segment matrix (:meth:`~repro.cam.sram.SramPlane.from_stored`),
        the encoding cache is pre-populated with the shared views, and
        **no encoding pass runs** (:attr:`n_encodes` stays 0, the
        encode-once evidence on both paths).

        ``source`` records where the adopted payload came from — a
        picklable provenance ticket (e.g. a
        :class:`repro.refstore.format.FileReferenceHandle`) that lets
        downstream engines re-attach the *same* bytes in another
        process without copying them (see
        :class:`repro.parallel.ProcessShardEngine`).
        """
        reference = cls.__new__(cls)
        reference._plane = SramPlane.from_stored(encoded.segments)
        reference._segments = encoded.segments
        reference._encoded = encoded
        reference._sealed = True
        reference._n_encodes = 0
        reference._source = source
        return reference

    # -- configuration ----------------------------------------------------

    @property
    def rows(self) -> int:
        return self._plane.rows

    @property
    def cols(self) -> int:
        return self._plane.cols

    @property
    def plane(self) -> SramPlane:
        return self._plane

    @property
    def sealed(self) -> bool:
        """Whether this reference is immutable (safe to share)."""
        return self._sealed

    @property
    def n_segments(self) -> int:
        """Stored (written) reference rows."""
        return self._plane.n_written

    @property
    def source(self) -> "object | None":
        """Provenance of an adopted payload (``None`` when encoded
        in-process).

        A picklable ticket another process can re-attach the same
        bytes from — the path-based shard hand-off of
        :class:`repro.parallel.ProcessShardEngine` reads it to skip
        the per-boot shared-memory copy for store-backed references.
        """
        return self._source

    @property
    def n_encodes(self) -> int:
        """Encoding passes performed over this reference.

        One pass builds *every* backend's search cache (see
        :func:`repro.kernels.encode_reference`), so a sealed shared
        reference reports exactly 1 no matter how many sessions or
        backends search it.
        """
        return self._n_encodes

    # -- lifecycle --------------------------------------------------------

    def store(self, segments: np.ndarray) -> None:
        """Write reference segments into the plane (row 0 upward).

        Raises :class:`~repro.errors.CamConfigError` once sealed —
        shared references are immutable by contract.
        """
        if self._sealed:
            raise CamConfigError(
                "this StoredReference is sealed (shared, immutable); "
                "encode a new reference instead of mutating it"
            )
        segments = np.asarray(segments, dtype=np.uint8)
        self._plane.write_all(segments)
        self._encoded = None
        self._segments = None

    def seal(self) -> "StoredReference":
        """Freeze the reference and precompute every search cache.

        Eager precomputation is what makes a sealed reference
        thread-safe: concurrent searches only ever *read* the caches.
        """
        if self._plane.n_written == 0:
            raise CamConfigError("cannot seal an empty StoredReference")
        if not self._sealed:
            segments = self._plane.data[self._plane.written_mask]
            segments.setflags(write=False)
            self._segments = segments
            self._sealed = True
            self.encoded()
        return self

    @property
    def segments(self) -> np.ndarray:
        """The valid stored rows as an ``(n_written, N)`` matrix.

        Sealed references return one cached read-only matrix; mutable
        ones re-read the plane on every call (so direct plane
        mutations, e.g. fault injection, stay visible).
        """
        if self._segments is not None:
            return self._segments
        return self._plane.data[self._plane.written_mask]

    def _segments_for_search(self) -> np.ndarray:
        segments = self.segments
        if segments.shape[0] == 0:
            raise CamConfigError("search issued against an empty array")
        return segments

    # -- digital count computation ---------------------------------------

    def encoded(self) -> EncodedReference:
        """Every backend's search cache, built in one encoding pass.

        Sealed references build this once, in :meth:`seal`, before any
        sharing begins (concurrent searches then only ever *read* it);
        mutable references rebuild lazily after each :meth:`store`.
        """
        if self._encoded is None:
            self._encoded = encode_reference(self._segments_for_search())
            self._n_encodes += 1
        return self._encoded

    def stored_onehot(self) -> np.ndarray:
        """``(M, N * 4)`` float32 one-hot of the stored rows (cached).

        The GEMM lane's slice of :meth:`encoded`, kept as a named
        accessor; float32 is exact here — every partial inner product
        is an integer below 2**24.
        """
        return self.encoded().onehot

    def counts(self, read: np.ndarray, mode: MatchMode,
               backend: "str | KernelBackend | None" = None) -> np.ndarray:
        """Digital per-row mismatch counts for one read."""
        read = np.asarray(read, dtype=np.uint8)
        return self.counts_batch(read[None, :], mode, backend=backend)[0]

    def counts_batch(self, queries: np.ndarray, mode: MatchMode,
                     backend: "str | KernelBackend | None" = None,
                     ) -> np.ndarray:
        """Digital ``(B, M)`` mismatch counts for a block of queries.

        Bit-exact with :meth:`counts` applied per query — and
        bit-exact across *backends*: the computation dispatches to a
        :mod:`repro.kernels` backend (default ``numpy-gemm``; arrays
        pass their resolved ``backend=`` knob), every one of which
        returns exactly equal integer counts.  Codes outside the DNA
        alphabet fall back to the shared boolean comparison sweep.
        """
        self._segments_for_search()
        is_ed_star = mode is MatchMode.ED_STAR
        return as_backend(backend).counts_batch(self.encoded(), queries,
                                                ed_star=is_ed_star)

    def counts_batch_dual(
            self, queries: np.ndarray,
            backend: "str | KernelBackend | None" = None,
            ) -> tuple[np.ndarray, np.ndarray]:
        """``(ED*, HD)`` count blocks sharing one encoding sweep.

        The co-located comparison determines the HD counts and is also
        one of ED*'s three planes, so computing the two modes together
        reuses the query encoding — the controller's trick of issuing
        the ED* and HD searches back-to-back while the searchlines
        still hold the read.  Bit-exact with two :meth:`counts_batch`
        calls, on any backend.
        """
        self._segments_for_search()
        return as_backend(backend).counts_batch_dual(self.encoded(),
                                                     queries)


class CamArray:
    """One ML-CAM array in either the charge or the current domain.

    Parameters
    ----------
    rows, cols:
        Geometry (M segments of N bases); the paper uses 256 x 256.
    domain:
        ``"charge"`` (ASMCap) or ``"current"`` (EDAM).
    sigma_rel:
        Relative device variation; defaults to the paper's value for
        the chosen domain (1.4 % capacitor / 2.5 % current).
    noisy:
        Master switch for variation noise (False = ideal array).
    seed:
        Seed for the noise generator.
    strict_paper_vref:
        Use the literal ``V_ref = T/N*VDD`` rule (see
        :mod:`repro.cam.sense_amp`).
    ledger_compaction:
        ``None`` (default) keeps the append-only ledger every one-shot
        experiment expects; an integer bound opts the array's ledger
        into bounded-memory compaction (see
        :class:`repro.cost.ledger.CostLedger`) — what a long-running
        streaming service passes.
    backend:
        Kernel backend for the digital mismatch-count primitives: a
        registered name (``"numpy-gemm"``, ``"bitpacked"``, …), a
        :class:`~repro.kernels.KernelBackend` instance, or ``None``
        (default) to resolve through the standard selection order —
        the ``REPRO_KERNEL_BACKEND`` env var, then
        :func:`repro.arch.autotune.plan_backend` micro-calibration.
        Every backend returns bit-identical counts, so the knob is
        purely a performance choice.
    stored:
        A **sealed** :class:`StoredReference` to borrow instead of
        owning a private storage plane.  The array's geometry comes
        from the reference (``rows``/``cols`` are ignored), the
        expensive store/encode work is *not* repeated, and
        :meth:`store` is disabled — the reference is shared and
        immutable.  All per-array state (seed, noise streams, RNG,
        ledger) stays private, so N arrays over one reference draw
        independent keyed noise exactly as N privately-stored arrays
        with the same seeds would.
    """

    def __init__(self, rows: int = constants.ARRAY_ROWS,
                 cols: int = constants.ARRAY_COLS,
                 domain: str = "charge",
                 sigma_rel: "float | None" = None,
                 noisy: bool = True,
                 seed: int = 0,
                 strict_paper_vref: bool = False,
                 vdd: float = constants.VDD_VOLTS,
                 ledger_compaction: "int | None" = None,
                 backend: "str | KernelBackend | None" = None,
                 stored: "StoredReference | None" = None):
        if domain not in _DOMAINS:
            raise CamConfigError(
                f"domain must be one of {_DOMAINS}, got {domain!r}"
            )
        validate_service_knobs(compaction=ledger_compaction, backend=backend)
        self._backend = resolve_backend(backend)
        self._domain = domain
        if stored is not None:
            if not stored.sealed:
                raise CamConfigError(
                    "a shared StoredReference must be sealed before "
                    "arrays can borrow it (StoredReference.encode does "
                    "both)"
                )
            self._stored = stored
            self._shares_stored = True
            cols = stored.cols
        else:
            self._stored = StoredReference(rows, cols)
            self._shares_stored = False
        self._registers = ShiftRegisterBank(cols)
        self._registers.enable()
        self._noisy = noisy
        self._seed = int(seed) & 0xFFFFFFFFFFFFFFFF
        self._noise_prefix = fold_key((self._seed, _NOISE_STREAM_TAG))
        self._rng = np.random.default_rng(seed)
        self._vdd = vdd
        if domain == "charge":
            sigma = (constants.ASMCAP_CAPACITOR_SIGMA
                     if sigma_rel is None else sigma_rel)
            self._variation = ChargeDomainVariation(sigma_rel=sigma, vdd=vdd)
            self._matchline = ChargeDomainMatchline(vdd=vdd)
            self._sense_amp = SenseAmplifier(
                vdd=vdd, rising=True, strict_paper_rule=strict_paper_vref
            )
            self._search_time_ns = constants.ASMCAP_SEARCH_TIME_NS
        else:
            sigma = (constants.EDAM_CURRENT_SIGMA
                     if sigma_rel is None else sigma_rel)
            self._variation = CurrentDomainVariation(sigma_rel=sigma, vdd=vdd)
            self._matchline = CurrentDomainMatchline(vdd=vdd)
            self._sense_amp = SenseAmplifier(
                vdd=vdd, rising=False, strict_paper_rule=strict_paper_vref
            )
            self._search_time_ns = constants.EDAM_SEARCH_TIME_NS
        #: The array's cost ledger: one typed event per physical pass.
        self.ledger = CostLedger(compaction=ledger_compaction)

    # -- configuration ----------------------------------------------------

    @property
    def rows(self) -> int:
        return self._stored.rows

    @property
    def cols(self) -> int:
        return self._stored.cols

    @property
    def domain(self) -> str:
        return self._domain

    @property
    def stored(self) -> StoredReference:
        """The stored-reference state (owned, or shared when sealed)."""
        return self._stored

    @property
    def shares_stored_reference(self) -> bool:
        """True when this array borrows a shared, sealed reference."""
        return self._shares_stored

    @property
    def backend(self) -> str:
        """Name of the resolved kernel backend this array searches with."""
        return self._backend.name

    @property
    def noisy(self) -> bool:
        return self._noisy

    @property
    def search_time_ns(self) -> float:
        return self._search_time_ns

    @property
    def plane(self) -> SramPlane:
        return self._stored.plane

    @property
    def registers(self) -> ShiftRegisterBank:
        return self._registers

    @property
    def sense_amp(self) -> SenseAmplifier:
        return self._sense_amp

    @property
    def variation(self):
        return self._variation

    @property
    def stats(self) -> SearchStats:
        """Cumulative counters, derived on demand from the ledger.

        A sweep pass counts its ``B`` physical searches (not
        ``T * B``): the analog levels are computed once per query and
        reused for every threshold, mirroring what the engine computed.
        """
        return search_stats(self.ledger)

    # -- data path --------------------------------------------------------

    def store(self, segments: np.ndarray) -> None:
        """Write reference segments into the rows (row 0 upward).

        Disabled on arrays that borrow a shared
        :class:`StoredReference` — the reference is sealed by contract;
        build a new one with :meth:`StoredReference.encode` instead.
        """
        if self._shares_stored:
            raise CamConfigError(
                "this array borrows a shared, sealed StoredReference; "
                "store() would mutate every session sharing it"
            )
        segments = np.asarray(segments, dtype=np.uint8)
        self._stored.store(segments)
        self.ledger.record(ReferenceLoad(
            n_segments=int(segments.shape[0]), n_cells=self.cols,
        ))

    def stored_segments(self) -> np.ndarray:
        """The valid stored rows as an ``(n_written, N)`` matrix."""
        return self._stored.segments

    def mismatch_counts(self, read: np.ndarray, mode: MatchMode) -> np.ndarray:
        """Digital per-row mismatch counts for *read* (no analog path)."""
        read = self._check_read(read)
        return self._stored.counts(read, mode, backend=self._backend)

    def mismatch_counts_batch(self, queries: np.ndarray,
                              mode: MatchMode) -> np.ndarray:
        """Digital ``(B, M)`` mismatch counts for a block of queries.

        Bit-exact with :meth:`mismatch_counts` applied per query; the
        computation dispatches to the array's resolved kernel backend
        on :class:`StoredReference` (bit-identical whichever backend
        runs).
        """
        queries = self._check_queries(queries)
        return self._stored.counts_batch(queries, mode,
                                         backend=self._backend)

    def mismatch_counts_batch_dual(
            self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(ED*, HD)`` count blocks sharing one encoding sweep.

        Bit-exact with two :meth:`mismatch_counts_batch` calls; see
        :meth:`StoredReference.counts_batch_dual`.
        """
        queries = self._check_queries(queries)
        return self._stored.counts_batch_dual(queries,
                                              backend=self._backend)

    def _emit_pass(self, counts: np.ndarray, thresholds: np.ndarray,
                   mode: MatchMode, sweep: bool,
                   noise_keys, rotation: int) -> SearchPassEvent:
        """Record one physical pass as a typed event in the ledger.

        Classification: a Hamming pass is HDAC's extra search, a
        rotated ED* pass is a TASR/SR rotation (carrying its
        shift-cycle count), an unrotated ED* pass is the base search.
        The event carries the per-row mismatch populations; energy and
        latency are *derived views* (:mod:`repro.cost.views`).
        """
        if mode is MatchMode.HAMMING and rotation == 0:
            cls, extra = HdacPass, {}
        elif rotation != 0:
            cls, extra = TasrRotationPass, {"rotation": int(rotation)}
        else:
            cls, extra = EdStarPass, {}
        event = cls(
            domain=self._domain,
            mode="hamming" if mode is MatchMode.HAMMING else "ed_star",
            n_cells=self.cols, vdd=self._vdd,
            search_time_ns=self._search_time_ns,
            mismatch_counts=counts,
            thresholds=np.asarray(thresholds, dtype=int),
            sweep=sweep,
            query_keys=(None if noise_keys is None
                        else np.asarray(noise_keys)),
            **extra,
        )
        self.ledger.record(event)
        return event

    def search(self, read: np.ndarray, threshold: int,
               mode: MatchMode = MatchMode.ED_STAR,
               noise_key: "tuple[int, ...] | None" = None,
               rotation: int = 0) -> SearchResult:
        """One parallel search of *read* against all stored rows.

        ``noise_key`` switches variation noise from the array's
        sequential stream to the keyed stream for that tuple (see the
        module docstring); batched and scalar executions that use the
        same keys are bit-identical.  ``rotation`` tags the emitted
        cost event when the read was pre-rotated (the shift registers
        spent ``|rotation|`` cycles) — :meth:`search_rotated` passes it
        through.
        """
        if not 0 <= threshold <= self.cols:
            raise ThresholdError(
                f"threshold {threshold} out of range 0..{self.cols}"
            )
        counts = self.mismatch_counts(read, mode)
        v_ml = self._noisy_voltages(counts, noise_key)
        matches = self._sense_amp.decide(v_ml, threshold, self.cols)
        event = self._emit_pass(
            counts[None, :], np.asarray([threshold]), mode, sweep=False,
            noise_keys=None if noise_key is None else [noise_key],
            rotation=rotation,
        )
        return SearchResult(
            matches=matches, mismatch_counts=counts, v_ml=v_ml,
            threshold=threshold, mode=mode,
            energy_joules=float(event.energy_per_query_joules[0]),
            latency_ns=self._search_time_ns,
        )

    def search_batch(self, queries: np.ndarray,
                     threshold: "int | np.ndarray",
                     mode: MatchMode = MatchMode.ED_STAR,
                     noise_keys: "Sequence[tuple[int, ...]] | None" = None,
                     precomputed_counts: "np.ndarray | None" = None,
                     rotation: int = 0) -> BatchSearchResult:
        """Search a ``(B, N)`` block of queries in one vectorised pass.

        Parameters
        ----------
        queries:
            ``(B, N)`` uint8 read codes.
        threshold:
            Scalar threshold shared by the batch, or a ``(B,)`` vector
            of per-query thresholds.
        mode:
            ED*/HD mode for the whole batch.
        noise_keys:
            Optional per-query noise keys (length ``B``).  When absent
            the batch consumes the array's sequential noise stream —
            which produces exactly the values ``B`` consecutive scalar
            :meth:`search` calls would have drawn.
        precomputed_counts:
            Digital counts for these queries in this mode, if the
            caller already holds them (e.g. one half of a
            :meth:`mismatch_counts_batch_dual` sweep); must equal what
            :meth:`mismatch_counts_batch` would return.
        rotation:
            Signed rotation offset the caller applied to the queries
            before the search (tags the cost event as a rotation pass
            and charges its shift-register cycles).

        Returns
        -------
        A :class:`BatchSearchResult` whose rows are bit-identical to
        the corresponding scalar searches.
        """
        queries = self._check_queries(queries)
        n_queries = queries.shape[0]
        thresholds = np.broadcast_to(
            np.asarray(threshold, dtype=int), (n_queries,)
        ).copy()
        if n_queries and not (
                (thresholds >= 0) & (thresholds <= self.cols)).all():
            raise ThresholdError(
                f"batch thresholds out of range 0..{self.cols}"
            )
        if noise_keys is not None and len(noise_keys) != n_queries:
            raise CamConfigError(
                f"{len(noise_keys)} noise keys for {n_queries} queries"
            )
        if precomputed_counts is None:
            counts = self.mismatch_counts_batch(queries, mode)
        else:
            counts = precomputed_counts
        v_ml = self._noisy_voltages_batch(counts, noise_keys)
        if n_queries:
            matches = self._sense_amp.decide(v_ml, thresholds, self.cols)
        else:
            matches = np.zeros_like(counts, dtype=bool)
        event = self._emit_pass(counts, thresholds, mode, sweep=False,
                                noise_keys=noise_keys, rotation=rotation)
        energy_per_query = event.energy_per_query_joules
        return BatchSearchResult(
            matches=matches, mismatch_counts=counts, v_ml=v_ml,
            thresholds=thresholds, mode=mode,
            energy_joules=float(energy_per_query.sum()),
            latency_ns=self._search_time_ns * n_queries,
            energy_per_query_joules=energy_per_query,
        )

    def search_sweep(self, queries: np.ndarray,
                     thresholds: np.ndarray,
                     mode: MatchMode = MatchMode.ED_STAR,
                     noise_keys: "Sequence[tuple[int, ...]] | None" = None,
                     precomputed_counts: "np.ndarray | None" = None,
                     rotation: int = 0) -> SweepSearchResult:
        """Evaluate one search pass against a whole threshold sweep.

        Counts and (keyed) variation noise are threshold-independent,
        so the pass is computed once and the ``(T,)`` threshold vector
        is applied as ``T`` vectorised sense-amp reference comparisons
        — slice ``t`` of the result is bit-identical to
        :meth:`search_batch` at ``thresholds[t]`` with the same keys.

        Parameters
        ----------
        queries:
            ``(B, N)`` uint8 read codes.
        thresholds:
            ``(T,)`` sweep vector shared by every query.
        mode:
            ED*/HD mode of the pass.
        noise_keys:
            Optional per-query noise keys (length ``B``); without keys
            the pass consumes the sequential stream **once** — i.e. a
            sweep is *not* equivalent to ``T`` un-keyed searches, which
            would each draw fresh noise.  Pass keys whenever scalar
            equivalence matters.
        precomputed_counts:
            Digital counts for these queries in this mode, if already
            available (e.g. from :meth:`mismatch_counts_batch_dual`).
        rotation:
            Signed rotation offset the caller applied to the queries
            before the pass (tags the cost event as a rotation pass
            and charges its shift-register cycles).
        """
        queries = self._check_queries(queries)
        n_queries = queries.shape[0]
        thresholds = np.asarray(thresholds, dtype=int)
        if thresholds.ndim != 1 or thresholds.shape[0] == 0:
            raise ThresholdError(
                f"thresholds must be a non-empty 1-D sweep vector, got "
                f"shape {thresholds.shape}"
            )
        if not ((thresholds >= 0) & (thresholds <= self.cols)).all():
            raise ThresholdError(
                f"sweep thresholds out of range 0..{self.cols}"
            )
        if noise_keys is not None and len(noise_keys) != n_queries:
            raise CamConfigError(
                f"{len(noise_keys)} noise keys for {n_queries} queries"
            )
        if precomputed_counts is None:
            counts = self.mismatch_counts_batch(queries, mode)
        else:
            counts = precomputed_counts
        v_ml = self._noisy_voltages_batch(counts, noise_keys)
        if n_queries:
            matches = self._sense_amp.decide_sweep(v_ml, thresholds,
                                                   self.cols)
        else:
            matches = np.zeros((thresholds.shape[0],) + counts.shape,
                               dtype=bool)
        event = self._emit_pass(counts, thresholds, mode, sweep=True,
                                noise_keys=noise_keys, rotation=rotation)
        return SweepSearchResult(
            matches=matches, mismatch_counts=counts, v_ml=v_ml,
            thresholds=thresholds, mode=mode,
            energy_per_query_joules=event.energy_per_query_joules,
            latency_ns=self._search_time_ns,
        )

    def search_rotated(self, read: np.ndarray, threshold: int, rotation: int,
                       mode: MatchMode = MatchMode.ED_STAR,
                       noise_key: "tuple[int, ...] | None" = None
                       ) -> SearchResult:
        """Search with the read rotated through the shift registers.

        Positive *rotation* rotates left; each base of rotation costs
        one register cycle, recorded on the emitted
        :class:`~repro.cost.events.TasrRotationPass` event (TASR's
        overhead, Section IV-B).
        """
        read = self._check_read(read)
        self._registers.load(read)
        if rotation != 0:
            self._registers.rotate_left(rotation)
        return self.search(self._registers.contents(), threshold, mode,
                           noise_key=noise_key, rotation=int(rotation))

    # -- internals ----------------------------------------------------------

    def _check_read(self, read: np.ndarray) -> np.ndarray:
        read = np.asarray(read, dtype=np.uint8)
        if read.shape != (self.cols,):
            raise CamConfigError(
                f"read shape {read.shape} does not fit array width {self.cols}"
            )
        return read

    def _check_queries(self, queries: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.uint8)
        if queries.ndim != 2 or queries.shape[1] != self.cols:
            raise CamConfigError(
                f"query block shape {queries.shape} does not fit array "
                f"width {self.cols}; expected (B, {self.cols})"
            )
        return queries

    def fold_noise_key(self, noise_key: "tuple[int, ...]") -> int:
        """This array's folded stream state for one noise key."""
        return fold_key_from(self._noise_prefix, tuple(noise_key))

    def _noisy_voltages(self, counts: np.ndarray,
                        noise_key: "tuple[int, ...] | None") -> np.ndarray:
        """Ideal matchline voltages plus (optionally keyed) noise."""
        if self._domain == "charge":
            v_ideal = self._matchline.ideal_voltage(counts, self.cols)
        else:
            v_ideal = self._matchline.sampled_voltage(counts, self.cols)
        if not self._noisy:
            return v_ideal.astype(float)
        if noise_key is None:
            noise = self._variation.sample_noise(counts, self.cols,
                                                 self._rng)
        else:
            raw = standard_normals(self.fold_noise_key(noise_key),
                                   counts.shape[0])
            noise = raw * self._variation.sigma_vml(counts, self.cols)
        if self._domain == "current":
            noise = -noise  # droop noise subtracts from the sampled level
        return v_ideal + noise

    def _noisy_voltages_batch(
            self, counts: np.ndarray,
            noise_keys: "Sequence[tuple[int, ...]] | None") -> np.ndarray:
        """Batched matchline voltages with per-query noise streams."""
        if self._domain == "charge":
            v_ideal = self._matchline.ideal_voltage(counts, self.cols)
        else:
            v_ideal = self._matchline.sampled_voltage(counts, self.cols)
        if not self._noisy or counts.shape[0] == 0:
            return v_ideal.astype(float)
        if noise_keys is None:
            # One (B, M) draw from the sequential stream: numpy fills
            # the block in C order, so this equals B scalar draws.
            noise = self._variation.sample_noise(counts, self.cols,
                                                 self._rng)
        else:
            states = fold_key_block(self._noise_prefix,
                                    np.asarray(noise_keys))
            raw = standard_normals(states, counts.shape[1])
            noise = raw * self._variation.sigma_vml(counts, self.cols)
        if self._domain == "current":
            noise = -noise
        return v_ideal + noise
