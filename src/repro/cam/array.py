"""CAM array model: M x N cells, write and search operations (Fig. 4(b)).

:class:`CamArray` ties the pieces together:

* an :class:`~repro.cam.sram.SramPlane` holding the reference segments;
* vectorised cell logic (the ``O_L/O_C/O_R`` planes of
  :mod:`repro.distance.ed_star` — bit-exact with
  :class:`~repro.cam.cell.AsmCapCell`);
* a matchline transfer function (charge or current domain);
* a variation model that perturbs the analog voltage;
* a bank of sense amplifiers that turn voltages into match decisions;
* shift registers for TASR rotations;
* energy/latency accounting per search.

The same class models both ASMCap (``domain="charge"``) and EDAM
(``domain="current"``); the EDAM baseline wraps it with EDAM's
parameters.  A *search* compares one read against every stored row in
parallel and returns a :class:`SearchResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants
from repro.cam.cell import MatchMode
from repro.cam.matchline import ChargeDomainMatchline, CurrentDomainMatchline
from repro.cam.sense_amp import SenseAmplifier
from repro.cam.shift_register import ShiftRegisterBank
from repro.cam.sram import SramPlane
from repro.cam.variation import ChargeDomainVariation, CurrentDomainVariation
from repro.cam.energy import search_energy_per_row
from repro.distance.ed_star import match_planes
from repro.errors import CamConfigError, ThresholdError

_DOMAINS = ("charge", "current")


@dataclass(frozen=True)
class SearchResult:
    """Everything one parallel search produced.

    Attributes
    ----------
    matches:
        Per-row boolean decisions (True = 'match', i.e. the SA fired).
    mismatch_counts:
        The *digital* per-row mismatch counts (ED* or HD) — what an
        ideal, variation-free array would measure.
    v_ml:
        The noisy analog matchline voltages the SAs actually saw.
    threshold:
        The threshold ``T`` the search used.
    mode:
        ED*/HD mode of this search.
    energy_joules:
        Array energy spent on this search.
    latency_ns:
        Search latency.
    """

    matches: np.ndarray
    mismatch_counts: np.ndarray
    v_ml: np.ndarray
    threshold: int
    mode: MatchMode
    energy_joules: float
    latency_ns: float


@dataclass
class SearchStats:
    """Cumulative per-array counters (benchmark bookkeeping)."""

    n_searches: int = 0
    n_rotation_cycles: int = 0
    total_energy_joules: float = 0.0
    total_latency_ns: float = 0.0

    def record(self, result: SearchResult) -> None:
        self.n_searches += 1
        self.total_energy_joules += result.energy_joules
        self.total_latency_ns += result.latency_ns


class CamArray:
    """One ML-CAM array in either the charge or the current domain.

    Parameters
    ----------
    rows, cols:
        Geometry (M segments of N bases); the paper uses 256 x 256.
    domain:
        ``"charge"`` (ASMCap) or ``"current"`` (EDAM).
    sigma_rel:
        Relative device variation; defaults to the paper's value for
        the chosen domain (1.4 % capacitor / 2.5 % current).
    noisy:
        Master switch for variation noise (False = ideal array).
    seed:
        Seed for the noise generator.
    strict_paper_vref:
        Use the literal ``V_ref = T/N*VDD`` rule (see
        :mod:`repro.cam.sense_amp`).
    """

    def __init__(self, rows: int = constants.ARRAY_ROWS,
                 cols: int = constants.ARRAY_COLS,
                 domain: str = "charge",
                 sigma_rel: "float | None" = None,
                 noisy: bool = True,
                 seed: int = 0,
                 strict_paper_vref: bool = False,
                 vdd: float = constants.VDD_VOLTS):
        if domain not in _DOMAINS:
            raise CamConfigError(
                f"domain must be one of {_DOMAINS}, got {domain!r}"
            )
        self._domain = domain
        self._plane = SramPlane(rows, cols)
        self._registers = ShiftRegisterBank(cols)
        self._registers.enable()
        self._noisy = noisy
        self._rng = np.random.default_rng(seed)
        self._vdd = vdd
        if domain == "charge":
            sigma = (constants.ASMCAP_CAPACITOR_SIGMA
                     if sigma_rel is None else sigma_rel)
            self._variation = ChargeDomainVariation(sigma_rel=sigma, vdd=vdd)
            self._matchline = ChargeDomainMatchline(vdd=vdd)
            self._sense_amp = SenseAmplifier(
                vdd=vdd, rising=True, strict_paper_rule=strict_paper_vref
            )
            self._search_time_ns = constants.ASMCAP_SEARCH_TIME_NS
        else:
            sigma = (constants.EDAM_CURRENT_SIGMA
                     if sigma_rel is None else sigma_rel)
            self._variation = CurrentDomainVariation(sigma_rel=sigma, vdd=vdd)
            self._matchline = CurrentDomainMatchline(vdd=vdd)
            self._sense_amp = SenseAmplifier(
                vdd=vdd, rising=False, strict_paper_rule=strict_paper_vref
            )
            self._search_time_ns = constants.EDAM_SEARCH_TIME_NS
        self.stats = SearchStats()

    # -- configuration ----------------------------------------------------

    @property
    def rows(self) -> int:
        return self._plane.rows

    @property
    def cols(self) -> int:
        return self._plane.cols

    @property
    def domain(self) -> str:
        return self._domain

    @property
    def noisy(self) -> bool:
        return self._noisy

    @property
    def search_time_ns(self) -> float:
        return self._search_time_ns

    @property
    def plane(self) -> SramPlane:
        return self._plane

    @property
    def registers(self) -> ShiftRegisterBank:
        return self._registers

    @property
    def sense_amp(self) -> SenseAmplifier:
        return self._sense_amp

    @property
    def variation(self):
        return self._variation

    # -- data path --------------------------------------------------------

    def store(self, segments: np.ndarray) -> None:
        """Write reference segments into the rows (row 0 upward)."""
        self._plane.write_all(segments)

    def stored_segments(self) -> np.ndarray:
        """The valid stored rows as an ``(n_written, N)`` matrix."""
        mask = self._plane.written_mask
        return self._plane.data[mask]

    def mismatch_counts(self, read: np.ndarray, mode: MatchMode) -> np.ndarray:
        """Digital per-row mismatch counts for *read* (no analog path)."""
        read = self._check_read(read)
        segments = self.stored_segments()
        if segments.shape[0] == 0:
            raise CamConfigError("search issued against an empty array")
        o_l, o_c, o_r = match_planes(segments, read)
        if mode is MatchMode.ED_STAR:
            matched = o_l | o_c | o_r
        else:
            matched = o_c
        return np.count_nonzero(~matched, axis=1)

    def search(self, read: np.ndarray, threshold: int,
               mode: MatchMode = MatchMode.ED_STAR) -> SearchResult:
        """One parallel search of *read* against all stored rows."""
        if not 0 <= threshold <= self.cols:
            raise ThresholdError(
                f"threshold {threshold} out of range 0..{self.cols}"
            )
        counts = self.mismatch_counts(read, mode)

        if self._domain == "charge":
            v_ideal = self._matchline.ideal_voltage(counts, self.cols)
        else:
            v_ideal = self._matchline.sampled_voltage(counts, self.cols)
        if self._noisy:
            noise = self._variation.sample_noise(counts, self.cols, self._rng)
            if self._domain == "current":
                noise = -noise  # droop noise subtracts from the sampled level
            v_ml = v_ideal + noise
        else:
            v_ml = v_ideal.astype(float)

        matches = self._sense_amp.decide(v_ml, threshold, self.cols)
        energy = self._search_energy(counts)
        result = SearchResult(
            matches=matches, mismatch_counts=counts, v_ml=v_ml,
            threshold=threshold, mode=mode, energy_joules=energy,
            latency_ns=self._search_time_ns,
        )
        self.stats.record(result)
        return result

    def search_rotated(self, read: np.ndarray, threshold: int, rotation: int,
                       mode: MatchMode = MatchMode.ED_STAR) -> SearchResult:
        """Search with the read rotated through the shift registers.

        Positive *rotation* rotates left; each base of rotation costs
        one register cycle which the stats record (TASR's overhead,
        Section IV-B).
        """
        read = self._check_read(read)
        self._registers.load(read)
        if rotation != 0:
            self._registers.rotate_left(rotation)
            self.stats.n_rotation_cycles += abs(int(rotation))
        return self.search(self._registers.contents(), threshold, mode)

    # -- internals ----------------------------------------------------------

    def _check_read(self, read: np.ndarray) -> np.ndarray:
        read = np.asarray(read, dtype=np.uint8)
        if read.shape != (self.cols,):
            raise CamConfigError(
                f"read shape {read.shape} does not fit array width {self.cols}"
            )
        return read

    def _search_energy(self, counts: np.ndarray) -> float:
        """Array energy for one search with the given per-row counts."""
        n_rows = counts.shape[0]
        if self._domain == "charge":
            cells = float(search_energy_per_row(counts, self.cols,
                                                vdd=self._vdd).sum())
        else:
            precharge = (constants.EDAM_ML_PRECHARGE_CAP_F
                         * self._vdd**2 * n_rows)
            discharge = (constants.EDAM_DISCHARGE_ENERGY_PER_MISMATCH_J
                         * float(counts.sum()))
            cells = precharge + discharge
        peripherals = constants.SA_ENERGY_PER_ROW_J * n_rows
        return cells + peripherals
