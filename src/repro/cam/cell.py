"""Single ASMCap cell logic model (Fig. 4(c)).

One cell stores one reference base and, during a search, sees three
searchline inputs: the co-located read base and its left and right
neighbours.  The comparison logic produces three partial match results

* ``O_L`` — stored base equals the read base one position to the left,
* ``O_C`` — stored base equals the co-located read base,
* ``O_R`` — stored base equals the read base one position to the right,

and two MUXes controlled by the shared mode-select signal ``S`` combine
them into the cell output ``O``:

* ``S = 1`` (ED* mode): ``O = not (O_L or O_C or O_R)`` — the cell
  contributes a *mismatch* only when all three comparisons fail;
* ``S = 0`` (HD mode): ``O = not O_C`` — plain Hamming behaviour.

``O = 1`` means "mismatched cell": the cell drives GND onto the bottom
plate of its capacitor... actually the matched cell drives GND and the
mismatched cell drives VDD, so that ``V_ML = n_mis / N * VDD`` rises
with the mismatch count (Section III-C).  The array model
(:mod:`repro.cam.array`) evaluates this logic vectorised; this class
exists for unit-level verification and didactic use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CamConfigError
from repro.genome import alphabet


class MatchMode(enum.Enum):
    """The two search modes selected by the shared MUX signal ``S``."""

    ED_STAR = "ed_star"   # S = 1: O = O_C + O_L + O_R
    HAMMING = "hamming"   # S = 0: O = O_C

    @property
    def select_signal(self) -> int:
        """The value of ``S`` for this mode."""
        return 1 if self is MatchMode.ED_STAR else 0


#: Sentinel searchline value for a missing neighbour (row edge).  No
#: stored base can equal it, so the comparison contributes no match.
NO_NEIGHBOR = -1


@dataclass(frozen=True)
class PartialMatch:
    """The three comparator outputs of one cell for one search."""

    o_l: bool
    o_c: bool
    o_r: bool

    def combined(self, mode: MatchMode) -> bool:
        """The matched/mismatched decision after the mode MUX.

        Returns True when the cell is a *matched* cell.
        """
        if mode is MatchMode.ED_STAR:
            return self.o_l or self.o_c or self.o_r
        return self.o_c


class AsmCapCell:
    """Behavioural model of one ASMCap cell."""

    def __init__(self, stored_code: int):
        if not 0 <= stored_code < alphabet.ALPHABET_SIZE:
            raise CamConfigError(
                f"stored code must be 0..3, got {stored_code}"
            )
        self._stored = int(stored_code)

    @property
    def stored_code(self) -> int:
        return self._stored

    @property
    def stored_base(self) -> str:
        return alphabet.CODE_TO_BASE[self._stored]

    def compare(self, left: int, co_located: int, right: int) -> PartialMatch:
        """Evaluate the three comparators against searchline inputs.

        Any input may be :data:`NO_NEIGHBOR` at the row edges.
        """
        return PartialMatch(
            o_l=left == self._stored,
            o_c=co_located == self._stored,
            o_r=right == self._stored,
        )

    def output(self, left: int, co_located: int, right: int,
               mode: MatchMode) -> int:
        """Cell output ``O``: 1 = mismatched cell, 0 = matched cell."""
        return 0 if self.compare(left, co_located, right).combined(mode) else 1

    def capacitor_bottom_voltage(self, left: int, co_located: int, right: int,
                                 mode: MatchMode, vdd: float) -> float:
        """Voltage driven onto the capacitor bottom plate.

        Mismatched cells drive VDD, matched cells drive GND, producing
        the linear charge-domain transfer ``V_ML = n_mis/N * VDD``.
        """
        return vdd if self.output(left, co_located, right, mode) else 0.0

    #: Transistor budget per cell, used by the area model: two 6T SRAM
    #: cells, 3 x 4T comparison logic (XNOR-style compare per searchline
    #: pair), 2 NMOS mode MUXes (the HDAC addition, Section IV-A), and
    #: the output driver.  The MIM capacitor sits above the cell.
    TRANSISTOR_COUNT = 2 * 6 + 3 * 4 + 2 + 2
