"""Counter-based keyed random streams for order-independent noise.

The batched search engine needs a noise source with a property
sequential generators cannot offer: the noise of search *q* must depend
only on its **key** — not on how many searches ran before it, which
thread ran it, or whether it was part of a batch.  That is what makes
scalar, batched, chunked and sharded executions bit-identical (see
:mod:`repro.cam.array`).

This module implements that source as a counter-based RNG:

* a key (tuple of ints) is folded into one 64-bit state with the
  splitmix64 finaliser chain (:func:`fold_key`);
* value ``i`` of the stream is ``finalise(state + i * GOLDEN)`` — the
  textbook splitmix64 construction, vectorised over numpy ``uint64``
  arrays (modular wrap-around is the intended arithmetic);
* uniforms take the top 53 bits; standard normals combine two uniforms
  through the Box-Muller transform.

Statistical quality is ample for Monte-Carlo device noise (splitmix64
passes BigCrush), and every draw costs a handful of vectorised ufunc
ops — no per-query ``Generator`` construction.
"""

from __future__ import annotations

import math

import numpy as np

_MASK = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB

_U64_GOLDEN = np.uint64(_GOLDEN)
_U64_MIX1 = np.uint64(_MIX1)
_U64_MIX2 = np.uint64(_MIX2)
#: 2**-53 — maps the top 53 bits of a draw onto [0, 1).
_INV_2_53 = float(2.0 ** -53)


def fold_key(components: "tuple[int, ...]") -> int:
    """Fold a key tuple into one 64-bit stream state.

    Pure-python modular arithmetic (scalar numpy uint64 ops would warn
    on the intended wrap-around).  Each component passes through the
    splitmix64 finaliser so nearby keys land in unrelated states.
    """
    return fold_key_from(_GOLDEN, components)


def fold_key_from(prefix_state: int,
                  components: "tuple[int, ...]") -> int:
    """Continue folding key components onto an existing state.

    ``fold_key_from(fold_key(a), b) == fold_key(a + b)`` — callers
    cache the fold of a constant prefix and append per-query suffixes.
    """
    state = int(prefix_state)
    for component in components:
        state = (state + (int(component) & _MASK) * _GOLDEN) & _MASK
        state = _finalize_int(state)
    return state


def _finalize_int(z: int) -> int:
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK
    return z ^ (z >> 31)


def fold_key_block(prefix_state: int, columns: np.ndarray) -> np.ndarray:
    """Fold a block of key suffixes onto one shared prefix state.

    ``prefix_state`` is ``fold_key(prefix)`` for the components every
    key shares; ``columns`` is ``(B,)`` or ``(B, K)`` of non-negative
    ints holding each key's remaining components.  Row ``q`` of the
    result equals ``fold_key(prefix + tuple(columns[q]))`` — the
    vectorised form the batched search path uses so folding ``B`` keys
    costs ``K`` ufunc sweeps instead of ``B`` python loops.
    """
    columns = np.asarray(columns, dtype=np.uint64)
    if columns.ndim == 1:
        columns = columns[:, None]
    states = np.full(columns.shape[0], np.uint64(prefix_state),
                     dtype=np.uint64)
    for k in range(columns.shape[1]):
        states = _finalize(states + columns[:, k] * _U64_GOLDEN)
    return states


def _finalize(z: np.ndarray) -> np.ndarray:
    z = (z ^ (z >> np.uint64(30))) * _U64_MIX1
    z = (z ^ (z >> np.uint64(27))) * _U64_MIX2
    return z ^ (z >> np.uint64(31))


def _bits(states: np.ndarray, counters: np.ndarray) -> np.ndarray:
    """Raw 64-bit draws for broadcastable (states, counters) blocks."""
    return _finalize(states + counters * _U64_GOLDEN)


def uniforms(states: "np.ndarray | int",
             counters: np.ndarray) -> np.ndarray:
    """Uniform [0, 1) draws; entry ``i`` depends only on its counter.

    ``states`` is one folded key (scalar) or a ``(B,)``/broadcastable
    block of folded keys; ``counters`` selects the draw index within
    each stream.
    """
    states = np.asarray(states, dtype=np.uint64)
    counters = np.asarray(counters, dtype=np.uint64)
    return (_bits(states, counters) >> np.uint64(11)).astype(float) \
        * _INV_2_53


def standard_normals(states: "np.ndarray | int", n: int) -> np.ndarray:
    """``n`` standard-normal draws per stream via Box-Muller.

    Each uniform pair yields both Box-Muller outputs (cos and sin), so
    ``n`` draws cost ``n/2`` transforms.  ``states`` of shape ``(B,)``
    yields a ``(B, n)`` block whose row ``q`` is exactly the block a
    scalar call with ``states[q]`` would produce — the property the
    scalar/batched equivalence rests on.
    """
    states = np.asarray(states, dtype=np.uint64)
    block = states.reshape(states.shape + (1,))
    n_pairs = (n + 1) // 2
    counters = np.arange(n_pairs, dtype=np.uint64)
    u1 = (_bits(block, counters * np.uint64(2)) >> np.uint64(11)) \
        .astype(float)
    u2 = uniforms(block, counters * np.uint64(2) + np.uint64(1))
    # Shift u1 into (0, 1] so log() never sees 0.
    u1 = (u1 + 1.0) * _INV_2_53
    radius = np.sqrt(-2.0 * np.log(u1))
    angle = (2.0 * math.pi) * u2
    result = np.empty(states.shape + (2 * n_pairs,), dtype=float)
    result[..., 0::2] = radius * np.cos(angle)
    result[..., 1::2] = radius * np.sin(angle)
    if np.ndim(states) == 0:
        return result[:n]
    return result[..., :n]
