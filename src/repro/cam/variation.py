"""Device-variation models for the two ML-CAM flavours (Section V-D).

The accuracy advantage of the capacitive (charge-domain) matchline over
EDAM's current-domain matchline comes entirely from variation, so this
module is the heart of the accuracy comparison:

* **Charge domain** (ASMCap): with i.i.d. capacitors
  ``C ~ N(mu_C, sigma_C^2)`` the matchline voltage is a capacitive
  divider and its variance follows the paper's Eq. (2):

      Var(V_ML) ~= n_mis (N - n_mis) / N^3 * (sigma_C/mu_C)^2 * VDD^2

  The worst case sits at ``n_mis = N/2`` where
  ``sigma_max = (sigma_C/mu_C) * VDD / (2 sqrt(N))``.

* **Current domain** (EDAM): each mismatched cell sinks a discharge
  current ``I ~ N(mu_I, sigma_I^2)`` and the droop is sampled after a
  timing-controlled interval.  The paper characterises this chain by
  one number: it distinguishes at most ``S = 44`` states under the
  3-sigma rule.  We model the sampled value with the **noise floor that
  statement implies**: a sensing chain that resolves exactly S levels
  across the full scale has ``sigma = VDD / (2 * separation * S)``
  (~4.5 mV for S = 44, separation = 3), and an N-cell row maps its
  ``N + 1`` mismatch counts onto that same full scale, so *every*
  count decision sees this floor.  For ``N > S`` (the paper's 256-cell
  rows) adjacent counts are then closer than the noise floor and
  threshold decisions misjudge — exactly the read-length limitation the
  paper attributes to EDAM, and the source of its Monte-Carlo F1 gap.
  ``count_dependent=True`` switches to the optimistic i.i.d.-current
  scaling ``sqrt(n_mis) * sigma_I * VDD / N`` (whose worst case at
  ``n_mis = N`` reproduces the same 44-state bound) for the
  noise-model ablation bench; an optional timing-jitter term can be
  added to either form.

**Distinguishable states.** Adjacent V_ML levels are ``VDD / N`` apart.
Under the paper's 3-sigma rule each level must clear the decision
boundary by 3 sigma, i.e. adjacent means must be ``>= 6 sigma_max``
apart.  Solving for the largest N gives 566 states for ASMCap
(sigma_C/mu_C = 1.4 %) and 44 for EDAM (sigma_I/mu_I = 2.5 %) — the
numbers quoted in Section V-D and verified by the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import CamConfigError


def _validate(n_mismatch: np.ndarray, n_cells: int) -> np.ndarray:
    n_mismatch = np.asarray(n_mismatch)
    if n_cells <= 0:
        raise CamConfigError(f"n_cells must be positive, got {n_cells}")
    if (n_mismatch < 0).any() or (n_mismatch > n_cells).any():
        raise CamConfigError("n_mismatch must be within 0..n_cells")
    return n_mismatch


@dataclass(frozen=True)
class ChargeDomainVariation:
    """Capacitor-mismatch variation model (ASMCap)."""

    sigma_rel: float = constants.ASMCAP_CAPACITOR_SIGMA
    vdd: float = constants.VDD_VOLTS

    def sigma_vml(self, n_mismatch: "int | np.ndarray", n_cells: int) -> np.ndarray:
        """Standard deviation of V_ML per Eq. (2)."""
        n_mis = _validate(n_mismatch, n_cells)
        variance = (n_mis * (n_cells - n_mis) / n_cells**3
                    * self.sigma_rel**2 * self.vdd**2)
        return np.sqrt(variance)

    def worst_case_sigma(self, n_cells: int) -> float:
        """sigma at the worst-case mismatch count (n_mis = N/2)."""
        return float(self.sigma_rel * self.vdd / (2.0 * math.sqrt(n_cells)))

    def distinguishable_states(self,
                               separation: float = constants.SIGMA_SEPARATION
                               ) -> int:
        """Largest N with adjacent levels >= 2*separation*sigma apart.

        Level spacing is VDD/N and worst-case sigma is
        sigma_rel*VDD/(2 sqrt(N)); solving
        ``VDD/N >= 2*separation*sigma`` gives
        ``N <= (1 / (separation * sigma_rel))^2``.
        """
        if self.sigma_rel == 0.0:
            raise CamConfigError("zero variation supports unbounded states")
        return int(math.floor((1.0 / (separation * self.sigma_rel)) ** 2))

    def sample_noise(self, n_mismatch: np.ndarray, n_cells: int,
                     rng: np.random.Generator) -> np.ndarray:
        """Draw additive V_ML noise for each row."""
        sigma = self.sigma_vml(n_mismatch, n_cells)
        return rng.normal(0.0, 1.0, size=np.shape(n_mismatch)) * sigma


@dataclass(frozen=True)
class CurrentDomainVariation:
    """Discharge-current variation model (EDAM).

    Attributes
    ----------
    sigma_rel:
        Relative per-cell current variation sigma_I/mu_I.
    timing_jitter_rel:
        Relative sampling-time jitter; it multiplies the whole droop
        (``n_mis/N * VDD``), modelling the "time error" of Fig. 3(a).
    """

    sigma_rel: float = constants.EDAM_CURRENT_SIGMA
    timing_jitter_rel: float = 0.0
    vdd: float = constants.VDD_VOLTS
    count_dependent: bool = False
    separation: float = constants.SIGMA_SEPARATION

    def sensing_noise_floor(self) -> float:
        """The full-scale sensing sigma implied by the states limit.

        A chain distinguishing S levels under the ``separation``-sigma
        rule has adjacent levels ``2 * separation * sigma`` apart, so
        ``sigma = VDD / (2 * separation * S)``.
        """
        states = self.distinguishable_states(self.separation)
        return self.vdd / (2.0 * self.separation * states)

    def sigma_vml(self, n_mismatch: "int | np.ndarray", n_cells: int) -> np.ndarray:
        """Standard deviation of the sampled V_ML droop.

        Default: the sensing-chain noise floor applied uniformly (see
        the module docstring).  With ``count_dependent=True`` the
        optimistic ``sqrt(n_mis)`` i.i.d. scaling is used instead.
        """
        n_mis = _validate(n_mismatch, n_cells)
        if self.count_dependent:
            current_term = (np.sqrt(n_mis.astype(float))
                            * self.sigma_rel * self.vdd / n_cells)
        else:
            current_term = np.full(np.shape(n_mis),
                                   self.sensing_noise_floor())
        timing_term = (n_mis.astype(float) / n_cells
                       * self.timing_jitter_rel * self.vdd)
        return np.sqrt(current_term**2 + timing_term**2)

    def worst_case_sigma(self, n_cells: int) -> float:
        """Largest per-row sigma this model produces."""
        if self.count_dependent:
            current = self.sigma_rel * self.vdd / math.sqrt(n_cells)
        else:
            current = self.sensing_noise_floor()
        timing = self.timing_jitter_rel * self.vdd
        return float(math.hypot(current, timing))

    def distinguishable_states(self,
                               separation: float = constants.SIGMA_SEPARATION
                               ) -> int:
        """Largest N with adjacent levels >= 2*separation*sigma apart.

        With sigma_max = sigma_rel*VDD/sqrt(N) (jitter excluded, as the
        paper's estimate is) the bound is
        ``N <= (1 / (2 * separation * sigma_rel))^2``.
        """
        if self.sigma_rel == 0.0:
            raise CamConfigError("zero variation supports unbounded states")
        return int(math.floor((1.0 / (2.0 * separation * self.sigma_rel)) ** 2))

    def sample_noise(self, n_mismatch: np.ndarray, n_cells: int,
                     rng: np.random.Generator) -> np.ndarray:
        """Draw additive sampled-droop noise for each row."""
        sigma = self.sigma_vml(n_mismatch, n_cells)
        return rng.normal(0.0, 1.0, size=np.shape(n_mismatch)) * sigma
