"""Matchline transfer functions: charge domain vs current domain (Fig. 3).

A matchline (ML) aggregates the outputs of all N cells in a row into one
analog voltage that encodes the mismatch count ``n_mis``:

* **Charge domain** (ASMCap): each cell drives VDD (mismatch) or GND
  (match) onto the bottom plate of its capacitor; all top plates share
  the ML.  The steady-state ML voltage is the capacitive divider

      V_ML = n_mis / N * VDD,

  time-independent, no pre-charge needed.

* **Current domain** (EDAM): the ML is pre-charged to VDD and every
  mismatched cell turns on a discharge transistor, so the droop slope
  scales with ``n_mis``; the sensed value depends on the sampling
  instant.  We model the *sampled* voltage at the nominal sample time
  ``t_s`` chosen so a fully mismatched row just reaches GND:

      V_ML(t_s) = VDD * (1 - n_mis / N),

  which makes the two domains directly comparable (both map the
  mismatch count onto an N-level voltage scale) while their *noise*
  models differ (:mod:`repro.cam.variation`).

Both classes return ideal voltages; callers add variation noise
explicitly so experiments can separate systematic and random effects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import CamConfigError


def _check_counts(n_mismatch: np.ndarray, n_cells: int) -> np.ndarray:
    counts = np.asarray(n_mismatch, dtype=float)
    if n_cells <= 0:
        raise CamConfigError(f"n_cells must be positive, got {n_cells}")
    if (counts < 0).any() or (counts > n_cells).any():
        raise CamConfigError("mismatch counts must be within 0..n_cells")
    return counts


@dataclass(frozen=True)
class ChargeDomainMatchline:
    """ASMCap's capacitive matchline: ``V_ML = n_mis/N * VDD``."""

    vdd: float = constants.VDD_VOLTS

    def ideal_voltage(self, n_mismatch: "int | np.ndarray",
                      n_cells: int) -> np.ndarray:
        """Steady-state ML voltage for each mismatch count."""
        counts = _check_counts(n_mismatch, n_cells)
        return counts / n_cells * self.vdd

    def level_spacing(self, n_cells: int) -> float:
        """Voltage gap between adjacent mismatch counts."""
        if n_cells <= 0:
            raise CamConfigError(f"n_cells must be positive, got {n_cells}")
        return self.vdd / n_cells

    #: The capacitive ML needs no pre-charge phase (Section III-C).
    REQUIRES_PRECHARGE = False
    #: ...and no sample-and-hold, because the output is static.
    REQUIRES_SAMPLING = False


@dataclass(frozen=True)
class CurrentDomainMatchline:
    """EDAM's discharge matchline, sampled at the nominal instant.

    The ML voltage decreases over time; ``sampled_voltage`` evaluates it
    at the design-point sample time where a fully mismatched row has
    discharged to GND.  ``voltage_at`` exposes the full time dependence
    for the didactic example scripts.
    """

    vdd: float = constants.VDD_VOLTS

    def sampled_voltage(self, n_mismatch: "int | np.ndarray",
                        n_cells: int) -> np.ndarray:
        """ML voltage at the nominal sample time."""
        counts = _check_counts(n_mismatch, n_cells)
        return self.vdd * (1.0 - counts / n_cells)

    def voltage_at(self, n_mismatch: "int | np.ndarray", n_cells: int,
                   t_fraction: "float | np.ndarray") -> np.ndarray:
        """ML voltage at a fraction of the nominal sample time.

        ``t_fraction = 1`` is the nominal instant; values above/below
        model timing error.  The voltage saturates at GND.
        """
        counts = _check_counts(n_mismatch, n_cells)
        droop = counts / n_cells * self.vdd * np.asarray(t_fraction, dtype=float)
        return np.maximum(0.0, self.vdd - droop)

    def level_spacing(self, n_cells: int) -> float:
        if n_cells <= 0:
            raise CamConfigError(f"n_cells must be positive, got {n_cells}")
        return self.vdd / n_cells

    REQUIRES_PRECHARGE = True
    REQUIRES_SAMPLING = True
