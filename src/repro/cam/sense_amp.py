"""Sense amplifier: threshold comparison on the matchline voltage.

The SAs compare ``V_ML`` with a reference voltage ``V_ref`` and output
'match' when the mismatch count implied by the voltage is at most the
threshold ``T`` (Section III-B).  Polarity differs per domain:

* charge domain — ``V_ML`` *rises* with mismatches, match when
  ``V_ML <= V_ref``;
* current domain — the sampled voltage *falls* with mismatches, match
  when ``V_ML >= V_ref``.

**Boundary placement.**  The paper sets ``V_ref = T/N * VDD``, which
puts the reference exactly *on* the level of a row with ``n_mis == T``.
Any amount of noise then misjudges about half of the exactly-``T`` rows.
We default to the mid-point between levels ``T`` and ``T+1``
(``V_ref = (T + 1/2)/N * VDD``), which is what a designer would
calibrate to; ``strict_paper_rule=True`` reproduces the literal paper
equation.  This choice is recorded in DESIGN.md.

An optional input-referred offset models SA imperfection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import ThresholdError


@dataclass(frozen=True)
class SenseAmplifier:
    """Threshold comparator bank for one CAM array.

    Attributes
    ----------
    vdd:
        Supply voltage.
    rising:
        True for the charge domain (V_ML rises with mismatches), False
        for the sampled current domain.
    offset_sigma:
        Input-referred offset standard deviation in volts (0 = ideal).
    strict_paper_rule:
        Place ``V_ref`` exactly at ``T/N*VDD`` instead of the midpoint.
    """

    vdd: float = constants.VDD_VOLTS
    rising: bool = True
    offset_sigma: float = 0.0
    strict_paper_rule: bool = False

    def reference_voltage(self, threshold: int, n_cells: int) -> float:
        """``V_ref`` for deciding ``n_mis <= threshold``."""
        return float(self.reference_voltages(np.asarray(threshold), n_cells))

    def reference_voltages(self, thresholds: np.ndarray,
                           n_cells: int) -> np.ndarray:
        """Vectorised ``V_ref`` for a block of per-query thresholds.

        The batched search path programs one reference per query (the
        SA reference DAC is shared across a row of queries streaming
        through the array); this evaluates them all at once.  The
        scalar :meth:`reference_voltage` delegates here so the two
        paths cannot drift.
        """
        if n_cells <= 0:
            raise ThresholdError(f"n_cells must be positive, got {n_cells}")
        thresholds = np.asarray(thresholds)
        if ((thresholds < 0) | (thresholds > n_cells)).any():
            raise ThresholdError(
                f"thresholds must be within 0..{n_cells}"
            )
        level = (thresholds.astype(float) if self.strict_paper_rule
                 else thresholds + 0.5)
        mismatch_fraction = level / n_cells
        if self.rising:
            return mismatch_fraction * self.vdd
        return (1.0 - mismatch_fraction) * self.vdd

    def decide_sweep(self, v_ml: np.ndarray, thresholds: np.ndarray,
                     n_cells: int) -> np.ndarray:
        """Decisions for every threshold of a sweep over one voltage block.

        ``v_ml`` is the ``(B, M)`` (or ``(M,)``) voltage block of one
        search pass; ``thresholds`` is the ``(T,)`` sweep vector.  The
        returned ``(T,) + v_ml.shape`` block's slice ``t`` is
        bit-identical to ``decide(v_ml, thresholds[t], n_cells)`` — the
        voltages are sampled once and every reference is compared
        against the same analog levels, which is what makes a
        threshold sweep cost one search pass instead of ``T``.

        Offset sampling is a per-decision draw, so a sweep over an
        imperfect SA bank (``offset_sigma > 0``) cannot share one
        voltage block; such banks must use :meth:`decide` per
        threshold.
        """
        if self.offset_sigma > 0.0:
            raise ThresholdError(
                "decide_sweep requires offset_sigma == 0; offset draws "
                "are per-decision and cannot be shared across a sweep"
            )
        v_ml = np.asarray(v_ml, dtype=float)
        thresholds = np.asarray(thresholds)
        if thresholds.ndim != 1:
            raise ThresholdError(
                f"thresholds must be a 1-D sweep vector, got shape "
                f"{thresholds.shape}"
            )
        v_ref = self.reference_voltages(thresholds, n_cells)
        v_ref = v_ref.reshape((thresholds.shape[0],) + (1,) * v_ml.ndim)
        if self.rising:
            return v_ml[None, ...] <= v_ref
        return v_ml[None, ...] >= v_ref

    def decide(self, v_ml: np.ndarray, threshold: "int | np.ndarray",
               n_cells: int,
               rng: "np.random.Generator | None" = None) -> np.ndarray:
        """Match decisions for a vector of matchline voltages.

        ``threshold`` may be a scalar (one search, ``v_ml`` of shape
        ``(M,)``) or a ``(B,)`` vector of per-query thresholds paired
        with a ``(B, M)`` voltage block from a batched search.
        """
        v_ml = np.asarray(v_ml, dtype=float)
        if np.ndim(threshold) == 0:
            v_ref = self.reference_voltage(int(threshold), n_cells)
        else:
            v_ref = self.reference_voltages(threshold, n_cells)[:, None]
        if self.offset_sigma > 0.0:
            if rng is None:
                raise ThresholdError(
                    "offset_sigma > 0 requires an rng for offset sampling"
                )
            v_ml = v_ml + rng.normal(0.0, self.offset_sigma, size=v_ml.shape)
        if self.rising:
            return v_ml <= v_ref
        return v_ml >= v_ref
