"""Energy and variance models for capacitive CAM search (Eq. 1 and 2).

The paper gives closed forms for a charge-domain search over an
``M x N`` array whose capacitors are i.i.d. ``N(mu_C, sigma_C^2)``:

    E_S        ~= M * n_mis * (N - n_mis) / N * mu_C * VDD^2      (Eq. 1)
    Var(V_ML)  ~= n_mis * (N - n_mis) / N^3 * (sigma_C/mu_C)^2 * VDD^2  (Eq. 2)

Both peak at ``n_mis = N/2`` and vanish at 0 and N.  Because genome
rows are almost always far from the query (``n_mis`` close to N), the
typical search energy sits well below the peak — the property the paper
uses to argue ASMCap's low power (Section III-C).

Eq. (1) treats all M rows as sharing one mismatch count; the per-row
form :func:`search_energy_per_row` sums the actual counts, which the
array model uses.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.errors import CamConfigError


def _check(n_mismatch: np.ndarray, n_cells: int) -> np.ndarray:
    counts = np.asarray(n_mismatch, dtype=float)
    if n_cells <= 0:
        raise CamConfigError(f"n_cells must be positive, got {n_cells}")
    if (counts < 0).any() or (counts > n_cells).any():
        raise CamConfigError("mismatch counts must be within 0..n_cells")
    return counts


def search_energy_eq1(n_mismatch: "int | np.ndarray", n_rows: int,
                      n_cells: int,
                      mu_c: float = constants.MIM_CAPACITOR_FARADS,
                      vdd: float = constants.VDD_VOLTS) -> np.ndarray:
    """Search energy per Eq. (1), joules.

    ``n_mismatch`` is the (shared) per-row mismatch count; ``n_rows`` is
    M and ``n_cells`` is N.
    """
    counts = _check(n_mismatch, n_cells)
    if n_rows <= 0:
        raise CamConfigError(f"n_rows must be positive, got {n_rows}")
    return n_rows * counts * (n_cells - counts) / n_cells * mu_c * vdd**2


def search_energy_per_row(n_mismatch: np.ndarray, n_cells: int,
                          mu_c: float = constants.MIM_CAPACITOR_FARADS,
                          vdd: float = constants.VDD_VOLTS) -> np.ndarray:
    """Per-row charge-domain search energy, joules.

    One entry per row with that row's actual mismatch count; summing
    gives the whole-array search energy.
    """
    counts = _check(n_mismatch, n_cells)
    return counts * (n_cells - counts) / n_cells * mu_c * vdd**2


def vml_variance_eq2(n_mismatch: "int | np.ndarray", n_cells: int,
                     sigma_rel: float = constants.ASMCAP_CAPACITOR_SIGMA,
                     vdd: float = constants.VDD_VOLTS) -> np.ndarray:
    """Matchline-voltage variance per Eq. (2), volts^2."""
    counts = _check(n_mismatch, n_cells)
    return counts * (n_cells - counts) / n_cells**3 * sigma_rel**2 * vdd**2


def worst_case_mismatch(n_cells: int) -> int:
    """The mismatch count that maximises Eq. (1)/(2): ``N // 2``."""
    if n_cells <= 0:
        raise CamConfigError(f"n_cells must be positive, got {n_cells}")
    return n_cells // 2


def typical_genome_energy_ratio(n_cells: int,
                                typical_mismatch_fraction: float = 0.7
                                ) -> float:
    """Energy of a typical genome row relative to the worst case.

    Genome rows unrelated to the query mismatch at roughly
    ``1 - 1/4 - neighbour credit`` of positions (~70 % for DNA under the
    ED* rule); this helper quantifies the paper's claim that typical
    search energy sits far below the Eq. (1) peak.
    """
    if not 0.0 <= typical_mismatch_fraction <= 1.0:
        raise CamConfigError("typical_mismatch_fraction must be in [0, 1]")
    n_typ = typical_mismatch_fraction * n_cells
    peak = worst_case_mismatch(n_cells)
    peak_energy = peak * (n_cells - peak)
    if peak_energy == 0:
        return 0.0
    return float(n_typ * (n_cells - n_typ) / peak_energy)
