"""Shift registers with enable signal — the TASR rotation hardware.

The search data path of an ASMCap array includes shift registers that
can rotate the input read left or right base-by-base (Fig. 4(b)); the
TASR strategy re-issues the search with the rotated read, one extra
cycle per rotation (Section IV-B).  This model tracks the register
contents and counts shift cycles so the timing model can charge them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CamConfigError
from repro.genome import alphabet


class ShiftRegisterBank:
    """Rotating register bank holding one read."""

    def __init__(self, width: int):
        if width <= 0:
            raise CamConfigError(f"register width must be positive, got {width}")
        self._width = width
        self._data: np.ndarray | None = None
        self._enabled = False
        self._shift_cycles = 0
        self._net_rotation = 0

    @property
    def width(self) -> int:
        return self._width

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def shift_cycles(self) -> int:
        """Total single-base shift cycles performed (timing model input)."""
        return self._shift_cycles

    @property
    def net_rotation(self) -> int:
        """Current rotation relative to the loaded read (left-positive)."""
        return self._net_rotation

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def load(self, codes: np.ndarray) -> None:
        """Load a read; resets the rotation state."""
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.shape != (self._width,):
            raise CamConfigError(
                f"read shape {codes.shape} does not fit register width "
                f"{self._width}"
            )
        if codes.size and int(codes.max()) >= alphabet.ALPHABET_SIZE:
            raise CamConfigError("read codes must be 2-bit (0..3)")
        self._data = codes.copy()
        self._net_rotation = 0

    def contents(self) -> np.ndarray:
        """Current register contents (copy)."""
        if self._data is None:
            raise CamConfigError("shift registers have not been loaded")
        return self._data.copy()

    def rotate_left(self, steps: int = 1) -> np.ndarray:
        """Rotate left *steps* bases (one cycle per base)."""
        return self._rotate(steps)

    def rotate_right(self, steps: int = 1) -> np.ndarray:
        """Rotate right *steps* bases (one cycle per base)."""
        return self._rotate(-steps)

    def _rotate(self, steps: int) -> np.ndarray:
        if self._data is None:
            raise CamConfigError("shift registers have not been loaded")
        if not self._enabled:
            raise CamConfigError(
                "shift registers are disabled; call enable() before rotating"
            )
        if steps == 0:
            return self.contents()
        self._data = np.roll(self._data, -steps)
        self._shift_cycles += abs(int(steps))
        self._net_rotation = (self._net_rotation + steps) % self._width
        return self.contents()

    def reset_counters(self) -> None:
        """Zero the cycle counters (e.g. between benchmark iterations)."""
        self._shift_cycles = 0
