"""Behavioural circuit models of the ML-CAM arrays.

* :mod:`repro.cam.sram` — storage plane;
* :mod:`repro.cam.cell` — single-cell comparison logic (Fig. 4(c));
* :mod:`repro.cam.matchline` — charge/current-domain transfer functions;
* :mod:`repro.cam.variation` — Monte-Carlo device variation (Sec. V-D);
* :mod:`repro.cam.sense_amp` — threshold comparison;
* :mod:`repro.cam.shift_register` — TASR rotation hardware;
* :mod:`repro.cam.energy` — Eq. (1)/(2) energy and variance models;
* :mod:`repro.cam.array` — the assembled M x N array.
"""

from repro.cam.array import (
    BatchSearchResult,
    CamArray,
    SearchResult,
    SearchStats,
    StoredReference,
    SweepSearchResult,
)
from repro.cam.cell import NO_NEIGHBOR, AsmCapCell, MatchMode, PartialMatch
from repro.cam.defects import DefectiveArray, DefectMap
from repro.cam.energy import (
    search_energy_eq1,
    search_energy_per_row,
    typical_genome_energy_ratio,
    vml_variance_eq2,
    worst_case_mismatch,
)
from repro.cam.matchline import ChargeDomainMatchline, CurrentDomainMatchline
from repro.cam.sense_amp import SenseAmplifier
from repro.cam.shift_register import ShiftRegisterBank
from repro.cam.sram import SramPlane
from repro.cam.variation import ChargeDomainVariation, CurrentDomainVariation

__all__ = [
    "AsmCapCell",
    "BatchSearchResult",
    "CamArray",
    "ChargeDomainMatchline",
    "ChargeDomainVariation",
    "DefectMap",
    "DefectiveArray",
    "CurrentDomainMatchline",
    "CurrentDomainVariation",
    "MatchMode",
    "NO_NEIGHBOR",
    "PartialMatch",
    "SearchResult",
    "SearchStats",
    "StoredReference",
    "SweepSearchResult",
    "SenseAmplifier",
    "ShiftRegisterBank",
    "SramPlane",
    "search_energy_eq1",
    "search_energy_per_row",
    "typical_genome_energy_ratio",
    "vml_variance_eq2",
    "worst_case_mismatch",
]
