"""Multi-session concurrent mapping front end over one shared reference.

The accelerator's whole economic argument is amortisation: one
expensive resource — the reference, encoded and stored in the CAM
arrays — serves an entire read workload.  PR 4's
:class:`~repro.service.stream.StreamingMappingService` modelled the
*time* axis of that amortisation (a single long-running feed) but not
the *client* axis: every service instance re-encoded and re-stored the
reference and served exactly one synchronous caller.

:class:`MappingFrontend` adds the client axis:

* **encode once** — the reference is stored and one-hot-encoded
  exactly once, as a sealed, immutable
  :class:`~repro.cam.array.StoredReference` (per shard for the sharded
  engine), shared by every session;
* **many sessions** — :meth:`MappingFrontend.session` opens an
  independent :class:`MappingSession`: its own seed (keyed noise
  prefix, HDAC stream), threshold, micro-batch size, compacting cost
  ledgers and aggregate report, all borrowing the shared reference;
* **one worker pool** — a persistent, autotuned
  (:func:`repro.arch.autotune.plan_service_pool`) pool of dispatch
  workers executes queued micro-batches **fairly**: the scheduler
  round-robins across sessions with pending work, so one heavy feed
  cannot starve the others; a session's own batches run serially, in
  submission order (one worker at a time), which is what keeps its
  report folding deterministic;
* **bounded backlog** — at most ``max_backlog`` queued micro-batches
  frontend-wide; a full backlog either blocks the submitting thread
  (``backpressure="block"``, the default) or raises
  :class:`~repro.errors.ServiceError` (``backpressure="error"``);
* for the sharded engine, every session's pipeline shares the
  frontend's one persistent shard fan-out — a thread executor
  (``shard_engine="thread"``) or one
  :class:`~repro.parallel.ProcessShardEngine` whose spawned workers
  attach the shared-memory shard references once and serve every
  session's self-contained tasks (``shard_engine="process"``) —
  instead of owning a pool each.

**Session-isolation / determinism contract.**  A session configured
with ``(seed, threshold, micro_batch, compaction)`` and fed a read
sequence is **bit-identical** — per-read decisions, per-read costs,
and the aggregate report — to a standalone
:class:`~repro.service.stream.StreamingMappingService` built with the
same configuration over the same reads, no matter how many other
sessions run concurrently, how their feeds interleave, how many pool
workers exist, or where micro-batch boundaries fall.  This holds
because every random draw is keyed by ``(seed, read index, pass)``
(never by wall-clock, thread or batch shape), the shared reference is
immutable, and per-session state (ledgers, RNG, report) is never
shared.  ``tests/service/test_frontend.py`` asserts it under
concurrent randomized feeds; DESIGN.md states the binding rules.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

import numpy as np

from repro.arch.autotune import (
    MIN_SERVICE_BACKLOG,
    plan_microbatch,
    plan_service_pool,
    resolve_engine,
)
from repro.arch.scheduler import bank_row_ranges
from repro.cam.array import StoredReference, as_segments_matrix
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.core.pipeline import (
    MappingReport,
    ReadMapping,
    ReadMappingPipeline,
    ShardedReadMappingPipeline,
    encode_shard_references,
    resolve_shard_plan,
)
from repro.refstore.format import slice_stored_reference
from repro.cost.events import ReferenceLoad
from repro.cost.ledger import CostLedger
from repro.cost.views import SearchStats
from repro.errors import CamConfigError, ServiceError
from repro.faults.hooks import fire as _fire_fault
from repro.genome.edits import ErrorModel
from repro.genome.reads import ReadRecord
from repro.parallel import ProcessShardEngine
from repro.service.stream import (
    DEFAULT_SERVICE_COMPACTION,
    ServiceStats,
    engine_ledgers,
    engine_merged_stats,
    engine_observability,
    validate_service_knobs,
)

_ENGINES = ("batched", "sharded")
_BACKPRESSURE = ("block", "error")


class _QueuedBatch:
    """One session micro-batch awaiting a dispatch worker.

    Carries its determinism anchor explicitly: ``first_read_index`` is
    assigned at *enqueue* time (submission order), so no scheduling
    reordering can ever perturb the keyed noise streams.
    """

    __slots__ = ("first_read_index", "codes")

    def __init__(self, first_read_index: int, codes: "list[np.ndarray]"):
        self.first_read_index = first_read_index
        self.codes = codes


class MappingSession:
    """One independent client stream over a frontend's shared reference.

    Mirrors the :class:`~repro.service.stream.StreamingMappingService`
    surface (``submit`` / ``submit_many`` / ``flush`` / ``drain`` /
    ``close`` / ``stats`` / ``report``) with asynchronous execution:
    full micro-batches are queued to the frontend's worker pool, and
    :meth:`drain` / :meth:`close` wait for this session's queue to
    empty.  A session is intended to be fed by one client thread
    (results and lifecycle are still safe to *read* from others).

    Created by :meth:`MappingFrontend.session` — not directly.
    """

    def __init__(self, frontend: "MappingFrontend", index: int,
                 pipeline, threshold: int, micro_batch: int,
                 retain_mappings: bool, cols: int):
        self._frontend = frontend
        self._index = index
        self._pipeline = pipeline
        self._threshold = int(threshold)
        self._micro_batch = int(micro_batch)
        self._retain_mappings = bool(retain_mappings)
        # Explicit, not frontend.cols: on a catalog frontend each
        # session's width follows its own named reference.
        self._cols = int(cols)
        #: Serialises engine dispatches against ledger-reading
        #: observability calls; always acquired BEFORE the frontend
        #: lock (the one global lock-ordering rule).
        self._dispatch_mutex = threading.Lock()
        # Everything below is guarded by the frontend's lock.
        self._buffer: "list[np.ndarray]" = []
        self._pending: "deque[_QueuedBatch]" = deque()
        self._executing = False
        self._report = MappingReport()
        self._last_batch: "tuple[ReadMapping, ...]" = ()
        self._n_submitted = 0
        self._n_enqueued = 0
        self._n_dispatched = 0
        self._n_batches = 0
        self._closed = False
        self._closing = False
        self._failure: "BaseException | None" = None
        self._started_at: "float | None" = None
        self._idle = threading.Condition(frontend._lock)

    # -- configuration ------------------------------------------------------

    @property
    def index(self) -> int:
        """Stable session number within the frontend (open order)."""
        return self._index

    @property
    def engine(self) -> str:
        return self._frontend.engine

    @property
    def threshold(self) -> int:
        return self._threshold

    @property
    def micro_batch(self) -> int:
        """Reads coalesced per queued dispatch."""
        return self._micro_batch

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pipeline(self):
        """This session's private engine (its arrays borrow the
        frontend's shared stored reference)."""
        return self._pipeline

    @property
    def report(self) -> MappingReport:
        """Aggregate over every *completed* dispatch — a defensive
        snapshot, safe to mutate (same contract as the standalone
        service after the aliasing fix)."""
        with self._frontend._lock:
            return self._report.snapshot()

    @property
    def batches_dispatched(self) -> int:
        """Micro-batches completed so far."""
        with self._frontend._lock:
            return self._n_batches

    @property
    def last_batch_mappings(self) -> "tuple[ReadMapping, ...]":
        """The most recently completed micro-batch's per-read results
        (replaced wholesale per dispatch; bounded on endless feeds)."""
        with self._frontend._lock:
            return self._last_batch

    # -- feed ---------------------------------------------------------------

    def submit(self, read: "np.ndarray | ReadRecord") -> None:
        """Accept one read; queue a micro-batch whenever one fills.

        Raises :class:`~repro.errors.ServiceError` once the session or
        frontend is closed, or (``backpressure="error"``) when the
        frontend backlog is full; with ``backpressure="block"`` a full
        backlog blocks here until a worker frees a slot.  A rejected
        submit is **all-or-nothing**: the read was *not* accepted, so
        the caller retries the same read after backing off (no risk of
        duplicating it).
        """
        codes = np.asarray(
            read.read.codes if isinstance(read, ReadRecord) else read,
            dtype=np.uint8,
        )
        if codes.shape != (self._cols,):
            raise CamConfigError(
                f"read shape {codes.shape} does not fit reference width "
                f"{self._cols}"
            )
        with self._frontend._lock:
            self._check_open_locked()
            if self._started_at is None:
                self._started_at = time.perf_counter()
            self._buffer.append(codes)
            self._n_submitted += 1
            if len(self._buffer) >= self._micro_batch:
                try:
                    self._enqueue_locked()
                except ServiceError:
                    # Backlog full under the error policy: hand the
                    # read back so a retry cannot duplicate it.
                    self._buffer.pop()
                    self._n_submitted -= 1
                    raise

    def submit_many(
            self,
            reads: "Iterable[np.ndarray] | Iterable[ReadRecord]") -> int:
        """Consume any read iterable, queueing batches as they fill.

        Lazy — an endless generator works; at most one micro-batch is
        ever coalesced here (queued batches are bounded by the
        frontend backlog).  Returns how many reads were accepted.
        """
        n = 0
        for read in reads:
            self.submit(read)
            n += 1
        return n

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> int:
        """Queue the buffered reads now, full micro-batch or not.

        Returns how many reads were queued (0 when the buffer was
        empty — flushing twice is a no-op, not an error).  Unlike the
        synchronous service this does *not* wait for execution;
        :meth:`drain` does.
        """
        with self._frontend._lock:
            self._check_open_locked()
            return self._enqueue_locked()

    def drain(self) -> MappingReport:
        """Flush, wait until this session's queue is fully executed,
        and return the aggregate report (a defensive snapshot).

        The session stays open — a long-running caller drains at
        checkpoint boundaries and keeps feeding.
        """
        with self._frontend._lock:
            self._check_open_locked()
            self._enqueue_locked(wait=True)
            self._wait_idle_locked()
            return self._report.snapshot()

    def close(self) -> MappingReport:
        """Drain, end the session, and return the final report.

        Idempotent; later :meth:`submit` / :meth:`flush` /
        :meth:`drain` calls raise
        :class:`~repro.errors.ServiceError`.  Each call returns a
        fresh defensive snapshot.
        """
        with self._frontend._lock:
            if not self._closed:
                self._check_failure_locked()
                # Refuse new feeds from here on: a concurrent submitter
                # refilling the queue must not keep the drain below
                # from ever terminating.
                self._closing = True
                if self._frontend._running:
                    self._enqueue_locked(wait=True)
                    self._wait_idle_locked()
                elif self._buffer or self._pending or self._executing:
                    # The frontend stopped (no workers left) while this
                    # session still had accepted-but-unexecuted reads:
                    # surface the loss instead of waiting forever.
                    raise ServiceError(
                        f"the mapping frontend was closed while session "
                        f"{self._index} still had reads in flight"
                    )
                self._closed = True
            return self._report.snapshot()

    def __enter__(self) -> "MappingSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- observability ------------------------------------------------------

    def ledgers(self) -> "tuple[CostLedger, ...]":
        """This session's cost ledgers (engine order)."""
        return engine_ledgers(self._frontend.engine, self._pipeline)

    def merged_stats(self) -> SearchStats:
        """Whole-session search counters (exact under compaction)."""
        with self._dispatch_mutex:
            return engine_merged_stats(self._frontend.engine,
                                       self._pipeline)

    def stats(self) -> ServiceStats:
        """Snapshot this session's observable state
        (:class:`~repro.service.stream.ServiceStats`)."""
        # Lock order: dispatch mutex first (freezes the ledgers), then
        # the frontend lock (freezes the counters) — the same order the
        # dispatch workers use.
        with self._dispatch_mutex:
            stats = engine_merged_stats(self._frontend.engine,
                                        self._pipeline)
            (pass_counts, events_live, events_folded, population,
             compactions) = engine_observability(self._frontend.engine,
                                                 self._pipeline)
            with self._frontend._lock:
                wall = (0.0 if self._started_at is None
                        else time.perf_counter() - self._started_at)
                return ServiceStats(
                    reads_submitted=self._n_submitted,
                    reads_dispatched=self._n_dispatched,
                    reads_in_flight=self._n_submitted - self._n_dispatched,
                    reads_mapped=self._report.n_mapped,
                    batches_dispatched=self._n_batches,
                    micro_batch=self._micro_batch,
                    n_searches=stats.n_searches,
                    pass_counts=pass_counts,
                    total_energy_joules=stats.total_energy_joules,
                    total_latency_ns=stats.total_latency_ns,
                    wall_seconds=wall,
                    reads_per_second=(self._n_dispatched / wall
                                      if wall > 0.0 else 0.0),
                    ledger_events_live=events_live,
                    ledger_events_folded=events_folded,
                    ledger_population_elements=population,
                    compactions=compactions,
                )

    # -- internals (frontend lock held) -------------------------------------

    def _check_failure_locked(self) -> None:
        if self._failure is not None:
            raise ServiceError(
                f"session {self._index} dispatch failed: "
                f"{self._failure!r}"
            ) from self._failure

    def _check_open_locked(self) -> None:
        self._check_failure_locked()
        if self._closed or self._closing:
            raise ServiceError(f"session {self._index} has been closed")
        if not self._frontend._running:
            raise ServiceError("the mapping frontend has been closed")

    def _enqueue_locked(self, wait: bool = False) -> int:
        """Move the coalescing buffer onto the frontend's work queue.

        Applies the backlog bound: blocks (releasing the lock) or
        raises per the frontend's backpressure policy.  On the error
        path the reads stay buffered, so a later flush can retry.
        ``wait=True`` forces blocking regardless of the policy —
        :meth:`drain` / :meth:`close` are synchronisation points that
        *relieve* pressure, so erroring there would be perverse.
        """
        if not self._buffer:
            return 0
        frontend = self._frontend
        # Chaos hook: a backlog-saturation fault raises the same
        # documented ServiceError a genuinely full queue would, so the
        # all-or-nothing submit unwind is exercised for real.
        _fire_fault("service.frontend.enqueue", session=self)
        while frontend._backlog_count >= frontend._max_backlog:
            if frontend._backpressure == "error" and not wait:
                raise ServiceError(
                    f"frontend backlog full "
                    f"({frontend._max_backlog} queued micro-batches); "
                    f"drain sessions or slow the feed"
                )
            frontend._backlog_free.wait()
            # Not _check_open_locked: close() itself enqueues through
            # here after setting _closing — only a dispatch failure or
            # a stopped frontend should abort the wait.
            self._check_failure_locked()
            if not frontend._running:
                raise ServiceError(
                    "the mapping frontend has been closed"
                )
        batch = _QueuedBatch(self._n_enqueued, self._buffer)
        self._buffer = []
        self._n_enqueued += len(batch.codes)
        self._pending.append(batch)
        frontend._backlog_count += 1
        frontend._work.notify()
        return len(batch.codes)

    def _wait_idle_locked(self) -> None:
        """Wait until every queued batch of this session completed."""
        while self._pending or self._executing:
            if not self._frontend._running:
                raise ServiceError(
                    f"the mapping frontend was closed while session "
                    f"{self._index} still had reads in flight"
                )
            self._idle.wait()
            self._check_failure_locked()
        self._check_failure_locked()


class _RefState:
    """A catalog frontend's per-reference shared state, built lazily.

    One per named reference ever used by a session: the catalog lease
    (pinning the mapped file for the frontend's lifetime), the
    zero-copy shard slices sessions borrow, the resolved shard plan,
    and — when the fan-out resolved to ``"process"`` — the one
    :class:`~repro.parallel.ProcessShardEngine` every session over
    this reference shares (its workers re-open the store file by path:
    no shared-memory copy).
    """

    __slots__ = ("name", "lease", "shards", "cols", "n_rows",
                 "chunk_size", "shard_engine_kind", "process_engine")

    def __init__(self, name, lease, shards, cols, n_rows, chunk_size,
                 shard_engine_kind, process_engine):
        self.name = name
        self.lease = lease
        self.shards = shards
        self.cols = cols
        self.n_rows = n_rows
        self.chunk_size = chunk_size
        self.shard_engine_kind = shard_engine_kind
        self.process_engine = process_engine


class MappingFrontend:
    """Serve N concurrent mapping sessions over one encoded reference.

    Parameters
    ----------
    segments:
        ``(n_rows, N)`` uint8 matrix of reference segments — encoded
        and stored **once**, at construction, for every session.
        Must be ``None`` when ``catalog=`` is given: a catalog
        frontend encodes *nothing*; each session names the stored
        reference it maps against.
    error_model:
        Workload error rates driving the HDAC/TASR policies (shared:
        the policies are a property of the stored workload).
    config:
        Default strategy configuration for sessions (each session may
        override).
    engine:
        ``"batched"`` (one shared array image) or ``"sharded"`` (the
        reference partitioned across autotuned shards; sessions share
        the per-shard references *and* one shard fan-out executor).
    domain / noisy:
        Array configuration shared by every session's arrays.
    n_shards / chunk_size:
        Sharded-engine knobs, resolved exactly as
        :class:`~repro.core.pipeline.ShardedReadMappingPipeline`
        resolves them (``None`` autotunes) — a frontend session is
        therefore bit-identical to a standalone sharded service built
        with the same knobs.
    pool_workers:
        Dispatch workers in the persistent pool; ``None`` autotunes
        via :func:`repro.arch.autotune.plan_service_pool`.
    max_backlog:
        Queued micro-batches (frontend-wide) before backpressure
        engages; ``None`` autotunes.
    backpressure:
        ``"block"`` (default): a submit that fills the backlog waits
        for a worker; ``"error"``: it raises
        :class:`~repro.errors.ServiceError` and leaves the reads
        buffered for a later retry.
    backend:
        Default kernel backend for every session's arrays (``None`` =
        the standard selection order; see :mod:`repro.kernels`);
        individual sessions may override it.  Bit-identical across
        backends, so the frontend/standalone equivalence holds
        whichever backend runs.
    shard_engine:
        Sharded-engine fan-out execution engine — ``"thread"`` shares
        one fan-out thread pool across sessions, ``"process"`` shares
        one :class:`~repro.parallel.ProcessShardEngine` (the shard
        references live in shared memory and one spawned worker pool
        serves every session's self-contained tasks), ``None`` resolves
        through the standard order (environment variable, then
        autotune).  Resolved once, frontend-wide, so every session's
        pipeline agrees.  Bit-identical either way.
    catalog:
        A :class:`~repro.refstore.ReferenceCatalog` to serve stored
        references from.  Sessions then pass ``reference=<name>`` to
        :meth:`session`; the frontend borrows each named reference
        once (pinned until :meth:`close`), slices it into the same
        bank ranges a segments frontend would encode, and never runs
        an encode pass — :meth:`encode_count` stays 0.  With the
        process fan-out, workers attach the store file by path, so
        booting copies zero reference bytes.  The catalog belongs to
        the caller and is left open by :meth:`close`.
    """

    def __init__(self, segments: "np.ndarray | None",
                 error_model: ErrorModel,
                 config: "MatcherConfig | None" = None,
                 engine: str = "batched",
                 domain: str = "charge",
                 noisy: bool = True,
                 n_shards: "int | None" = None,
                 chunk_size: "int | None" = None,
                 pool_workers: "int | None" = None,
                 max_backlog: "int | None" = None,
                 backpressure: str = "block",
                 backend: "str | None" = None,
                 shard_engine: "str | None" = None,
                 catalog: "object | None" = None):
        if engine not in _ENGINES:
            raise ServiceError(
                f"engine must be one of {_ENGINES}, got {engine!r}"
            )
        if backpressure not in _BACKPRESSURE:
            raise ServiceError(
                f"backpressure must be one of {_BACKPRESSURE}, got "
                f"{backpressure!r}"
            )
        validate_service_knobs(backend=backend, engine=shard_engine)
        if shard_engine is not None and engine != "sharded":
            raise ServiceError(
                f"shard_engine={shard_engine!r} applies to the sharded "
                f"engine only (engine={engine!r})"
            )
        if catalog is not None and segments is not None:
            raise CamConfigError(
                "a catalog frontend takes no construction-time "
                "segments; each session names its reference "
                "(session(..., reference=<name>))"
            )
        if catalog is None and segments is None:
            raise CamConfigError(
                "segments is required unless a catalog= is given"
            )
        self._engine_kind = engine
        self._model = error_model
        self._config = config
        self._domain = domain
        self._noisy = bool(noisy)
        self._backend = backend
        self._backpressure = backpressure
        self._catalog = catalog
        # Catalog mode resolves these per named reference, lazily.
        self._req_n_shards = n_shards
        self._req_chunk_size = chunk_size
        self._req_shard_engine = shard_engine
        self._ref_states: "dict[str, _RefState]" = {}
        self._ref_lock = threading.Lock()
        #: Frontend-level traffic ledger; holds the single
        #: ReferenceLoad per shard (the encode-once evidence) — session
        #: ledgers only ever see search passes.
        self._ledger = CostLedger()
        self._chunk_size: "int | None" = None
        self._shard_executor: "ThreadPoolExecutor | None" = None
        self._process_engine: "ProcessShardEngine | None" = None
        self._shard_engine_kind: "str | None" = None

        if catalog is None:
            segments = as_segments_matrix(segments)
            self._n_rows: "int | None" = int(segments.shape[0])
            self._cols: "int | None" = int(segments.shape[1])
            # --- encode and store the reference EXACTLY ONCE -----------
            if engine == "batched":
                self._stored_refs: "tuple[StoredReference, ...]" = (
                    StoredReference.encode(segments),
                )
            else:
                self._stored_refs, self._chunk_size = \
                    encode_shard_references(
                        segments, n_shards=n_shards,
                        chunk_size=chunk_size,
                    )
            for ref in self._stored_refs:
                self._ledger.record(ReferenceLoad(
                    n_segments=ref.n_segments, n_cells=ref.cols,
                ))
            plan = plan_service_pool(n_shards=self.n_shards)
        else:
            # Zero encode passes, ever: references arrive through the
            # catalog as mmap-opened store files, per session.
            self._n_rows = None
            self._cols = None
            self._stored_refs = ()
            # Reference geometry is unknown until sessions open, so
            # the dispatch pool assumes a fan-out of 1 unless the
            # caller pinned n_shards; pass pool_workers to tune.
            plan = plan_service_pool(n_shards=max(1, n_shards or 1))

        # --- persistent dispatch pool ----------------------------------
        if pool_workers is None:
            pool_workers = plan.n_workers
        if int(pool_workers) < 1:
            raise ServiceError(
                f"pool_workers must be positive, got {pool_workers}"
            )
        if max_backlog is None:
            # Scale with the *resolved* worker count (an explicit
            # pool_workers override included), not the plan's.
            max_backlog = max(MIN_SERVICE_BACKLOG, 2 * int(pool_workers))
        if int(max_backlog) < 1:
            raise ServiceError(
                f"max_backlog must be positive, got {max_backlog}"
            )
        self._pool_workers = int(pool_workers)
        self._max_backlog = int(max_backlog)
        if engine == "sharded" and catalog is None:
            # One frontend-wide resolution: every session's pipeline
            # receives the resolved name explicitly, so no session can
            # disagree with the frontend about which fan-out runs.
            self._shard_engine_kind = resolve_engine(
                shard_engine, self._n_rows, self._cols,
                n_shards=self.n_shards,
            )
            if self._shard_engine_kind == "process":
                self._process_engine = ProcessShardEngine(
                    self._stored_refs, domain=domain, noisy=noisy,
                    n_workers=max(1, plan.shard_workers),
                )
            else:
                self._shard_executor = ThreadPoolExecutor(
                    max_workers=max(1, plan.shard_workers),
                    thread_name_prefix="asmcap-frontend-shard",
                )

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._backlog_free = threading.Condition(self._lock)
        self._backlog_count = 0
        self._sessions: "list[MappingSession]" = []
        self._rr_next = 0
        self._running = True
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"asmcap-frontend-worker-{i}",
                             daemon=True)
            for i in range(self._pool_workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- configuration ------------------------------------------------------

    @property
    def engine(self) -> str:
        """``"batched"`` or ``"sharded"``."""
        return self._engine_kind

    @property
    def cols(self) -> "int | None":
        """Reference segment width (every read must match it) —
        ``None`` on a catalog frontend, where each session's width
        follows its named reference."""
        return self._cols

    @property
    def n_shards(self) -> int:
        """Shards the reference is partitioned across (1 = batched;
        0 on a catalog frontend, whose shard counts are per
        reference)."""
        return len(self._stored_refs)

    @property
    def catalog(self) -> "object | None":
        """The :class:`~repro.refstore.ReferenceCatalog` sessions
        borrow from (``None`` on a segments frontend)."""
        return self._catalog

    @property
    def shard_engine(self) -> "str | None":
        """Resolved shard fan-out engine (``"thread"`` or
        ``"process"``); ``None`` on the batched engine."""
        return self._shard_engine_kind

    def process_engine(self) -> "ProcessShardEngine | None":
        """The shared process engine (``None`` unless the sharded
        engine resolved to ``"process"``) — every session's pipeline
        fans out on this one pool of spawned workers."""
        return self._process_engine

    @property
    def pool_workers(self) -> int:
        """Persistent dispatch-worker threads."""
        return self._pool_workers

    @property
    def max_backlog(self) -> int:
        """Queued micro-batches before backpressure engages."""
        return self._max_backlog

    @property
    def backpressure(self) -> str:
        """``"block"`` or ``"error"``."""
        return self._backpressure

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def ledger(self) -> CostLedger:
        """Frontend-level traffic ledger (the per-shard
        :class:`~repro.cost.events.ReferenceLoad` events live here —
        recorded once, at construction, not per session)."""
        return self._ledger

    @property
    def stored_references(self) -> "tuple[StoredReference, ...]":
        """The shared, sealed reference(s) — one entry per shard; on a
        catalog frontend, every shard of every reference opened so far
        (reference open order)."""
        if self._catalog is None:
            return self._stored_refs
        with self._ref_lock:
            return tuple(shard for state in self._ref_states.values()
                         for shard in state.shards)

    def encode_count(self) -> int:
        """Total one-hot encode passes across the shared reference —
        stays equal to :attr:`n_shards` no matter how many sessions
        open (the benchmark's encode-once evidence), and stays **0**
        on a catalog frontend: mmap-opened references are adopted, not
        encoded."""
        return sum(ref.n_encodes for ref in self.stored_references)

    @property
    def sessions(self) -> "tuple[MappingSession, ...]":
        """Every session ever opened (open order)."""
        with self._lock:
            return tuple(self._sessions)

    # -- session factory ----------------------------------------------------

    def _reference_state(self, name: str) -> _RefState:
        """The shared per-reference state for *name*, built on first
        use (catalog frontends only).

        Borrows a lease (pinned until :meth:`close`), slices the
        mapped reference into zero-copy shards at exactly the bank
        ranges :func:`~repro.core.pipeline.encode_shard_references`
        would use, resolves the fan-out engine for this geometry, and
        — for ``"process"`` — builds the one engine whose workers
        attach the shards by store-file path (no per-boot copies).
        """
        with self._ref_lock:
            state = self._ref_states.get(name)
            if state is not None:
                return state
            lease = self._catalog.borrow(name)
            try:
                reference = lease.reference
                cols = reference.cols
                n_rows = reference.n_segments
                chunk_size = None
                kind = None
                process_engine = None
                if self._engine_kind == "batched":
                    shards = (reference,)
                else:
                    n_sh, chunk_size = resolve_shard_plan(
                        n_rows, cols, self._req_n_shards,
                        self._req_chunk_size,
                    )
                    shards = slice_stored_reference(
                        reference, bank_row_ranges(n_rows, n_sh)
                    )
                    kind = resolve_engine(
                        self._req_shard_engine, n_rows, cols,
                        n_shards=len(shards),
                    )
                    plan = plan_service_pool(n_shards=len(shards))
                    if kind == "process":
                        process_engine = ProcessShardEngine(
                            shards, domain=self._domain,
                            noisy=self._noisy,
                            n_workers=max(1, plan.shard_workers),
                        )
                    elif self._shard_executor is None:
                        # One thread fan-out shared by every thread-kind
                        # reference, sized for the first one's geometry.
                        self._shard_executor = ThreadPoolExecutor(
                            max_workers=max(1, plan.shard_workers),
                            thread_name_prefix="asmcap-frontend-shard",
                        )
            except BaseException:
                lease.close()
                raise
            for shard in shards:
                self._ledger.record(ReferenceLoad(
                    n_segments=shard.n_segments, n_cells=shard.cols,
                ))
            state = _RefState(name, lease, shards, cols, n_rows,
                              chunk_size, kind, process_engine)
            self._ref_states[name] = state
            return state

    def session(self, threshold: int,
                seed: int = 0,
                micro_batch: "int | None" = None,
                compaction: "int | None" = DEFAULT_SERVICE_COMPACTION,
                retain_mappings: bool = True,
                config: "MatcherConfig | None" = None,
                backend: "str | None" = None,
                reference: "str | None" = None) -> MappingSession:
        """Open an independent mapping session over the shared
        reference.

        Parameters mirror :class:`~repro.service.stream.
        StreamingMappingService`: per-session ``seed`` (determinism
        key base), ``threshold``, ``micro_batch`` (``None`` autotunes
        — same plan as the standalone service), ledger ``compaction``,
        ``retain_mappings`` and kernel ``backend`` (``None`` = the
        frontend's default).  The expensive reference state is *not*
        rebuilt: only per-session arrays/matchers/ledgers are.

        On a catalog frontend ``reference`` names the catalog entry
        this session maps against (required; sessions over different
        names coexist, each reference opened and sliced once).  On a
        segments frontend ``reference`` must stay ``None``.
        """
        validate_service_knobs(micro_batch, compaction, backend=backend)
        if backend is None:
            backend = self._backend
        if self._catalog is not None:
            if reference is None:
                raise ServiceError(
                    "this frontend serves a reference catalog; name "
                    "the session's reference: session(..., "
                    "reference=<name>)"
                )
            state = self._reference_state(reference)
            cols = state.cols
            if micro_batch is None:
                micro_batch = plan_microbatch(
                    state.n_rows, cols, n_shards=len(state.shards)
                )
            if self._engine_kind == "batched":
                pipeline = ReadMappingPipeline(AsmCapMatcher.over_stored(
                    state.shards[0], self._model,
                    config or self._config,
                    domain=self._domain, noisy=self._noisy, seed=seed,
                    ledger_compaction=compaction, backend=backend,
                ))
            else:
                pipeline = ShardedReadMappingPipeline(
                    state.shards, self._model, n_shards=None,
                    config=config or self._config,
                    domain=self._domain, noisy=self._noisy, seed=seed,
                    chunk_size=state.chunk_size,
                    ledger_compaction=compaction, backend=backend,
                    engine=state.shard_engine_kind,
                    executor=self._shard_executor,
                    process_engine=state.process_engine,
                )
        else:
            if reference is not None:
                raise ServiceError(
                    f"reference={reference!r} needs a catalog frontend "
                    f"(MappingFrontend(None, ..., catalog=...))"
                )
            cols = self._cols
            if micro_batch is None:
                micro_batch = plan_microbatch(self._n_rows, self._cols,
                                              n_shards=self.n_shards)
            if self._engine_kind == "batched":
                matcher = AsmCapMatcher.over_stored(
                    self._stored_refs[0], self._model,
                    config or self._config,
                    domain=self._domain, noisy=self._noisy, seed=seed,
                    ledger_compaction=compaction, backend=backend,
                )
                pipeline = ReadMappingPipeline(matcher)
            else:
                pipeline = ShardedReadMappingPipeline(
                    self._stored_refs, self._model, n_shards=None,
                    config=config or self._config,
                    domain=self._domain, noisy=self._noisy, seed=seed,
                    chunk_size=self._chunk_size,
                    ledger_compaction=compaction, backend=backend,
                    engine=self._shard_engine_kind,
                    executor=self._shard_executor,
                    process_engine=self._process_engine,
                )
        with self._lock:
            if not self._running:
                raise ServiceError("the mapping frontend has been closed")
            session = MappingSession(
                self, index=len(self._sessions), pipeline=pipeline,
                threshold=threshold, micro_batch=int(micro_batch),
                retain_mappings=retain_mappings, cols=cols,
            )
            self._sessions.append(session)
            return session

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drain every open session, stop the workers, release pools.

        Idempotent.  Sessions that already failed are skipped (their
        owners saw — or will see — the ``ServiceError``); everything
        else is drained through the still-running workers first, so no
        accepted read is silently dropped.
        """
        if self._closed:
            return
        for session in self.sessions:
            if not session.closed:
                try:
                    session.close()
                except ServiceError:
                    pass  # failed session: its owner handles the error
        with self._lock:
            self._running = False
            self._work.notify_all()
            self._backlog_free.notify_all()
            # Wake any drainer of a session that raced past the drain
            # sweep above (opened concurrently with this close) so it
            # raises instead of waiting on workers that are gone.
            for session in self._sessions:
                session._idle.notify_all()
        for thread in self._threads:
            thread.join()
        if self._shard_executor is not None:
            self._shard_executor.shutdown(wait=True)
        if self._process_engine is not None:
            # Joins the spawned workers and unlinks every shared
            # segment — the frontend owns the engine, sessions only
            # borrow it.
            self._process_engine.close()
        with self._ref_lock:
            # Catalog mode: stop the per-reference fan-out engines,
            # then unpin the leases so the catalog may evict.  The
            # catalog itself belongs to the caller and stays open.
            for state in self._ref_states.values():
                if state.process_engine is not None:
                    state.process_engine.close()
                state.lease.close()
            self._ref_states.clear()
        self._closed = True

    def __enter__(self) -> "MappingFrontend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- scheduling internals -----------------------------------------------

    def _next_task_locked(
            self) -> "tuple[MappingSession, _QueuedBatch] | None":
        """Pick the next (session, batch) fairly — round-robin over
        sessions with pending work whose serial slot is free."""
        n = len(self._sessions)
        for offset in range(n):
            position = (self._rr_next + offset) % n
            session = self._sessions[position]
            if session._pending and not session._executing:
                self._rr_next = (position + 1) % n
                return session, session._pending.popleft()
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                task = self._next_task_locked()
                while task is None:
                    if not self._running:
                        return
                    self._work.wait()
                    task = self._next_task_locked()
                session, batch = task
                session._executing = True
                self._backlog_count -= 1
                self._backlog_free.notify_all()
            self._execute(session, batch)

    def _execute(self, session: MappingSession,
                 batch: _QueuedBatch) -> None:
        """Run one micro-batch on a worker thread and fold the result.

        The engine dispatch runs outside the frontend lock (that is
        the parallelism) but inside the session's dispatch mutex (that
        is the per-session serialisation observability relies on);
        folding happens under the frontend lock with the same add()
        sequence a one-shot run performs, so per-session aggregates
        stay bit-identical to the standalone service.
        """
        with session._dispatch_mutex:
            failure: "BaseException | None" = None
            report = None
            try:
                # Chaos hook inside the try: a poisoned read raised
                # here is captured as this session's failure, exactly
                # like an engine-side error would be.
                _fire_fault("service.frontend.execute", session=session,
                            first_read_index=batch.first_read_index)
                if self._engine_kind == "batched":
                    report = session._pipeline.run_batched(
                        batch.codes, session._threshold,
                        first_read_index=batch.first_read_index)
                else:
                    report = session._pipeline.run(
                        batch.codes, session._threshold,
                        first_read_index=batch.first_read_index)
            except BaseException as exc:  # noqa: BLE001 — kept for the feeder
                failure = exc
            with self._lock:
                if failure is None:
                    for mapping in report.mappings:
                        session._report.add(mapping)
                    if not session._retain_mappings:
                        session._report.mappings.clear()
                    session._last_batch = tuple(report.mappings)
                    session._n_dispatched += len(batch.codes)
                    session._n_batches += 1
                else:
                    session._failure = failure
                    # Drop the failed session's queue so blocked
                    # feeders and drainers wake instead of hanging.
                    dropped = len(session._pending)
                    session._pending.clear()
                    self._backlog_count -= dropped
                    if dropped:
                        self._backlog_free.notify_all()
                session._executing = False
                if session._pending:
                    self._work.notify()
                session._idle.notify_all()
