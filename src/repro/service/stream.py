"""Long-running streaming read-mapping service.

Every pre-existing execution path is one-shot: the caller hands
:meth:`~repro.core.pipeline.ReadMappingPipeline.run_batched` (or the
sharded pipeline) a complete read block and gets a report back.  A
sequencing front-end does not work like that — reads arrive
incrementally, for hours.  :class:`StreamingMappingService` is the
long-running entry point:

* **feed** — reads are submitted one at a time (or from any iterator)
  and coalesced into micro-batches sized by
  :func:`repro.arch.autotune.plan_microbatch`;
* **dispatch** — each full micro-batch flows through the existing
  batched (:meth:`~repro.core.pipeline.ReadMappingPipeline.run_batched`)
  or sharded (:meth:`~repro.core.pipeline.ShardedReadMappingPipeline.run`)
  engine with its global read offset as the determinism key base;
* **bounded memory** — the arrays' cost ledgers run in compaction mode
  (:class:`repro.cost.ledger.CostLedger`), folding fully-materialised
  pass events into exact checkpoints, so the retained event count
  plateaus instead of growing linearly with the stream;
* **observe** — :meth:`StreamingMappingService.stats` snapshots a
  :class:`ServiceStats` (throughput, reads in flight, per-strategy
  pass counts, energy/latency read from the compacted ledger views);
* **drain / close** — :meth:`flush` dispatches a partial micro-batch,
  :meth:`drain` flushes and returns the aggregate report,
  :meth:`close` drains and ends the lifecycle (the service is also a
  context manager).

**Determinism contract.**  Read ``i`` of the stream (0-based
submission order) is keyed as global read ``i``, so a streamed session
is **bit-identical** to one ``run_batched`` (or one sharded ``run``)
call over the same reads with the same seeds — per-read decisions,
per-read costs and the aggregate report — for *any* micro-batch
boundaries.  ``tests/service/test_service.py`` asserts this over
randomized boundaries; ``benchmarks/bench_service_stream.py`` asserts
it at soak scale while demonstrating the flat-memory ledger.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.arch.autotune import plan_microbatch
from repro.arch.scheduler import bank_row_ranges
from repro.cam.array import CamArray, StoredReference, as_segments_matrix
from repro.core.matcher import AsmCapMatcher, MatcherConfig
from repro.core.pipeline import (
    MappingReport,
    ReadMapping,
    ReadMappingPipeline,
    ShardedReadMappingPipeline,
    resolve_shard_plan,
)
from repro.cost.ledger import CostLedger
from repro.cost.views import (
    SearchStats,
    fold_ledger_observability,
    search_stats,
)
from repro.errors import CamConfigError, ServiceError
from repro.faults.hooks import fire as _fire_fault
from repro.genome.edits import ErrorModel
from repro.genome.reads import ReadRecord
from repro.knobs import validate_reference_source, validate_service_knobs
from repro.refstore.format import slice_stored_reference

__all__ = [
    "DEFAULT_SERVICE_COMPACTION",
    "ServiceStats",
    "StreamingMappingService",
    "engine_ledgers",
    "engine_observability",
    "fold_ledger_observability",
    "validate_service_knobs",
]

_ENGINES = ("batched", "sharded")

#: Default live-event bound for the service's compacting ledgers: deep
#: enough that a whole micro-batch's passes (2 + 2*NR events) stay
#: inspectable between folds, shallow enough that memory is flat.
DEFAULT_SERVICE_COMPACTION = 64


def engine_ledgers(engine: str, pipeline) -> "tuple[CostLedger, ...]":
    """Every cost ledger an engine owns, in deterministic order
    (system traffic first for the sharded engine, then arrays)."""
    if engine == "batched":
        return (pipeline.ledger,)
    return (pipeline.ledger,
            *(m.array.ledger for m in pipeline.matchers))


def engine_observability(
        engine: str, pipeline,
        ) -> "tuple[dict[str, int], int, int, int, int]":
    """The engine's ledger-observability fold, engine-appropriate.

    Thread-engine and batched pipelines fold their live ledgers
    (:func:`~repro.cost.views.fold_ledger_observability`); a sharded
    pipeline on the process engine reads its accumulated worker-side
    ledger summaries instead (the per-task events were folded at the
    process boundary and never cross it).
    """
    if engine == "sharded" and pipeline.engine == "process":
        return pipeline.ledger_observability()
    return fold_ledger_observability(engine_ledgers(engine, pipeline))


def engine_merged_stats(engine: str, pipeline) -> SearchStats:
    """Whole-engine search counters (exact under compaction).

    Delegates to the engine's own fold so there is exactly one
    definition of the whole-system aggregation per engine.
    """
    if engine == "sharded":
        return pipeline.merged_stats()
    return search_stats(pipeline.ledger)


@dataclass(frozen=True)
class ServiceStats:
    """One observability snapshot of a streaming service.

    Attributes
    ----------
    reads_submitted / reads_dispatched / reads_in_flight:
        Stream accounting: everything accepted, everything that went
        through an engine dispatch, and the coalescing-buffer backlog.
    reads_mapped:
        Dispatched reads with at least one matched row.
    batches_dispatched / micro_batch:
        Micro-batches issued so far and the configured batch size.
    n_searches:
        Physical search passes issued (from the ledger views, folded
        events included).
    pass_counts:
        Per-strategy pass counts by event class
        (``EdStarPass`` / ``HdacPass`` / ``TasrRotationPass``),
        checkpoint summaries included.
    total_energy_joules / total_latency_ns:
        Modelled hardware cost, read from the (compacted) ledger
        views — bit-identical to an uncompacted run's views.
    wall_seconds / reads_per_second:
        Simulator wall-clock since the first submission and the
        dispatch throughput over it.
    ledger_events_live / ledger_events_folded /
    ledger_population_elements:
        Bounded-memory evidence: live events, events folded into
        checkpoints, and retained mismatch-population elements
        (the dominant ledger payload), summed over every ledger.
    compactions:
        Total prefix folds across every ledger.
    """

    reads_submitted: int
    reads_dispatched: int
    reads_in_flight: int
    reads_mapped: int
    batches_dispatched: int
    micro_batch: int
    n_searches: int
    pass_counts: "dict[str, int]"
    total_energy_joules: float
    total_latency_ns: float
    wall_seconds: float
    reads_per_second: float
    ledger_events_live: int
    ledger_events_folded: int
    ledger_population_elements: int
    compactions: int


class StreamingMappingService:
    """Accept reads incrementally; map them in autotuned micro-batches.

    Parameters
    ----------
    segments:
        The reference, in one of three forms: a ``(n_rows, N)`` uint8
        segment matrix (encoded here, once); a **sealed**
        :class:`~repro.cam.array.StoredReference` — e.g. from
        :func:`repro.refstore.open_stored_reference` — whose encoding
        is reused with **zero** further encode passes; or, with
        ``catalog=``, the *name* of a reference to borrow from the
        catalog.  All three are bit-identical in decisions, costs and
        reports (the reference persistence contract — DESIGN.md).
    error_model:
        Workload error rates driving the HDAC/TASR policies.
    threshold:
        The matching threshold ``T`` applied to every read.
    config:
        Strategy configuration (default: the paper's full setting).
    engine:
        ``"batched"`` (one CAM array, the default) or ``"sharded"``
        (the reference partitioned across autotuned shards).
    micro_batch:
        Reads coalesced per dispatch; ``None`` autotunes via
        :func:`repro.arch.autotune.plan_microbatch`.
    compaction:
        Live-event bound handed to every ledger
        (:data:`DEFAULT_SERVICE_COMPACTION`); ``None`` disables
        compaction and reproduces the append-only ledgers of the
        one-shot paths (the memory baseline the soak benchmark
        compares against).
    domain / noisy / seed:
        Array configuration.  The batched engine builds its array with
        ``seed`` and its matcher with the same ``seed`` (the
        convention of ``benchmarks/bench_batch_pipeline.py``); the
        sharded engine derives per-shard seeds exactly as
        :class:`~repro.core.pipeline.ShardedReadMappingPipeline` does
        — so a one-shot pipeline built the same way is bit-identical.
    n_shards / chunk_size / max_workers:
        Sharded-engine knobs, forwarded to the sharded pipeline
        (``None`` autotunes).
    backend:
        Kernel backend for the engine's mismatch-count primitives
        (``None`` = the standard selection order; see
        :mod:`repro.kernels`).  Bit-identical across backends, so a
        streamed session keeps its one-shot bit-identity contract
        whichever backend runs.
    shard_engine:
        Sharded-engine fan-out execution engine — ``"thread"``,
        ``"process"`` or ``None`` (the standard resolution order; see
        :class:`~repro.core.pipeline.ShardedReadMappingPipeline`).
        Sharded engine only; bit-identical either way, so the knob
        never touches the determinism contract.
    retain_mappings:
        Keep every per-read :class:`~repro.core.pipeline.ReadMapping`
        in the aggregate report (the one-shot behaviour, needed for
        bit-identity comparisons).  ``False`` drops them after their
        counters fold in, bounding result memory for endless streams
        (aggregate totals stay bit-identical — the same additions run
        in the same order).
    catalog:
        A :class:`~repro.refstore.ReferenceCatalog` to borrow the
        reference from; ``segments`` must then be a registered
        reference *name*.  The lease pins the mapped file for the
        service's lifetime (the catalog will not evict it) and is
        released by :meth:`close`.
    """

    def __init__(self,
                 segments: "np.ndarray | StoredReference | str",
                 error_model: ErrorModel,
                 threshold: int,
                 config: "MatcherConfig | None" = None,
                 engine: str = "batched",
                 micro_batch: "int | None" = None,
                 compaction: "int | None" = DEFAULT_SERVICE_COMPACTION,
                 domain: str = "charge",
                 noisy: bool = True,
                 seed: int = 0,
                 n_shards: "int | None" = None,
                 chunk_size: "int | None" = None,
                 max_workers: "int | None" = None,
                 backend: "str | None" = None,
                 shard_engine: "str | None" = None,
                 retain_mappings: bool = True,
                 catalog: "object | None" = None):
        if engine not in _ENGINES:
            raise ServiceError(
                f"engine must be one of {_ENGINES}, got {engine!r}"
            )
        validate_service_knobs(micro_batch, compaction,
                               max_workers=max_workers, backend=backend,
                               engine=shard_engine)
        validate_reference_source(segments, catalog=catalog)
        if shard_engine is not None and engine != "sharded":
            raise ServiceError(
                f"shard_engine={shard_engine!r} applies to the sharded "
                f"engine only (engine={engine!r})"
            )
        self._threshold = int(threshold)
        self._engine_kind = engine
        self._retain_mappings = bool(retain_mappings)
        self._lease = None
        stored: "StoredReference | None" = None
        if catalog is not None:
            self._lease = catalog.borrow(segments)
            stored = self._lease.reference
        elif isinstance(segments, StoredReference):
            stored = segments
        try:
            if stored is not None:
                # Pre-encoded reference (catalog lease or caller-owned
                # stored reference): zero encode passes here — the
                # batched engine borrows it whole, the sharded engine
                # slices zero-copy shard views at the same bank ranges
                # encode_shard_references would use.
                self._cols = stored.cols
                n_rows = stored.n_segments
                if engine == "batched":
                    self._pipeline = ReadMappingPipeline(
                        AsmCapMatcher.over_stored(
                            stored, error_model, config, domain=domain,
                            noisy=noisy, seed=seed,
                            ledger_compaction=compaction,
                            backend=backend)
                    )
                    n_shards_effective = 1
                else:
                    n_shards_r, chunk_size = resolve_shard_plan(
                        n_rows, self._cols, n_shards, chunk_size
                    )
                    shards = slice_stored_reference(
                        stored, bank_row_ranges(n_rows, n_shards_r)
                    )
                    self._pipeline = ShardedReadMappingPipeline(
                        shards, error_model, n_shards=None,
                        config=config, domain=domain, noisy=noisy,
                        seed=seed, max_workers=max_workers,
                        chunk_size=chunk_size,
                        ledger_compaction=compaction, backend=backend,
                        engine=shard_engine,
                    )
                    n_shards_effective = self._pipeline.n_shards
            else:
                segments = as_segments_matrix(segments)
                self._cols = int(segments.shape[1])
                n_rows = int(segments.shape[0])
                if engine == "batched":
                    array = CamArray(rows=segments.shape[0],
                                     cols=self._cols,
                                     domain=domain, noisy=noisy,
                                     seed=seed,
                                     ledger_compaction=compaction,
                                     backend=backend)
                    array.store(segments)
                    self._pipeline = ReadMappingPipeline(
                        AsmCapMatcher(array, error_model, config,
                                      seed=seed)
                    )
                    n_shards_effective = 1
                else:
                    # n_shards=None flows straight through — the sharded
                    # pipeline owns the plan_shards autotune.
                    self._pipeline = ShardedReadMappingPipeline(
                        segments, error_model, n_shards=n_shards,
                        config=config, domain=domain, noisy=noisy,
                        seed=seed, max_workers=max_workers,
                        chunk_size=chunk_size,
                        ledger_compaction=compaction, backend=backend,
                        engine=shard_engine,
                    )
                    n_shards_effective = self._pipeline.n_shards
        except BaseException:
            if self._lease is not None:
                self._lease.close()
            raise
        if micro_batch is None:
            micro_batch = plan_microbatch(n_rows, self._cols,
                                          n_shards=n_shards_effective)
            validate_service_knobs(micro_batch=micro_batch)
        self._micro_batch = int(micro_batch)
        self._buffer: list[np.ndarray] = []
        self._report = MappingReport()
        self._last_batch: tuple[ReadMapping, ...] = ()
        self._n_submitted = 0
        self._n_dispatched = 0
        self._n_batches = 0
        self._closed = False
        self._started_at: "float | None" = None

    # -- configuration ------------------------------------------------------

    @property
    def micro_batch(self) -> int:
        """Reads coalesced per engine dispatch."""
        return self._micro_batch

    @property
    def engine(self) -> str:
        """``"batched"`` or ``"sharded"``."""
        return self._engine_kind

    @property
    def shard_engine(self) -> "str | None":
        """The sharded pipeline's resolved fan-out engine
        (``"thread"`` or ``"process"``); ``None`` on the batched
        engine, which has no shard fan-out."""
        if self._engine_kind != "sharded":
            return None
        return self._pipeline.engine

    @property
    def backend(self) -> str:
        """Kernel backend name the engine's arrays search with."""
        return self._pipeline.backend

    @property
    def threshold(self) -> int:
        return self._threshold

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pipeline(self):
        """The underlying engine (a :class:`ReadMappingPipeline` or a
        :class:`ShardedReadMappingPipeline`)."""
        return self._pipeline

    @property
    def report(self) -> MappingReport:
        """The aggregate report over every *dispatched* read so far.

        Buffered (in-flight) reads are not in it yet; :meth:`drain`
        for a complete view.

        A defensive :meth:`~repro.core.pipeline.MappingReport.snapshot`
        — callers may mutate it (``report.mappings.clear()``, …)
        without corrupting the service's live aggregates or breaking
        the streamed/one-shot bit-identity contract.  :meth:`drain`
        and :meth:`close` return the same kind of snapshot.
        """
        return self._report.snapshot()

    @property
    def batches_dispatched(self) -> int:
        """Micro-batches the engine has run so far."""
        return self._n_batches

    @property
    def last_batch_mappings(self) -> "tuple[ReadMapping, ...]":
        """The most recent micro-batch's per-read results.

        Replaced wholesale on every dispatch (one micro-batch of
        memory, independent of ``retain_mappings``) — the hand-off
        surface :func:`stream_mapped` drains, bounded even on endless
        feeds.
        """
        return self._last_batch

    # -- feed ---------------------------------------------------------------

    def submit(self, read: "np.ndarray | ReadRecord") -> None:
        """Accept one read into the coalescing buffer.

        Dispatches a micro-batch through the engine whenever the
        buffer fills; raises :class:`~repro.errors.ServiceError` once
        the service is closed.
        """
        self._check_open()
        codes = np.asarray(
            read.read.codes if isinstance(read, ReadRecord) else read,
            dtype=np.uint8,
        )
        if codes.shape != (self._cols,):
            raise CamConfigError(
                f"read shape {codes.shape} does not fit reference width "
                f"{self._cols}"
            )
        if self._started_at is None:
            self._started_at = time.perf_counter()
        self._buffer.append(codes)
        self._n_submitted += 1
        if len(self._buffer) >= self._micro_batch:
            self._dispatch()

    def submit_many(
            self,
            reads: "Iterable[np.ndarray] | Iterable[ReadRecord]") -> int:
        """Consume any read iterable, dispatching as batches fill.

        The iterable is read lazily — an endless generator works; only
        one micro-batch of reads is ever buffered.  Returns how many
        reads were accepted.
        """
        n = 0
        for read in reads:
            self.submit(read)
            n += 1
        return n

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> int:
        """Dispatch the buffered reads now, full micro-batch or not.

        Returns how many reads were dispatched.  A timeout-driven
        caller uses this to bound result latency when the feed stalls
        below the micro-batch size.
        """
        self._check_open()
        return self._dispatch()

    def drain(self) -> MappingReport:
        """Flush everything in flight and return the aggregate report.

        The service stays open — a long-running caller drains at
        checkpoint boundaries and keeps feeding.  The returned report
        is a defensive snapshot (see :attr:`report`).
        """
        self._check_open()
        self._dispatch()
        return self._report.snapshot()

    def close(self) -> MappingReport:
        """Drain, end the lifecycle, and return the final report.

        Idempotent; every later :meth:`submit` / :meth:`flush` raises
        :class:`~repro.errors.ServiceError`.  The returned report is a
        defensive snapshot (see :attr:`report`); each call returns a
        fresh one.
        """
        if not self._closed:
            self._dispatch()
            if self._engine_kind == "sharded":
                # Release the sharded engine's persistent fan-out pool.
                self._pipeline.close()
            if self._lease is not None:
                # Unpin the catalog reference only after the engines
                # that searched its arrays are gone.
                self._lease.close()
            self._closed = True
        return self._report.snapshot()

    def __enter__(self) -> "StreamingMappingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- observability ------------------------------------------------------

    def ledgers(self) -> tuple[CostLedger, ...]:
        """Every cost ledger the service owns (deterministic order:
        system traffic first for the sharded engine, then arrays)."""
        return engine_ledgers(self._engine_kind, self._pipeline)

    def merged_stats(self) -> SearchStats:
        """Whole-service search counters (exact under compaction).

        Delegates to the engine's own fold so there is exactly one
        definition of the whole-system aggregation per engine.
        """
        return engine_merged_stats(self._engine_kind, self._pipeline)

    def stats(self) -> ServiceStats:
        """Snapshot the service's observable state (see
        :class:`ServiceStats`)."""
        stats = self.merged_stats()
        (pass_counts, events_live, events_folded, population,
         compactions) = engine_observability(self._engine_kind,
                                             self._pipeline)
        wall = (0.0 if self._started_at is None
                else time.perf_counter() - self._started_at)
        return ServiceStats(
            reads_submitted=self._n_submitted,
            reads_dispatched=self._n_dispatched,
            reads_in_flight=len(self._buffer),
            reads_mapped=self._report.n_mapped,
            batches_dispatched=self._n_batches,
            micro_batch=self._micro_batch,
            n_searches=stats.n_searches,
            pass_counts=pass_counts,
            total_energy_joules=stats.total_energy_joules,
            total_latency_ns=stats.total_latency_ns,
            wall_seconds=wall,
            reads_per_second=(self._n_dispatched / wall if wall > 0.0
                              else 0.0),
            ledger_events_live=events_live,
            ledger_events_folded=events_folded,
            ledger_population_elements=population,
            compactions=compactions,
        )

    # -- internals ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("the streaming service has been closed")

    def _dispatch(self) -> int:
        """Run the buffered micro-batch through the engine."""
        if not self._buffer:
            return 0
        # Chaos hook, before the buffer swap: a poisoned-read fault
        # raising here leaves the reads coalesced, so a later drain
        # (e.g. the close() path) still dispatches them once.
        _fire_fault("service.stream.dispatch", service=self,
                    first_read_index=self._n_dispatched)
        batch = self._buffer
        self._buffer = []
        first = self._n_dispatched
        if self._engine_kind == "batched":
            report = self._pipeline.run_batched(
                batch, self._threshold, first_read_index=first)
        else:
            report = self._pipeline.run(
                batch, self._threshold, first_read_index=first)
        # Fold the batch report into the aggregate with the same
        # per-read add() sequence a one-shot run performs, so the
        # aggregate totals are bit-identical to it.
        for mapping in report.mappings:
            self._report.add(mapping)
        if not self._retain_mappings:
            self._report.mappings.clear()
        self._last_batch = tuple(report.mappings)
        self._n_dispatched += len(batch)
        self._n_batches += 1
        return len(batch)


def stream_mapped(service: StreamingMappingService,
                  reads: "Iterable[np.ndarray] | Iterable[ReadRecord]",
                  ) -> "Iterator[ReadMapping]":
    """Feed *reads* through *service*, yielding mappings as batches
    complete.

    A convenience generator for pull-style callers: reads are
    submitted lazily and each completed micro-batch's
    :class:`~repro.core.pipeline.ReadMapping` results are yielded in
    read order (the trailing partial batch is flushed at the end).
    Results are handed off per micro-batch
    (:attr:`StreamingMappingService.last_batch_mappings`), so memory
    stays bounded on endless feeds — pair with
    ``retain_mappings=False`` so the aggregate report does not retain
    them either.
    """
    for read in reads:
        before = service.batches_dispatched
        service.submit(read)
        # One submit dispatches at most one micro-batch, and it does
        # so inside this call — a new batch here is always ours.
        if service.batches_dispatched != before:
            yield from service.last_batch_mappings
    before = service.batches_dispatched
    service.flush()
    if service.batches_dispatched != before:
        yield from service.last_batch_mappings
