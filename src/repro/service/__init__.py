"""Long-running streaming execution: the service layer.

One-shot experiments hand the engines a complete read block;
:mod:`repro.service` keeps the system up while reads arrive
incrementally, with flat memory:

* :class:`StreamingMappingService` — accepts reads one at a time (or
  from any iterator), coalesces them into autotuned micro-batches,
  dispatches through the batched or sharded engine, and keeps every
  cost ledger bounded via compaction
  (:class:`repro.cost.ledger.CostLedger`);
* :class:`MappingFrontend` / :class:`MappingSession` — the
  multi-session front end: the reference is encoded and stored
  **once** (a shared :class:`repro.cam.array.StoredReference`) and
  many independent sessions multiplex over it through one persistent
  autotuned worker pool with fair round-robin scheduling and a
  bounded backlog; each session is bit-identical to a standalone
  :class:`StreamingMappingService` with the same seed and reads;
* :class:`ServiceStats` — the observability snapshot (throughput,
  backlog, per-strategy pass counts, energy/latency from the
  compacted ledger views);
* :func:`stream_mapped` — a pull-style generator over a service.

The streamed session is bit-identical to the equivalent one-shot
``run_batched`` / sharded ``run`` call for any micro-batch boundaries;
see the :mod:`repro.service.stream` module docstring for the
determinism contract and :mod:`repro.service.frontend` for the
session-isolation contract.
"""

from repro.service.frontend import MappingFrontend, MappingSession
from repro.service.stream import (
    DEFAULT_SERVICE_COMPACTION,
    ServiceStats,
    StreamingMappingService,
    stream_mapped,
    validate_service_knobs,
)

__all__ = [
    "DEFAULT_SERVICE_COMPACTION",
    "MappingFrontend",
    "MappingSession",
    "ServiceStats",
    "StreamingMappingService",
    "stream_mapped",
    "validate_service_knobs",
]
