"""Strategy profiles: measured per-read search statistics for Fig. 8.

The accelerator's analytic cost path needs two workload statistics:
average *searches per read* and average *shift-register rotation
cycles per read* with the HDAC/TASR strategies enabled.  The paper
measures them on the functional design; this module does the same —
one :meth:`~repro.core.matcher.AsmCapMatcher.match_sweep` pass over a
condition's threshold sweep, with the per-threshold HDAC/TASR search
counts and rotation cycles harvested from the array's cost ledger
(:func:`profile_from_ledger`), then averaged over the sweep exactly as
the analytic :func:`repro.experiments.fig8.strategy_search_profile`
averages the policies.  Because the functional matcher applies the
same off-line policies, the measured and analytic profiles agree on
the paper's conditions — the Fig. 8 driver prints both as a
cross-check.

:func:`typical_search_event` also lives here: the synthetic
typical-activity ED* pass that anchors the Section V-B power breakdown
and Table I, so those experiments read their component fractions from
the same ledger views as every measured pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro import constants
from repro.cost.events import (
    EdStarPass,
    LedgerEvent,
    SearchPassEvent,
    TasrRotationPass,
)
from repro.errors import ExperimentError


@dataclass(frozen=True)
class StrategyProfile:
    """Per-read strategy statistics over one condition's sweep.

    Attributes
    ----------
    condition:
        ``"A"``, ``"B"`` or a combined label (``"A+B"``).
    searches_per_read:
        Average search operations per read over the sweep.
    rotation_cycles_per_read:
        Average shift-register cycles per read over the sweep.
    source:
        ``"measured"`` (harvested from a ledger) or ``"analytic"``
        (derived from the policies alone).
    thresholds:
        The sweep vector the averages run over.
    per_threshold_searches / per_threshold_rotation_cycles:
        The unaveraged per-threshold statistics.
    """

    condition: str
    searches_per_read: float
    rotation_cycles_per_read: float
    source: str = "measured"
    thresholds: tuple[int, ...] = ()
    per_threshold_searches: tuple[float, ...] = ()
    per_threshold_rotation_cycles: tuple[float, ...] = ()

    @classmethod
    def plain(cls, condition: str = "plain") -> "StrategyProfile":
        """The strategy-free baseline: one ED* search, no rotations.

        What the analytic cost paths
        (:meth:`repro.arch.accelerator.AsmCapAccelerator.estimate_read_cost`,
        :func:`repro.experiments.fig8.asmcap_read_cost`) assume when no
        profile is passed — a plain single-search read.
        """
        return cls(condition=condition, searches_per_read=1.0,
                   rotation_cycles_per_read=0.0, source="analytic")

    @staticmethod
    def average(profiles: "Iterable[StrategyProfile]") -> "StrategyProfile":
        """Equal-weight average over conditions (the paper's Fig. 8
        "average effect of the proposed strategies")."""
        profiles = list(profiles)
        if not profiles:
            raise ExperimentError("cannot average zero strategy profiles")
        return StrategyProfile(
            condition="+".join(p.condition for p in profiles),
            searches_per_read=float(
                np.mean([p.searches_per_read for p in profiles])
            ),
            rotation_cycles_per_read=float(
                np.mean([p.rotation_cycles_per_read for p in profiles])
            ),
            source=profiles[0].source,
        )


def profile_from_ledger(events: Iterable[LedgerEvent],
                        thresholds: "Iterable[int]",
                        condition: str = "?") -> StrategyProfile:
    """Harvest a sweep's strategy statistics from recorded events.

    For each threshold of the sweep, a read cost one search per sweep
    pass whose reference set covered that threshold (the base ED* pass
    covers every threshold; the HDAC pass covers the thresholds whose
    ``p`` cleared the disable cut; each TASR rotation pass covers the
    thresholds at or above ``Tl``), plus ``|rotation|`` shift cycles
    per covering rotation pass.  This is the scalar-equivalent count —
    what a per-threshold scalar execution would have issued — which is
    what the analytic Fig. 8 model consumes.

    A ledger holding several ``match_sweep`` runs (repeated
    measurements, chunked read blocks) is normalised by the number of
    base ED* passes covering each threshold, so the profile is the
    per-read average over runs, never a multiple of it.

    Harvesting needs the *full* sweep-pass events (per-event threshold
    coverage), which is exactly why ledger compaction never folds
    sweep passes by default: a ``compact(fold_sweep=True)`` destroys
    what this function reads, so harvest the profile first (see
    DESIGN.md, "Cost-ledger contract: compaction").
    """
    sweep_passes = [event for event in events
                    if isinstance(event, SearchPassEvent) and event.sweep]
    if not sweep_passes:
        raise ExperimentError(
            "no sweep passes recorded; run match_sweep before harvesting "
            "a strategy profile"
        )
    thresholds = tuple(int(t) for t in thresholds)
    if not thresholds:
        raise ExperimentError("strategy profile needs a non-empty sweep")
    searches: list[float] = []
    cycles: list[float] = []
    for threshold in thresholds:
        n_searches = 0.0
        n_cycles = 0.0
        n_base = 0
        for event in sweep_passes:
            if not event.covers_threshold(threshold):
                continue
            n_searches += 1.0
            if isinstance(event, TasrRotationPass):
                n_cycles += abs(int(event.rotation))
            elif isinstance(event, EdStarPass):
                n_base += 1
        if n_base == 0:
            raise ExperimentError(
                f"no base ED* sweep pass covers threshold {threshold}; "
                "the ledger does not hold a full sweep over these "
                "thresholds"
            )
        searches.append(n_searches / n_base)
        cycles.append(n_cycles / n_base)
    return StrategyProfile(
        condition=condition,
        searches_per_read=float(np.mean(searches)),
        rotation_cycles_per_read=float(np.mean(cycles)),
        source="measured",
        thresholds=thresholds,
        per_threshold_searches=tuple(searches),
        per_threshold_rotation_cycles=tuple(cycles),
    )


def _condition_setup(condition: str):
    from repro.genome.edits import ErrorModel

    label = condition.strip().upper()
    if label == "A":
        return label, ErrorModel.condition_a(), constants.CONDITION_A_THRESHOLDS
    if label == "B":
        return label, ErrorModel.condition_b(), constants.CONDITION_B_THRESHOLDS
    raise ExperimentError(f"unknown condition {condition!r}")


def measure_strategy_profile(condition: str,
                             tasr_direction: str = "both",
                             n_reads: int = 4,
                             n_segments: int = 8,
                             seed: int = 0) -> StrategyProfile:
    """Measure one condition's strategy profile on the functional engine.

    Builds a small workload for the condition, runs **one**
    :meth:`~repro.core.matcher.AsmCapMatcher.match_sweep` over the
    condition's Fig. 7 threshold sweep, and harvests the per-threshold
    search counts and rotation cycles from the array's cost ledger.
    The statistics are policy-driven (HDAC eligibility and ``Tl`` are
    off-line functions of the workload's error rates), so a tiny read
    block measures the same profile as a full-scale run.
    """
    from repro.cam.array import CamArray
    from repro.core.matcher import AsmCapMatcher, MatcherConfig
    from repro.genome.datasets import build_dataset

    label, _, thresholds = _condition_setup(condition)
    dataset = build_dataset(label, n_reads=n_reads,
                            read_length=constants.READ_LENGTH,
                            n_segments=n_segments, seed=seed)
    array = CamArray(rows=n_segments, cols=constants.READ_LENGTH,
                     domain="charge", noisy=True, seed=seed)
    array.store(dataset.segments)
    matcher = AsmCapMatcher(
        array, dataset.model,
        MatcherConfig(tasr_direction=tasr_direction), seed=seed + 1,
    )
    reads = np.stack([record.read.codes for record in dataset.reads])
    matcher.match_sweep(reads, np.asarray(thresholds, dtype=int))
    return profile_from_ledger(array.ledger, thresholds, condition=label)


def typical_search_event(rows: int = constants.ARRAY_ROWS,
                         cols: int = constants.ARRAY_COLS,
                         mismatch_fraction: float =
                         constants.TYPICAL_ED_STAR_MISMATCH_FRACTION,
                         vdd: float = constants.VDD_VOLTS) -> EdStarPass:
    """A synthetic ED* pass at typical genome activity.

    Every row mismatches at the typical ED* fraction — the
    steady-state activity the Section V-B power breakdown and Table I
    assume.  Feeding this one event to the component views reproduces
    the analytic per-search component energies, so the breakdown
    experiments and the measured ledgers share one accounting model.
    """
    if not 0.0 <= mismatch_fraction <= 1.0:
        raise ExperimentError(
            f"mismatch_fraction must be in [0, 1], got {mismatch_fraction}"
        )
    counts = np.full((1, rows), mismatch_fraction * cols)
    return EdStarPass(
        domain="charge", mode="ed_star", n_cells=cols, vdd=vdd,
        search_time_ns=constants.ASMCAP_SEARCH_TIME_NS,
        mismatch_counts=counts,
        thresholds=np.zeros(1, dtype=int),
    )
