"""Typed hardware cost events.

An event records **what the hardware did** — which pass, over how many
queries, against how many stored rows, and the per-row mismatch
populations the pass observed.  Events never carry joules or watts:
energy, latency and power are *derived views* computed from the event
by :mod:`repro.cost.views` through the physical models.  That split is
what keeps the scalar, batched, sweep and sharded execution paths on
one accounting model (see DESIGN.md, "Cost-ledger contract").

Event taxonomy
--------------

* :class:`EdStarPass` — one ED* search pass (the base search of the
  matching flow, or EDAM's plain search);
* :class:`HdacPass` — the Hamming-distance pass HDAC issues when the
  workload's ``p`` is worth the extra cycle (Algorithm 1);
* :class:`TasrRotationPass` — one rotated ED* pass of TASR (or EDAM's
  unconditional SR), carrying the rotation offset so the shift-register
  cycle count is derivable;
* :class:`ReferenceLoad` — reference segments written into an array
  (or distributed across the accelerator);
* :class:`BufferBroadcast` — a read block fetched from the global
  buffer and broadcast down the H-tree.

A *pass* event covers a whole query block: ``mismatch_counts`` is the
``(B, M)`` matrix of digital mismatch populations (query, stored row),
exactly what the sense amplifiers converted to decisions.  Scalar
searches record a ``(1, M)`` block.  ``thresholds`` holds the sense-amp
reference levels evaluated against the pass's analog voltages: the
``(B,)`` per-query thresholds of a scalar/batched search, or the
``(T,)`` sweep vector of a sweep pass (``sweep=True``), where one
physical pass serves every threshold — the distinction the strategy
profile harvesting relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, eq=False)
class LedgerEvent:
    """Base class for every cost-ledger event."""


@dataclass(frozen=True, eq=False)
class SearchPassEvent(LedgerEvent):
    """One physical search pass through a CAM array.

    Attributes
    ----------
    domain:
        ``"charge"`` (ASMCap) or ``"current"`` (EDAM) — selects the
        energy model the views apply.
    mode:
        ``"ed_star"`` or ``"hamming"`` — which comparison the cells ran.
    n_cells:
        Row width ``N`` (bases per stored segment).
    vdd:
        Supply voltage of the array that ran the pass.
    search_time_ns:
        The array's search-cycle time (one pass per query).
    mismatch_counts:
        ``(B, M)`` digital mismatch populations (query, stored row).
    thresholds:
        Sense-amp reference levels evaluated on this pass: per-query
        ``(B,)`` for scalar/batched searches, the ``(T,)`` sweep vector
        for sweep passes.
    sweep:
        True when one physical pass served a whole threshold sweep.
    query_keys:
        The per-query determinism keys, when the caller used keyed
        noise streams (None for legacy sequential draws).
    """

    domain: str
    mode: str
    n_cells: int
    vdd: float
    search_time_ns: float
    mismatch_counts: np.ndarray
    thresholds: np.ndarray
    sweep: bool = False
    query_keys: "np.ndarray | None" = None

    @property
    def n_queries(self) -> int:
        """Queries that physically streamed through the array."""
        return int(self.mismatch_counts.shape[0])

    @property
    def n_rows(self) -> int:
        """Stored rows ``M`` the pass compared against."""
        return int(self.mismatch_counts.shape[1])

    @property
    def shift_cycles(self) -> int:
        """Shift-register cycles this pass spent (rotated passes only)."""
        return 0

    def covers_threshold(self, threshold: int) -> bool:
        """Whether this pass's decisions served *threshold*."""
        return bool(np.any(self.thresholds == int(threshold)))

    # -- derived views (cached; computed by repro.cost.views) ------------

    @property
    def energy_per_query_joules(self) -> np.ndarray:
        """``(B,)`` array energy per query (derived view, cached)."""
        cached = self.__dict__.get("_energy_per_query")
        if cached is None:
            from repro.cost import views

            cached = views.search_pass_energy_per_query(self)
            object.__setattr__(self, "_energy_per_query", cached)
        return cached

    @property
    def energy_joules(self) -> float:
        """Total array energy of the pass (derived view)."""
        return float(self.energy_per_query_joules.sum())

    @property
    def latency_ns(self) -> float:
        """Array-occupancy time of the pass (one cycle per query)."""
        return self.search_time_ns * self.n_queries


@dataclass(frozen=True, eq=False)
class EdStarPass(SearchPassEvent):
    """The base (unrotated) ED* search pass."""


@dataclass(frozen=True, eq=False)
class HdacPass(SearchPassEvent):
    """HDAC's extra Hamming-distance pass (Algorithm 1)."""


@dataclass(frozen=True, eq=False)
class TasrRotationPass(SearchPassEvent):
    """One rotated ED* pass (TASR's Algorithm 2, or EDAM's SR).

    ``rotation`` is the signed rotation offset (positive = left); each
    base of rotation costs one shift-register cycle per query.
    """

    rotation: int = 0

    @property
    def shift_cycles(self) -> int:
        return abs(int(self.rotation)) * self.n_queries


@dataclass(frozen=True, eq=False)
class ReferenceLoad(LedgerEvent):
    """Reference segments written into storage.

    Attributes
    ----------
    n_segments:
        Rows written.
    n_cells:
        Bases per row.
    """

    n_segments: int
    n_cells: int

    @property
    def n_bases(self) -> int:
        return self.n_segments * self.n_cells


@dataclass(frozen=True, eq=False)
class BufferBroadcast(LedgerEvent):
    """A read block fetched from the global buffer and broadcast.

    Attributes
    ----------
    n_reads:
        Reads in the broadcast block.
    read_bits:
        Bits per broadcast read (2 bits/base at the paper's encoding).
    """

    n_reads: int
    read_bits: int

    @property
    def total_bits(self) -> int:
        return self.n_reads * self.read_bits
