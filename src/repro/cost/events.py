"""Typed hardware cost events.

An event records **what the hardware did** — which pass, over how many
queries, against how many stored rows, and the per-row mismatch
populations the pass observed.  Events never carry joules or watts:
energy, latency and power are *derived views* computed from the event
by :mod:`repro.cost.views` through the physical models.  That split is
what keeps the scalar, batched, sweep and sharded execution paths on
one accounting model (see DESIGN.md, "Cost-ledger contract").

Event taxonomy
--------------

* :class:`EdStarPass` — one ED* search pass (the base search of the
  matching flow, or EDAM's plain search);
* :class:`HdacPass` — the Hamming-distance pass HDAC issues when the
  workload's ``p`` is worth the extra cycle (Algorithm 1);
* :class:`TasrRotationPass` — one rotated ED* pass of TASR (or EDAM's
  unconditional SR), carrying the rotation offset so the shift-register
  cycle count is derivable;
* :class:`ReferenceLoad` — reference segments written into an array
  (or distributed across the accelerator);
* :class:`BufferBroadcast` — a read block fetched from the global
  buffer and broadcast down the H-tree;
* :class:`CompactionCheckpoint` — the bounded-memory summary a
  compacting ledger folds fully-materialised events into: exact
  resume values for every ledger view plus one
  :class:`PassClassSummary` per folded event class (see
  :meth:`repro.cost.ledger.CostLedger.compact`).

A *pass* event covers a whole query block: ``mismatch_counts`` is the
``(B, M)`` matrix of digital mismatch populations (query, stored row),
exactly what the sense amplifiers converted to decisions.  Scalar
searches record a ``(1, M)`` block.  ``thresholds`` holds the sense-amp
reference levels evaluated against the pass's analog voltages: the
``(B,)`` per-query thresholds of a scalar/batched search, or the
``(T,)`` sweep vector of a sweep pass (``sweep=True``), where one
physical pass serves every threshold — the distinction the strategy
profile harvesting relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, eq=False)
class LedgerEvent:
    """Base class for every cost-ledger event."""


@dataclass(frozen=True, eq=False)
class SearchPassEvent(LedgerEvent):
    """One physical search pass through a CAM array.

    Attributes
    ----------
    domain:
        ``"charge"`` (ASMCap) or ``"current"`` (EDAM) — selects the
        energy model the views apply.
    mode:
        ``"ed_star"`` or ``"hamming"`` — which comparison the cells ran.
    n_cells:
        Row width ``N`` (bases per stored segment).
    vdd:
        Supply voltage of the array that ran the pass.
    search_time_ns:
        The array's search-cycle time (one pass per query).
    mismatch_counts:
        ``(B, M)`` digital mismatch populations (query, stored row).
    thresholds:
        Sense-amp reference levels evaluated on this pass: per-query
        ``(B,)`` for scalar/batched searches, the ``(T,)`` sweep vector
        for sweep passes.
    sweep:
        True when one physical pass served a whole threshold sweep.
    query_keys:
        The per-query determinism keys, when the caller used keyed
        noise streams (None for legacy sequential draws).
    """

    domain: str
    mode: str
    n_cells: int
    vdd: float
    search_time_ns: float
    mismatch_counts: np.ndarray
    thresholds: np.ndarray
    sweep: bool = False
    query_keys: "np.ndarray | None" = None

    @property
    def n_queries(self) -> int:
        """Queries that physically streamed through the array."""
        return int(self.mismatch_counts.shape[0])

    @property
    def n_rows(self) -> int:
        """Stored rows ``M`` the pass compared against."""
        return int(self.mismatch_counts.shape[1])

    @property
    def shift_cycles(self) -> int:
        """Shift-register cycles this pass spent (rotated passes only)."""
        return 0

    def covers_threshold(self, threshold: int) -> bool:
        """Whether this pass's decisions served *threshold*."""
        return bool(np.any(self.thresholds == int(threshold)))

    # -- derived views (cached; computed by repro.cost.views) ------------

    @property
    def energy_per_query_joules(self) -> np.ndarray:
        """``(B,)`` array energy per query (derived view, cached)."""
        cached = self.__dict__.get("_energy_per_query")
        if cached is None:
            from repro.cost import views

            cached = views.search_pass_energy_per_query(self)
            object.__setattr__(self, "_energy_per_query", cached)
        return cached

    @property
    def energy_joules(self) -> float:
        """Total array energy of the pass (derived view)."""
        return float(self.energy_per_query_joules.sum())

    @property
    def latency_ns(self) -> float:
        """Array-occupancy time of the pass (one cycle per query)."""
        return self.search_time_ns * self.n_queries


@dataclass(frozen=True, eq=False)
class EdStarPass(SearchPassEvent):
    """The base (unrotated) ED* search pass."""


@dataclass(frozen=True, eq=False)
class HdacPass(SearchPassEvent):
    """HDAC's extra Hamming-distance pass (Algorithm 1)."""


@dataclass(frozen=True, eq=False)
class TasrRotationPass(SearchPassEvent):
    """One rotated ED* pass (TASR's Algorithm 2, or EDAM's SR).

    ``rotation`` is the signed rotation offset (positive = left); each
    base of rotation costs one shift-register cycle per query.
    """

    rotation: int = 0

    @property
    def shift_cycles(self) -> int:
        return abs(int(self.rotation)) * self.n_queries


@dataclass(frozen=True, eq=False)
class ReferenceLoad(LedgerEvent):
    """Reference segments written into storage.

    Attributes
    ----------
    n_segments:
        Rows written.
    n_cells:
        Bases per row.
    """

    n_segments: int
    n_cells: int

    @property
    def n_bases(self) -> int:
        return self.n_segments * self.n_cells


@dataclass(frozen=True)
class PassClassSummary:
    """Exact totals for every folded pass of one event class.

    The per-class ledger summary a :class:`CompactionCheckpoint`
    carries: counts, energy/latency accumulated in event order within
    the class, and the first two moments (plus extrema) of the folded
    per-row mismatch populations — enough to keep strategy pass counts
    and population statistics observable after the full events are
    gone.

    Attributes
    ----------
    n_passes:
        Events of this class folded so far.
    n_queries:
        Physical queries those passes streamed through the array.
    shift_cycles:
        Shift-register cycles the passes spent (rotation passes only).
    energy_joules / latency_ns:
        Class totals (event-order accumulation within the class).
    population_count:
        Number of folded ``(query, row)`` mismatch populations.
    population_sum / population_sumsq:
        First two raw moments of the folded mismatch counts.
    population_min / population_max:
        Extrema of the folded mismatch counts (0 when nothing folded).
    """

    n_passes: int = 0
    n_queries: int = 0
    shift_cycles: int = 0
    energy_joules: float = 0.0
    latency_ns: float = 0.0
    population_count: int = 0
    population_sum: int = 0
    population_sumsq: float = 0.0
    population_min: int = 0
    population_max: int = 0

    def fold(self, event: SearchPassEvent) -> "PassClassSummary":
        """This summary with one more pass folded in (a new summary)."""
        counts = event.mismatch_counts
        if counts.size:
            low, high = int(counts.min()), int(counts.max())
            if self.population_count:
                low = min(low, self.population_min)
                high = max(high, self.population_max)
        else:
            low, high = self.population_min, self.population_max
        return PassClassSummary(
            n_passes=self.n_passes + 1,
            n_queries=self.n_queries + event.n_queries,
            shift_cycles=self.shift_cycles + event.shift_cycles,
            energy_joules=self.energy_joules + event.energy_joules,
            latency_ns=self.latency_ns + event.latency_ns,
            population_count=self.population_count + int(counts.size),
            population_sum=self.population_sum + int(counts.sum()),
            population_sumsq=(self.population_sumsq
                              + float((counts.astype(float) ** 2).sum())),
            population_min=low,
            population_max=high,
        )

    @property
    def population_mean(self) -> float:
        """Mean folded mismatch population (0 when empty)."""
        if self.population_count == 0:
            return 0.0
        return self.population_sum / self.population_count


@dataclass(frozen=True, eq=False)
class CompactionCheckpoint(LedgerEvent):
    """The folded prefix of a compacting ledger.

    A compacting :class:`~repro.cost.ledger.CostLedger` replaces its
    oldest fully-materialised events with one checkpoint holding

    * **exact resume values** for the order-sensitive views: the
      running :func:`~repro.cost.views.search_stats` accumulation
      (``n_searches`` / ``n_rotation_cycles`` / ``total_energy_joules``
      / ``total_latency_ns``) and, for all-charge-domain prefixes, the
      running :func:`~repro.cost.views.component_energy_totals`
      per-component sums — both accumulated **in event order** at fold
      time, so a view resuming from the checkpoint performs the same
      float additions the uncompacted event sequence would;
    * **typed per-event-class summaries** (:class:`PassClassSummary`
      keyed by event class name, e.g. ``"EdStarPass"``) plus folded
      :class:`ReferenceLoad` / :class:`BufferBroadcast` traffic totals.

    A checkpoint is only legal as the *first* event of a ledger — the
    resume values are prefixes of the accumulation, nothing else (see
    DESIGN.md, "Cost-ledger contract: compaction").

    Attributes
    ----------
    n_folded:
        Total events folded into this checkpoint.
    n_searches / n_rotation_cycles / total_energy_joules /
    total_latency_ns:
        The exact :func:`~repro.cost.views.search_stats` resume values.
    component_totals:
        The exact :func:`~repro.cost.views.component_energy_totals`
        resume values, or None when a folded pass was current-domain
        (that view rejects current-domain passes, so it must keep
        raising after they fold).
    pass_summaries:
        Per-event-class summaries of the folded search passes.
    n_reference_loads / n_segments_loaded / n_bases_loaded:
        Folded :class:`ReferenceLoad` totals.
    n_broadcasts / n_reads_broadcast / n_bits_broadcast:
        Folded :class:`BufferBroadcast` totals.
    """

    n_folded: int
    n_searches: int
    n_rotation_cycles: int
    total_energy_joules: float
    total_latency_ns: float
    component_totals: "dict[str, float] | None"
    pass_summaries: "dict[str, PassClassSummary]"
    n_reference_loads: int = 0
    n_segments_loaded: int = 0
    n_bases_loaded: int = 0
    n_broadcasts: int = 0
    n_reads_broadcast: int = 0
    n_bits_broadcast: int = 0


@dataclass(frozen=True, eq=False)
class BufferBroadcast(LedgerEvent):
    """A read block fetched from the global buffer and broadcast.

    Attributes
    ----------
    n_reads:
        Reads in the broadcast block.
    read_bits:
        Bits per broadcast read (2 bits/base at the paper's encoding).
    """

    n_reads: int
    read_bits: int

    @property
    def total_bits(self) -> int:
        return self.n_reads * self.read_bits
