"""Derived cost views: energy / latency / power computed from events.

This module is the **single accounting implementation** behind every
joule and nanosecond the simulator reports.  A search-pass event
carries the per-row mismatch populations the pass observed; the views
push them through the physical models:

* cell energy — :func:`repro.cam.energy.search_energy_per_row`
  (Eq. (1)) in the charge domain, the pre-charge + discharge model in
  the current domain;
* peripheral energy — the sense-amp per-row constant and the
  shift-register per-search constant of :mod:`repro.constants`;
* latency — one search cycle per query at the event's recorded cycle
  time (the :mod:`repro.arch.timing` constants), with shift-register
  cycles tracked separately (the system model charges them where they
  serialise).

:class:`~repro.cam.array.CamArray` derives its per-search energies and
its cumulative :class:`SearchStats` from here, which is what makes the
scalar, batched, sweep and sharded paths bit-identical by construction
— they all read the same view over the same events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro import constants
from repro.cost.events import (
    CompactionCheckpoint,
    LedgerEvent,
    SearchPassEvent,
    TasrRotationPass,
)
from repro.errors import CamConfigError, LedgerCompactionError

# repro.cam.energy is imported lazily inside the view functions: the
# cam package's array module imports this module at load time, so a
# module-level import here would close an import cycle through
# repro.cam.__init__.


def search_pass_energy_per_query(event: SearchPassEvent) -> np.ndarray:
    """``(B,)`` array energy per query of one search pass.

    The charge domain applies Eq. (1) row by row
    (:func:`repro.cam.energy.search_energy_per_row`); the current
    domain charges the matchline pre-charge plus per-mismatch
    discharge.  Sense-amp energy is charged per stored row.
    """
    from repro.cam.energy import search_energy_per_row

    counts = event.mismatch_counts
    n_rows = counts.shape[1]
    if event.domain == "charge":
        cells = search_energy_per_row(counts, event.n_cells,
                                      vdd=event.vdd).sum(axis=1)
    else:
        precharge = (constants.EDAM_ML_PRECHARGE_CAP_F
                     * event.vdd**2 * n_rows)
        discharge = (constants.EDAM_DISCHARGE_ENERGY_PER_MISMATCH_J
                     * counts.sum(axis=1, dtype=float))
        cells = precharge + discharge
    peripherals = constants.SA_ENERGY_PER_ROW_J * n_rows
    return np.asarray(cells + peripherals, dtype=float)


def search_pass_energy(event: SearchPassEvent) -> float:
    """Total array energy of one pass (sum of the per-query view)."""
    return event.energy_joules


def search_pass_latency_ns(event: SearchPassEvent) -> float:
    """Array-occupancy time of one pass: one cycle per query."""
    return event.search_time_ns * event.n_queries


def component_energies(event: SearchPassEvent) -> dict[str, float]:
    """Per-component energy of one charge-domain search pass.

    The Section V-B split: cells (Eq. (1) over the pass's mismatch
    populations), shift registers (per-search constant — the registers
    hold and shift the read every cycle), sense amplifiers (per-row
    constant).  Summed over the pass's queries.  Only the charge
    domain has this decomposition; current-domain events are rejected
    rather than silently mis-accounted.
    """
    from repro.cam.energy import search_energy_per_row
    from repro.errors import CamConfigError

    if event.domain != "charge":
        raise CamConfigError(
            "component_energies models the charge-domain Section V-B "
            f"split; got a {event.domain!r}-domain pass"
        )
    counts = event.mismatch_counts
    cells = float(search_energy_per_row(counts, event.n_cells,
                                        vdd=event.vdd).sum())
    shift = constants.SHIFT_REGISTER_ENERGY_PER_SEARCH_J * event.n_queries
    sense = constants.SA_ENERGY_PER_ROW_J * event.n_rows * event.n_queries
    return {"cells": cells, "shift_registers": shift, "sense_amps": sense}


def _reject_midstream_checkpoint(position: int) -> None:
    """A checkpoint is a fold of the accumulation *prefix*; meeting
    one anywhere else means the event order the views define no
    longer exists."""
    if position != 0:
        raise LedgerCompactionError(
            f"compaction checkpoint at event position {position}; a "
            "checkpoint is only legal as a ledger's first event"
        )


def component_energy_totals(
        events: Iterable[LedgerEvent]) -> dict[str, float]:
    """Component energies summed over every search pass of a ledger.

    Charge-domain ledgers only (the Section V-B split); a
    current-domain pass raises rather than being mis-accounted — and a
    checkpoint that folded a current-domain pass keeps raising (its
    ``component_totals`` is None).  A leading
    :class:`~repro.cost.events.CompactionCheckpoint` contributes its
    exact per-component resume sums, so compacted and uncompacted
    ledgers read bit-identical totals.
    """
    totals = {"cells": 0.0, "shift_registers": 0.0, "sense_amps": 0.0}
    for position, event in enumerate(events):
        if isinstance(event, CompactionCheckpoint):
            _reject_midstream_checkpoint(position)
            if event.component_totals is None:
                raise CamConfigError(
                    "component_energy_totals models the charge-domain "
                    "Section V-B split; this ledger folded a "
                    "current-domain pass"
                )
            for key, value in event.component_totals.items():
                totals[key] += value
            continue
        if not isinstance(event, SearchPassEvent):
            continue
        for key, value in component_energies(event).items():
            totals[key] += value
    return totals


@dataclass
class SearchStats:
    """Cumulative per-array counters (a view over the ledger).

    Field-compatible with the pre-ledger incremental accumulator, so
    benchmark bookkeeping and tests read the same shape; the values now
    come from one pass over the recorded events.
    """

    n_searches: int = 0
    n_rotation_cycles: int = 0
    total_energy_joules: float = 0.0
    total_latency_ns: float = 0.0


def search_stats(events: Iterable[LedgerEvent]) -> SearchStats:
    """Fold a ledger's search passes into cumulative counters.

    Accumulation runs in event order, one pass at a time — exactly the
    order the pre-ledger per-search accumulation used — so the totals
    are bit-identical to the incremental bookkeeping they replaced.
    A sweep pass counts its ``B`` physical searches (each query's
    analog levels are computed once and reused for every threshold),
    not ``T * B``.

    A leading :class:`~repro.cost.events.CompactionCheckpoint` restores
    the exact partial accumulation over the folded prefix (the
    checkpoint stored the same per-event float additions, in the same
    order, at fold time), so compacted and uncompacted ledgers read
    bit-identical counters.  A checkpoint anywhere else raises
    :class:`~repro.errors.LedgerCompactionError`.
    """
    stats = SearchStats()
    for position, event in enumerate(events):
        if isinstance(event, CompactionCheckpoint):
            _reject_midstream_checkpoint(position)
            stats.n_searches += event.n_searches
            stats.n_rotation_cycles += event.n_rotation_cycles
            stats.total_energy_joules += event.total_energy_joules
            stats.total_latency_ns += event.total_latency_ns
            continue
        if not isinstance(event, SearchPassEvent):
            continue
        stats.n_searches += event.n_queries
        if isinstance(event, TasrRotationPass):
            stats.n_rotation_cycles += event.shift_cycles
        stats.total_energy_joules += event.energy_joules
        stats.total_latency_ns += search_pass_latency_ns(event)
    return stats


def fold_ledger_observability(
        ledgers,
        ) -> "tuple[dict[str, int], int, int, int, int]":
    """Fold the bounded-memory evidence over a set of ledgers.

    Returns ``(pass_counts, events_live, events_folded,
    population_elements, compactions)`` — the ledger-derived fields of
    :class:`repro.service.stream.ServiceStats`, defined once for the
    single-client service, the frontend's sessions, and the sharded
    pipeline's engine observability alike.
    """
    pass_counts: "dict[str, int]" = {}
    events_live = 0
    events_folded = 0
    population = 0
    compactions = 0
    for ledger in ledgers:
        for name, count in ledger.pass_counts().items():
            pass_counts[name] = pass_counts.get(name, 0) + count
        events_live += len(ledger)
        events_folded += ledger.n_folded
        population += ledger.live_population_elements()
        compactions += ledger.n_compactions
    return pass_counts, events_live, events_folded, population, compactions


def merge_search_stats(parts: Iterable[SearchStats]) -> SearchStats:
    """Sum per-ledger :class:`SearchStats` folds in input order.

    The system-level aggregation for independently-owned (possibly
    compacted) ledgers: each part is that ledger's own exact fold, and
    the parts are combined field-wise in deterministic input order —
    bit-identical between compacted and uncompacted runs because every
    per-ledger fold is.
    """
    merged = SearchStats()
    for part in parts:
        merged.n_searches += part.n_searches
        merged.n_rotation_cycles += part.n_rotation_cycles
        merged.total_energy_joules += part.total_energy_joules
        merged.total_latency_ns += part.total_latency_ns
    return merged
