"""Unified hardware cost accounting: events -> ledger -> views.

Every execution path of the simulator (scalar, batched, sweep and
sharded searches; the accelerator's functional broadcast) reports its
hardware cost through **one** subsystem:

* :mod:`repro.cost.events` — typed events describing what the hardware
  did (:class:`EdStarPass`, :class:`HdacPass`,
  :class:`TasrRotationPass`, :class:`ReferenceLoad`,
  :class:`BufferBroadcast`), carrying pass counts and the per-row
  mismatch populations each pass observed;
* :mod:`repro.cost.ledger` — :class:`CostLedger`, the append-only
  event collector owned by every :class:`~repro.cam.array.CamArray`
  (and, at system level, by the accelerator and the sharded pipeline);
* :mod:`repro.cost.views` — energy / latency / throughput / power
  *derived* from the events through the physical models
  (:mod:`repro.cam.energy`, :mod:`repro.arch.timing`,
  :mod:`repro.arch.power`) — the single accounting implementation that
  every reported joule and nanosecond flows through;
* :mod:`repro.cost.profile` — :class:`StrategyProfile`, the measured
  per-read strategy statistics (searches/read, rotation cycles/read)
  harvested from a ledger, which feed the analytic Fig. 8 path.

The contract (see DESIGN.md): events record *what happened* (counts
and populations), never joules; all energy/latency numbers are derived
views, so the scalar, batched, sweep and sharded paths cannot drift
apart — they all read from the same model.
"""

from repro.cost.events import (
    BufferBroadcast,
    CompactionCheckpoint,
    EdStarPass,
    HdacPass,
    LedgerEvent,
    PassClassSummary,
    ReferenceLoad,
    SearchPassEvent,
    TasrRotationPass,
)
from repro.cost.ledger import CostLedger
from repro.cost.profile import (
    StrategyProfile,
    measure_strategy_profile,
    profile_from_ledger,
    typical_search_event,
)
from repro.cost.views import (
    SearchStats,
    component_energies,
    component_energy_totals,
    merge_search_stats,
    search_pass_energy,
    search_pass_energy_per_query,
    search_pass_latency_ns,
    search_stats,
)

__all__ = [
    "BufferBroadcast",
    "CompactionCheckpoint",
    "CostLedger",
    "EdStarPass",
    "HdacPass",
    "LedgerEvent",
    "PassClassSummary",
    "ReferenceLoad",
    "SearchPassEvent",
    "SearchStats",
    "StrategyProfile",
    "TasrRotationPass",
    "component_energies",
    "component_energy_totals",
    "measure_strategy_profile",
    "merge_search_stats",
    "profile_from_ledger",
    "search_pass_energy",
    "search_pass_energy_per_query",
    "search_pass_latency_ns",
    "search_stats",
    "typical_search_event",
]
