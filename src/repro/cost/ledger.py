"""The cost ledger: an append-only collector of typed cost events.

Every :class:`~repro.cam.array.CamArray` owns a :class:`CostLedger`
and records one :class:`~repro.cost.events.SearchPassEvent` per
physical pass; system-level components (the accelerator, the sharded
pipeline) own their own ledgers for :class:`ReferenceLoad` /
:class:`BufferBroadcast` traffic and merge the array ledgers in
deterministic (shard) order when a whole-system view is needed.

The ledger stores events only; every energy/latency/power number is a
*view* computed by :mod:`repro.cost.views` on demand.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.cost.events import LedgerEvent, SearchPassEvent


class CostLedger:
    """Append-only, order-preserving event collector."""

    def __init__(self, events: "Iterable[LedgerEvent] | None" = None):
        self._events: list[LedgerEvent] = list(events or ())

    def record(self, event: LedgerEvent) -> LedgerEvent:
        """Append one event and return it (for fluent call sites)."""
        self._events.append(event)
        return event

    def extend(self, events: Iterable[LedgerEvent]) -> None:
        """Append a batch of events, preserving their order."""
        self._events.extend(events)

    def clear(self) -> None:
        """Drop every recorded event (long-lived arrays can trim)."""
        self._events.clear()

    @property
    def events(self) -> tuple[LedgerEvent, ...]:
        """Every recorded event, oldest first."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LedgerEvent]:
        return iter(self._events)

    def search_passes(self) -> "tuple[SearchPassEvent, ...]":
        """The search-pass events, oldest first."""
        return tuple(event for event in self._events
                     if isinstance(event, SearchPassEvent))

    def of_type(self, *types: type) -> "tuple[LedgerEvent, ...]":
        """Events matching any of the given event classes."""
        return tuple(event for event in self._events
                     if isinstance(event, types))

    @classmethod
    def merged(cls, *ledgers: "CostLedger") -> "CostLedger":
        """One ledger holding every input's events, input order.

        Shard merges pass shard-ordered ledgers, so the merged event
        order — and therefore every order-sensitive view — is
        deterministic regardless of worker scheduling.
        """
        merged = cls()
        for ledger in ledgers:
            merged.extend(ledger.events)
        return merged
