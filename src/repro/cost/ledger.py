"""The cost ledger: an append-only collector of typed cost events.

Every :class:`~repro.cam.array.CamArray` owns a :class:`CostLedger`
and records one :class:`~repro.cost.events.SearchPassEvent` per
physical pass; system-level components (the accelerator, the sharded
pipeline) own their own ledgers for :class:`ReferenceLoad` /
:class:`BufferBroadcast` traffic and merge the array ledgers in
deterministic (shard) order when a whole-system view is needed.

The ledger stores events only; every energy/latency/power number is a
*view* computed by :mod:`repro.cost.views` on demand.

**Compaction (bounded memory).**  An append-only ledger retains every
pass's ``(B, M)`` mismatch populations, which grows without bound in a
long-running service.  ``CostLedger(compaction=K)`` opts into the
compacting mode: whenever more than ``K`` foldable events are live,
the oldest fully-materialised events are folded into one leading
:class:`~repro.cost.events.CompactionCheckpoint` carrying exact resume
values for every ledger view plus typed per-event-class summaries.
Folding is **prefix-only** and preserves bit-identity: the checkpoint
stores the views' own running float accumulations computed in event
order, so ``search_stats`` / ``component_energy_totals`` over the
compacted ledger read exactly the floats the uncompacted event
sequence would produce (property-tested in
``tests/cost/test_ledger_compaction.py``).  Sweep passes are never
folded by default — strategy-profile harvesting
(:func:`repro.cost.profile.profile_from_ledger`) needs their per-event
threshold coverage — and block further folding until
:meth:`CostLedger.compact` is called with ``fold_sweep=True`` (after
the profile has been harvested) or the ledger is cleared.  See
DESIGN.md, "Cost-ledger contract: compaction".
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.cost.events import (
    BufferBroadcast,
    CompactionCheckpoint,
    LedgerEvent,
    PassClassSummary,
    ReferenceLoad,
    SearchPassEvent,
)
from repro.errors import LedgerCompactionError


class CostLedger:
    """Append-only, order-preserving event collector.

    Parameters
    ----------
    events:
        Initial events (oldest first).
    compaction:
        ``None`` (the default) keeps every event forever — the
        append-only mode every one-shot experiment uses.  An integer
        ``K >= 1`` opts into bounded-memory compaction: after each
        :meth:`record`, if more than ``K`` foldable events are live,
        the foldable prefix is folded into the leading
        :class:`~repro.cost.events.CompactionCheckpoint`.
    """

    def __init__(self, events: "Iterable[LedgerEvent] | None" = None,
                 compaction: "int | None" = None):
        if compaction is not None and int(compaction) < 1:
            raise LedgerCompactionError(
                f"compaction bound must be a positive event count, got "
                f"{compaction}"
            )
        self._events: list[LedgerEvent] = list(events or ())
        self._compaction = None if compaction is None else int(compaction)
        self._n_compactions = 0

    def record(self, event: LedgerEvent) -> LedgerEvent:
        """Append one event and return it (for fluent call sites).

        In compacting mode, recording may fold older events into the
        checkpoint; the returned event object stays valid either way
        (folding caches its derived views before discarding it from
        the ledger).
        """
        self._events.append(event)
        if (self._compaction is not None
                and self._n_live_foldable() > self._compaction):
            self.compact()
        return event

    def extend(self, events: Iterable[LedgerEvent]) -> None:
        """Append a batch of events, preserving their order."""
        for event in events:
            self.record(event)

    def clear(self) -> None:
        """Drop every recorded event — including any checkpoint."""
        self._events.clear()

    @property
    def events(self) -> tuple[LedgerEvent, ...]:
        """Every live event, oldest first (checkpoint included)."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LedgerEvent]:
        return iter(self._events)

    def search_passes(self) -> "tuple[SearchPassEvent, ...]":
        """The live (unfolded) search-pass events, oldest first."""
        return tuple(event for event in self._events
                     if isinstance(event, SearchPassEvent))

    def of_type(self, *types: type) -> "tuple[LedgerEvent, ...]":
        """Live events matching any of the given event classes."""
        return tuple(event for event in self._events
                     if isinstance(event, types))

    # -- compaction ---------------------------------------------------------

    @property
    def compaction(self) -> "int | None":
        """The auto-compaction bound (None = append-only mode)."""
        return self._compaction

    @property
    def checkpoint(self) -> "CompactionCheckpoint | None":
        """The leading checkpoint, when anything has been folded."""
        if self._events and isinstance(self._events[0],
                                       CompactionCheckpoint):
            return self._events[0]
        return None

    @property
    def n_folded(self) -> int:
        """Events folded into the checkpoint so far."""
        checkpoint = self.checkpoint
        return 0 if checkpoint is None else checkpoint.n_folded

    @property
    def n_compactions(self) -> int:
        """How many times this ledger has folded its prefix."""
        return self._n_compactions

    def live_population_elements(self) -> int:
        """Retained ``(query, row)`` mismatch populations (a memory
        proxy: the dominant ledger payload is these matrices)."""
        return sum(int(event.mismatch_counts.size)
                   for event in self._events
                   if isinstance(event, SearchPassEvent))

    def pass_counts(self) -> "dict[str, int]":
        """Search passes per event class, folded events included."""
        counts: dict[str, int] = {}
        checkpoint = self.checkpoint
        if checkpoint is not None:
            for name, summary in checkpoint.pass_summaries.items():
                counts[name] = counts.get(name, 0) + summary.n_passes
        for event in self._events:
            if isinstance(event, SearchPassEvent):
                name = type(event).__name__
                counts[name] = counts.get(name, 0) + 1
        return counts

    def _n_live_foldable(self) -> int:
        """Live events the next :meth:`compact` call would fold."""
        n = 0
        start = 1 if self.checkpoint is not None else 0
        for event in self._events[start:]:
            if isinstance(event, SearchPassEvent) and event.sweep:
                break
            n += 1
        return n

    def compact(self, fold_sweep: bool = False) -> int:
        """Fold the foldable event prefix into the checkpoint.

        Folding walks events oldest-first and stops at the first sweep
        pass (unless ``fold_sweep=True``): a sweep pass's per-event
        threshold coverage feeds strategy-profile harvesting, and a
        non-prefix fold would break the views' float-accumulation
        order.  Every folded event's derived views are materialised
        (cached) before it is discarded, so callers still holding the
        event object keep working.

        Returns the number of events folded by this call.
        """
        from repro.cost.views import component_energies

        checkpoint = self.checkpoint
        start = 0 if checkpoint is None else 1
        fold: list[LedgerEvent] = []
        for event in self._events[start:]:
            if (isinstance(event, SearchPassEvent) and event.sweep
                    and not fold_sweep):
                break
            fold.append(event)
        if not fold:
            return 0

        if checkpoint is None:
            n_folded = 0
            n_searches = 0
            n_rotation_cycles = 0
            total_energy = 0.0
            total_latency = 0.0
            component_totals: "dict[str, float] | None" = {
                "cells": 0.0, "shift_registers": 0.0, "sense_amps": 0.0,
            }
            summaries: dict[str, PassClassSummary] = {}
            loads = [0, 0, 0]
            broadcasts = [0, 0, 0]
        else:
            n_folded = checkpoint.n_folded
            n_searches = checkpoint.n_searches
            n_rotation_cycles = checkpoint.n_rotation_cycles
            total_energy = checkpoint.total_energy_joules
            total_latency = checkpoint.total_latency_ns
            component_totals = (None if checkpoint.component_totals is None
                                else dict(checkpoint.component_totals))
            summaries = dict(checkpoint.pass_summaries)
            loads = [checkpoint.n_reference_loads,
                     checkpoint.n_segments_loaded,
                     checkpoint.n_bases_loaded]
            broadcasts = [checkpoint.n_broadcasts,
                          checkpoint.n_reads_broadcast,
                          checkpoint.n_bits_broadcast]

        for event in fold:
            n_folded += 1
            if isinstance(event, SearchPassEvent):
                # The same per-event accumulation search_stats performs,
                # in the same event order — the exact resume contract.
                n_searches += event.n_queries
                n_rotation_cycles += event.shift_cycles
                total_energy += event.energy_joules
                total_latency += event.latency_ns
                if component_totals is not None:
                    if event.domain == "charge":
                        for key, value in component_energies(event).items():
                            component_totals[key] += value
                    else:
                        component_totals = None
                name = type(event).__name__
                summaries[name] = summaries.get(
                    name, PassClassSummary()).fold(event)
            elif isinstance(event, ReferenceLoad):
                loads[0] += 1
                loads[1] += event.n_segments
                loads[2] += event.n_bases
            elif isinstance(event, BufferBroadcast):
                broadcasts[0] += 1
                broadcasts[1] += event.n_reads
                broadcasts[2] += event.total_bits
            elif isinstance(event, CompactionCheckpoint):
                raise LedgerCompactionError(
                    "a checkpoint may only appear as the ledger's first "
                    "event; refusing to fold one mid-stream"
                )

        merged = CompactionCheckpoint(
            n_folded=n_folded,
            n_searches=n_searches,
            n_rotation_cycles=n_rotation_cycles,
            total_energy_joules=total_energy,
            total_latency_ns=total_latency,
            component_totals=component_totals,
            pass_summaries=summaries,
            n_reference_loads=loads[0],
            n_segments_loaded=loads[1],
            n_bases_loaded=loads[2],
            n_broadcasts=broadcasts[0],
            n_reads_broadcast=broadcasts[1],
            n_bits_broadcast=broadcasts[2],
        )
        self._events[:start + len(fold)] = [merged]
        self._n_compactions += 1
        return len(fold)

    @classmethod
    def merged(cls, *ledgers: "CostLedger") -> "CostLedger":
        """One ledger holding every input's events, input order.

        Shard merges pass shard-ordered ledgers, so the merged event
        order — and therefore every order-sensitive view — is
        deterministic regardless of worker scheduling.

        A compacted ledger is only accepted as the *first* input: its
        checkpoint stays the merged ledger's head, so the views'
        resume-from-prefix contract still holds.  A checkpoint from a
        later input would land mid-stream — the interleaved
        accumulation it folded away no longer exists — so such merges
        raise :class:`~repro.errors.LedgerCompactionError`; aggregate
        compacted shard ledgers at the stats level instead (e.g.
        :meth:`repro.core.pipeline.ShardedReadMappingPipeline.
        merged_stats`).
        """
        merged = cls()
        for position, ledger in enumerate(ledgers):
            if position > 0 and ledger.checkpoint is not None:
                raise LedgerCompactionError(
                    "cannot merge a compacted ledger after the first "
                    "position: its checkpoint would land mid-stream; "
                    "aggregate per-ledger views instead"
                )
            merged._events.extend(ledger.events)
        return merged
