"""A byte-budgeted, pin-aware catalog of on-disk stored references.

The multi-tenant layer over :mod:`repro.refstore.format`: a
:class:`ReferenceCatalog` maps reference *names* to store files,
opens them lazily on first borrow (one ``mmap``, zero encoding
passes), and keeps hot references resident under an optional byte
budget with LRU eviction.  Borrowing returns a
:class:`ReferenceLease` that **pins** the mapping — an LRU sweep or
an explicit :meth:`ReferenceCatalog.evict` never unmaps a reference
while any lease is open on it (explicit eviction of a pinned name
raises :class:`~repro.errors.RefStoreError`; the budget sweep skips
pinned entries, so residency may temporarily exceed the budget while
pins hold).  Closing the last lease re-runs the sweep.

All methods are thread-safe behind one lock, which makes the catalog
safe to share across the concurrent sessions of a
:class:`~repro.service.MappingFrontend`.  :meth:`ReferenceCatalog.
stats` reports hit/miss/eviction counts, open latency and resident
bytes so a service operator can size the budget from evidence.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Iterator

from repro.cam.array import StoredReference
from repro.errors import RefStoreError
from repro.faults.hooks import fire as _fire_fault
from repro.refstore.format import (
    MappedReference,
    open_stored_reference,
    save_stored_reference,
)

__all__ = [
    "CatalogStats",
    "ReferenceCatalog",
    "ReferenceLease",
]


@dataclass(frozen=True)
class CatalogStats:
    """A point-in-time snapshot of one catalog's behaviour.

    ``hits``/``misses`` count borrows served from a resident mapping
    vs. borrows that *successfully* opened the file (``misses`` is
    also the number of successful opens); ``open_failures`` counts
    borrows whose open raised (corrupt, truncated or missing store
    file) — a distinct signal, because a failed open costs the caller
    an error, not a mapping, and an operator alerting on miss rate
    must not conflate the two.  ``evictions`` counts unmapped
    references — budget sweeps and explicit evictions alike.
    ``open_seconds_*`` time only the successful miss path (map +
    validate + adopt), the cost the catalog exists to amortise.
    """

    hits: int
    misses: int
    open_failures: int
    evictions: int
    resident_count: int
    resident_bytes: int
    pinned_count: int
    byte_budget: "int | None"
    open_seconds_total: float
    open_seconds_max: float


class _Entry:
    """Catalog-internal bookkeeping for one registered name."""

    __slots__ = ("path", "mapped", "pins", "tick")

    def __init__(self, path: str):
        self.path = path
        self.mapped: "MappedReference | None" = None
        self.pins = 0
        self.tick = 0


class ReferenceLease:
    """A pin on one catalog reference, released by :meth:`close`.

    While any lease on a name is open the catalog will not unmap that
    reference — not for budget pressure, not for an explicit evict.
    Use as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, catalog: "ReferenceCatalog", name: str,
                 reference: StoredReference, nbytes: int):
        self._catalog: "ReferenceCatalog | None" = catalog
        self._name = name
        self._reference = reference
        self._nbytes = int(nbytes)

    @property
    def name(self) -> str:
        return self._name

    @property
    def reference(self) -> StoredReference:
        """The sealed mapped reference (invalid once the lease closes)."""
        if self._catalog is None:
            raise RefStoreError(
                f"lease on reference {self._name!r} has been closed"
            )
        return self._reference

    @property
    def nbytes(self) -> int:
        """Size of the backing store file in bytes."""
        return self._nbytes

    @property
    def closed(self) -> bool:
        return self._catalog is None

    def close(self) -> None:
        """Drop the pin (idempotent); may trigger a budget sweep."""
        catalog, self._catalog = self._catalog, None
        if catalog is not None:
            catalog._release(self._name)

    def __enter__(self) -> "ReferenceLease":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ReferenceCatalog:
    """Names → on-disk stored references, resident under a byte budget.

    ``byte_budget`` bounds the bytes of *unpinned* resident mappings:
    after every open and every last-lease release, least-recently
    borrowed unpinned references are unmapped until resident bytes
    fit the budget (``None`` = unbounded).  Registered files are
    never deleted — eviction only unmaps.
    """

    def __init__(self, byte_budget: "int | None" = None):
        if byte_budget is not None:
            byte_budget = int(byte_budget)
            if byte_budget <= 0:
                raise RefStoreError(
                    f"byte_budget must be positive or None, got "
                    f"{byte_budget}"
                )
        self._byte_budget = byte_budget
        self._lock = threading.Lock()
        self._entries: "dict[str, _Entry]" = {}
        self._clock = 0
        self._closed = False
        self._hits = 0
        self._misses = 0
        self._open_failures = 0
        self._evictions = 0
        self._open_seconds_total = 0.0
        self._open_seconds_max = 0.0

    # -- registration --------------------------------------------------

    def add(self, name: str, path) -> None:
        """Register an existing store file under *name* (lazy open).

        The file must exist (fail-fast on typos); its contents are
        validated on first borrow, not here.
        """
        path = os.fspath(path)
        with self._lock:
            self._require_open()
            if name in self._entries:
                raise RefStoreError(
                    f"reference name {name!r} is already registered "
                    f"(backed by {self._entries[name].path!r})"
                )
            if not os.path.isfile(path):
                raise RefStoreError(
                    f"no reference store file {path!r} to register "
                    f"as {name!r}"
                )
            self._entries[name] = _Entry(path)

    def store(self, name: str, reference: StoredReference,
              path) -> int:
        """Save *reference* to *path* and register it — one call.

        Returns the store file size in bytes.  The encode already
        paid by *reference* is the last one: every borrow of *name*
        maps the file instead.
        """
        with self._lock:
            self._require_open()
            if name in self._entries:
                raise RefStoreError(
                    f"reference name {name!r} is already registered "
                    f"(backed by {self._entries[name].path!r})"
                )
        nbytes = save_stored_reference(path, reference)
        self.add(name, path)
        return nbytes

    def names(self) -> "tuple[str, ...]":
        """All registered names, in registration order."""
        with self._lock:
            return tuple(self._entries)

    def resident_names(self) -> "tuple[str, ...]":
        """Names currently mapped into memory."""
        with self._lock:
            return tuple(name for name, entry in self._entries.items()
                         if entry.mapped is not None)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def __iter__(self) -> "Iterator[str]":
        return iter(self.names())

    # -- borrow / release ----------------------------------------------

    def borrow(self, name: str) -> ReferenceLease:
        """Pin *name* resident and lease its mapped reference.

        A hit reuses the resident mapping; a miss maps and validates
        the file (timed into :meth:`stats`), then sweeps the LRU tail
        if the budget is exceeded.  Close the lease to unpin.
        """
        with self._lock:
            self._require_open()
            entry = self._entries.get(name)
            if entry is None:
                raise RefStoreError(
                    f"unknown reference name {name!r}; registered: "
                    f"{sorted(self._entries) or 'none'}"
                )
            if entry.mapped is None:
                _fire_fault("refstore.catalog.open", name=name,
                            path=entry.path)
                started = time.perf_counter()
                try:
                    entry.mapped = open_stored_reference(entry.path)
                except RefStoreError:
                    # Not a miss: the borrow produced an error, not a
                    # mapping — operators watch this count separately.
                    self._open_failures += 1
                    raise
                elapsed = time.perf_counter() - started
                self._misses += 1
                self._open_seconds_total += elapsed
                self._open_seconds_max = max(self._open_seconds_max,
                                             elapsed)
            else:
                self._hits += 1
            self._clock += 1
            entry.tick = self._clock
            entry.pins += 1
            lease = ReferenceLease(self, name,
                                   entry.mapped.reference,
                                   entry.mapped.nbytes)
            self._sweep_locked()
            return lease

    def _release(self, name: str) -> None:
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.pins == 0:
                # Lease outlived an evicted-and-closed catalog entry;
                # nothing left to unpin.
                return
            entry.pins -= 1
            self._sweep_locked()

    # -- eviction ------------------------------------------------------

    def evict(self, name: str) -> bool:
        """Unmap *name* now.  Pinned references refuse, loudly.

        Returns ``True`` if a mapping was dropped, ``False`` if the
        name was registered but not resident.  Raises
        :class:`~repro.errors.RefStoreError` for unknown names and
        for names with open leases — eviction never invalidates a
        borrowed reference.
        """
        with self._lock:
            self._require_open()
            entry = self._entries.get(name)
            if entry is None:
                raise RefStoreError(
                    f"unknown reference name {name!r}; registered: "
                    f"{sorted(self._entries) or 'none'}"
                )
            if entry.mapped is None:
                return False
            if entry.pins > 0:
                raise RefStoreError(
                    f"reference {name!r} is pinned by {entry.pins} "
                    f"open lease(s); close them before evicting"
                )
            self._evict_locked(entry)
            return True

    def _evict_locked(self, entry: _Entry) -> None:
        mapped, entry.mapped = entry.mapped, None
        mapped.close()
        self._evictions += 1

    def _sweep_locked(self) -> None:
        """Unmap LRU unpinned entries until resident bytes fit."""
        if self._byte_budget is None:
            return
        while self._resident_bytes_locked() > self._byte_budget:
            victims = [entry for entry in self._entries.values()
                       if entry.mapped is not None and entry.pins == 0]
            if not victims:
                # Every resident mapping is pinned: the budget is
                # temporarily exceeded, by design — pins never break.
                return
            self._evict_locked(min(victims, key=lambda e: e.tick))

    def _resident_bytes_locked(self) -> int:
        return sum(entry.mapped.nbytes
                   for entry in self._entries.values()
                   if entry.mapped is not None)

    # -- observability / lifecycle -------------------------------------

    def stats(self) -> CatalogStats:
        with self._lock:
            return CatalogStats(
                hits=self._hits,
                misses=self._misses,
                open_failures=self._open_failures,
                evictions=self._evictions,
                resident_count=sum(
                    1 for entry in self._entries.values()
                    if entry.mapped is not None),
                resident_bytes=self._resident_bytes_locked(),
                pinned_count=sum(
                    1 for entry in self._entries.values()
                    if entry.pins > 0),
                byte_budget=self._byte_budget,
                open_seconds_total=self._open_seconds_total,
                open_seconds_max=self._open_seconds_max,
            )

    def close(self) -> None:
        """Unmap everything and refuse further use (idempotent).

        Raises :class:`~repro.errors.RefStoreError` if any lease is
        still open — closing under a live borrower would invalidate
        arrays mid-search.
        """
        with self._lock:
            if self._closed:
                return
            pinned = sorted(name for name, entry
                            in self._entries.items() if entry.pins > 0)
            if pinned:
                raise RefStoreError(
                    f"cannot close catalog with open leases on "
                    f"{pinned}; close the leases (or their sessions) "
                    f"first"
                )
            for entry in self._entries.values():
                if entry.mapped is not None:
                    self._evict_locked(entry)
            self._closed = True

    def __enter__(self) -> "ReferenceCatalog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise RefStoreError("this reference catalog has been closed")
