"""repro.refstore — persistent stored references and their catalog.

Encode a reference once, :func:`save_stored_reference` it, and every
later service boot :func:`open_stored_reference`-s the file back as a
sealed zero-copy :class:`~repro.cam.array.StoredReference` via
``mmap`` — no encoding pass (``n_encodes`` stays 0), page-cache
shared across processes, every open guarded by the same
magic/version/CRC32 ladder as the shared-memory transport (the two
containers share one codec, :mod:`repro.parallel.header`).

:class:`ReferenceCatalog` layers multi-tenant residency on top:
names → files, lazy opens, byte-budgeted LRU eviction that never
unmaps a pinned (leased) reference, and hit/miss/latency stats.
``MappingFrontend(..., catalog=...)`` and
``StreamingMappingService(..., catalog=...)`` borrow from a catalog
by name instead of encoding from raw segments; results are
bit-identical either way (see DESIGN.md, "Reference persistence
contract").
"""

from repro.refstore.catalog import (
    CatalogStats,
    ReferenceCatalog,
    ReferenceLease,
)
from repro.refstore.format import (
    REFSTORE_MAGIC,
    REFSTORE_VERSION,
    FileReferenceHandle,
    MappedReference,
    open_stored_reference,
    save_stored_reference,
    slice_stored_reference,
)

__all__ = [
    "CatalogStats",
    "FileReferenceHandle",
    "MappedReference",
    "REFSTORE_MAGIC",
    "REFSTORE_VERSION",
    "ReferenceCatalog",
    "ReferenceLease",
    "open_stored_reference",
    "save_stored_reference",
    "slice_stored_reference",
]
