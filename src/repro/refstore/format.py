"""The on-disk stored-reference container: save once, mmap forever.

The boot-time twin of :mod:`repro.parallel.shm`: where the shared
memory transport carries a sealed
:class:`~repro.cam.array.StoredReference` across a *process* boundary,
this format carries it across a *restart* boundary.
:func:`save_stored_reference` writes the full
:class:`~repro.kernels.EncodedReference` payload (raw segments, float
one-hot, 2-bit bitplanes, validity masks) into one versioned,
CRC32-checksummed file; :func:`open_stored_reference` maps it back
**read-only via** ``mmap`` — zero copy, zero encoding passes
(``n_encodes`` of an opened reference stays 0 forever), and because
the OS page cache backs the mapping, every process that opens the same
file shares the same physical pages.  Service boot drops from
O(encode) to O(page-fault).

**File layout.**  Exactly the shared container codec of
:mod:`repro.parallel.header` — the two formats are the same bytes
behind different magics (``b"ASMCAPRF"`` here, ``b"ASMCAPSM"`` in
shared memory), so they cannot drift::

    magic | version | meta_length | meta_crc32 | payload_crc32 |
    payload_length | meta JSON | padding | 64-byte-aligned arrays

Every open validates magic, version, size and both CRC32s before
building a view; a truncated, torn, foreign or stale file raises
:class:`~repro.errors.RefStoreError`, never a silently wrong count.

**Provenance and sharding.**  An opened reference carries a picklable
:class:`FileReferenceHandle` as its
:attr:`~repro.cam.array.StoredReference.source`, and
:func:`slice_stored_reference` cuts zero-copy per-shard references
whose handles name the same file plus a row range.  The process
engine (:class:`repro.parallel.ProcessShardEngine`) recognises those
handles and has its workers re-open the file directly — no per-boot
shared-memory copy of the reference at all.  Slicing is bit-identical
to encoding the sliced rows because every per-row cache is a pure
per-row function of the segments
(:func:`repro.kernels.slice_encoded_reference`).
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass
from typing import Sequence

from repro.cam.array import StoredReference
from repro.errors import CamConfigError, RefStoreError
from repro.faults.hooks import fire as _fire_fault
from repro.kernels import (
    ENCODED_REFERENCE_FIELDS,
    encoded_reference_arrays,
    encoded_reference_from_arrays,
    slice_encoded_reference,
)
from repro.parallel.header import (
    open_container,
    plan_layout,
    seal_header,
    write_payload,
)

__all__ = [
    "REFSTORE_MAGIC",
    "REFSTORE_VERSION",
    "FileReferenceHandle",
    "MappedReference",
    "open_stored_reference",
    "save_stored_reference",
    "slice_stored_reference",
]

#: Leading magic bytes of every on-disk stored-reference file (the
#: shared-memory twin uses ``b"ASMCAPSM"``).
REFSTORE_MAGIC = b"ASMCAPRF"

#: File format version; bumped on any layout change so an open
#: against a stale writer fails loudly instead of mis-reading bytes.
REFSTORE_VERSION = 1


@dataclass(frozen=True)
class FileReferenceHandle:
    """A picklable ticket for one store file (optionally a row slice).

    Everything else an open needs (geometry, dtypes, offsets,
    checksums) lives in the file's own header, so the ticket a
    coordinator sends to its workers is the path — plus the
    ``[start, stop)`` row range for a shard of the stored reference
    (``None``/``None`` = the whole reference).
    """

    path: str
    start: "int | None" = None
    stop: "int | None" = None


def save_stored_reference(path, reference: StoredReference) -> int:
    """Write a sealed reference's full encoded payload to *path*.

    One encode, ever: the bytes written are exactly the arrays of
    ``reference.encoded()``, so every later
    :func:`open_stored_reference` skips the encoding pass entirely.
    The write is atomic (temp file + ``os.replace``) — a crashed or
    concurrent writer can never leave a half-written file behind the
    final name.  Returns the file size in bytes.  Requires a
    **sealed** reference (the payload must be immutable once other
    processes can map it); raises
    :class:`~repro.errors.RefStoreError` otherwise.
    """
    if not reference.sealed:
        raise RefStoreError(
            "only a sealed StoredReference can be saved to a store "
            "file (seal() or StoredReference.encode(...) first)"
        )
    path = os.fspath(path)
    arrays = encoded_reference_arrays(reference.encoded())
    layout = plan_layout(arrays)
    buf = bytearray(layout.total)
    write_payload(buf, layout, arrays)
    seal_header(buf, layout, magic=REFSTORE_MAGIC,
                version=REFSTORE_VERSION)
    # Chaos hook: truncation/byte-flips injected on the sealed buffer
    # reach the disk exactly as a torn or bit-rotted file would, so
    # the next open fails the size/CRC ladder.
    _fire_fault("refstore.save", buf=buf, path=path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(buf)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise RefStoreError(
            f"could not write reference store {path!r}: {exc}"
        ) from exc
    finally:
        if os.path.exists(tmp):  # pragma: no cover - error path only
            os.unlink(tmp)
    return layout.total


class MappedReference:
    """Owner of one read-only mmap of a stored-reference file.

    :attr:`reference` is a sealed
    :class:`~repro.cam.array.StoredReference` whose arrays are
    zero-copy views over the mapping; this owner keeps the mapping
    alive and :meth:`close` drops it (the views die with it — only
    close once the reference is no longer searched).  Closing never
    touches the file: the store outlives every reader.
    """

    def __init__(self, mapping: mmap.mmap, view: memoryview,
                 reference: StoredReference, path: str, nbytes: int):
        self._mapping: "mmap.mmap | None" = mapping
        self._view: "memoryview | None" = view
        self._reference: "StoredReference | None" = reference
        self._path = path
        self._nbytes = int(nbytes)

    @property
    def reference(self) -> StoredReference:
        if self._mapping is None:
            raise RefStoreError("this mapped reference has been closed")
        return self._reference

    @property
    def path(self) -> str:
        return self._path

    @property
    def nbytes(self) -> int:
        """Mapped file size in bytes (0 once closed)."""
        return 0 if self._mapping is None else self._nbytes

    @property
    def closed(self) -> bool:
        return self._mapping is None

    def close(self) -> None:
        """Unmap the file (idempotent; never deletes it)."""
        if self._mapping is None:
            return
        self._reference = None
        view, self._view = self._view, None
        mapping, self._mapping = self._mapping, None
        try:
            if view is not None:
                view.release()
            mapping.close()
        except (OSError, BufferError):  # pragma: no cover - live views
            pass

    def __enter__(self) -> "MappedReference":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_stored_reference(
        source: "FileReferenceHandle | str | os.PathLike",
        ) -> MappedReference:
    """Map a store file back into a sealed stored reference, zero-copy.

    Validates the versioned header (magic, version, size, meta CRC32,
    payload CRC32) before building any view; every payload array is a
    read-only view over the read-only mapping, and the sealed
    reference is rebuilt without an encoding pass
    (:meth:`~repro.cam.array.StoredReference.adopt_encoded` —
    ``n_encodes`` stays 0).  A :class:`FileReferenceHandle` carrying a
    row range opens that shard slice (the worker-side attach of the
    process engine's path-based hand-off).  Raises
    :class:`~repro.errors.RefStoreError` on a missing file and on any
    header or checksum mismatch.
    """
    if isinstance(source, FileReferenceHandle):
        handle = source
    else:
        handle = FileReferenceHandle(path=os.fspath(source))
    try:
        with open(handle.path, "rb") as file:
            mapping = mmap.mmap(file.fileno(), 0,
                                access=mmap.ACCESS_READ)
    except FileNotFoundError as exc:
        raise RefStoreError(
            f"no reference store file {handle.path!r}"
        ) from exc
    except (OSError, ValueError) as exc:
        # ValueError: mmap of an empty file.
        raise RefStoreError(
            f"could not map reference store {handle.path!r}: {exc}"
        ) from exc
    view = memoryview(mapping)
    try:
        _fire_fault("refstore.open", path=handle.path)
        arrays = open_container(
            view, magic=REFSTORE_MAGIC, version=REFSTORE_VERSION,
            describe=f"reference store {handle.path!r}",
            error=RefStoreError,
            expected_fields=ENCODED_REFERENCE_FIELDS,
        )
        encoded = encoded_reference_from_arrays(arrays)
        if handle.start is not None or handle.stop is not None:
            start = 0 if handle.start is None else int(handle.start)
            stop = (encoded.segments.shape[0] if handle.stop is None
                    else int(handle.stop))
            try:
                encoded = slice_encoded_reference(encoded, start, stop)
            except CamConfigError as exc:
                raise RefStoreError(
                    f"reference store {handle.path!r}: {exc}"
                ) from exc
            handle = FileReferenceHandle(handle.path, start, stop)
        reference = StoredReference.adopt_encoded(encoded,
                                                  source=handle)
    except BaseException:
        try:
            view.release()
            mapping.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
        raise
    return MappedReference(mapping, view, reference, handle.path,
                           len(view))


def slice_stored_reference(
        reference: StoredReference,
        ranges: "Sequence[tuple[int, int]]",
        ) -> "tuple[StoredReference, ...]":
    """Cut sealed zero-copy shard references at the given row ranges.

    Each ``(start, stop)`` range becomes an independent sealed
    :class:`~repro.cam.array.StoredReference` over *views* of the
    parent's encoded arrays — no copy, no encoding pass
    (``n_encodes == 0`` on every shard).  Bit-identical to
    ``StoredReference.encode(segments[start:stop])`` because every
    per-row cache is a pure per-row function of the stored rows.

    When the parent came from a store file, each shard's
    :attr:`~repro.cam.array.StoredReference.source` is a
    :class:`FileReferenceHandle` naming the same file plus the (file
    absolute) row range — which is what lets the process engine's
    workers re-open the shard by path instead of receiving a
    shared-memory copy.
    """
    if not reference.sealed:
        raise RefStoreError(
            "only a sealed StoredReference can be sliced into shards"
        )
    encoded = reference.encoded()
    parent = reference.source
    base = 0
    path = None
    if isinstance(parent, FileReferenceHandle):
        path = parent.path
        base = 0 if parent.start is None else int(parent.start)
    shards = []
    for start, stop in ranges:
        try:
            sliced = slice_encoded_reference(encoded, start, stop)
        except CamConfigError as exc:
            raise RefStoreError(str(exc)) from exc
        source = None
        if path is not None:
            source = FileReferenceHandle(path, base + int(start),
                                         base + int(stop))
        shards.append(StoredReference.adopt_encoded(sliced,
                                                    source=source))
    return tuple(shards)
