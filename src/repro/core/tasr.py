"""Threshold-Aware Sequence Rotation — Algorithm 2 (Section IV-B).

**The misjudgment.** Consecutive insertions or deletions shift the rest
of the read by several positions, which the one-base neighbour window of
ED* cannot absorb: ED* becomes much larger than the true edit distance
and EDAM produces false negatives whenever ``ED < T < ED*``.

**Plain SR and its flaw.** EDAM's Sequence Rotation re-searches with
the read rotated base-by-base and ORs the results.  But a rotation can
also *underestimate* distance (the rotated read happens to line up
spuriously), creating false positives precisely when ``T`` is small.

**The TASR fix.** Only rotate when ``T >= Tl`` with
``Tl = ceil(gamma/eid * m)`` — at small thresholds the FP risk outweighs
the FN correction, at large thresholds (or high indel rates) rotation
pays off.  Rotation costs one extra search cycle per rotation, which the
timing model charges.

The rotation direction is configurable: the paper rotates "left (right)"
— we default to exploring both directions (``NR`` each way), with
left-only and right-only modes for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import constants
from repro.errors import ThresholdError

#: Valid rotation direction modes.
DIRECTIONS = ("both", "left", "right")


def rotation_offsets(nr: int = constants.TASR_NR,
                     direction: str = "both") -> tuple[int, ...]:
    """The rotation amounts Algorithm 2 tries, excluding 0.

    Positive = left rotation, negative = right rotation.  The unrotated
    search (i = 0 in the paper's loop) is the caller's base search.
    """
    if nr < 0:
        raise ThresholdError(f"NR must be non-negative, got {nr}")
    if direction not in DIRECTIONS:
        raise ThresholdError(
            f"direction must be one of {DIRECTIONS}, got {direction!r}"
        )
    left = tuple(range(1, nr + 1))
    right = tuple(-i for i in range(1, nr + 1))
    if direction == "left":
        return left
    if direction == "right":
        return right
    return left + right


@dataclass(frozen=True)
class TasrOutcome:
    """Result of applying Algorithm 2.

    Attributes
    ----------
    decisions:
        Final per-row decisions (OR over the base and rotated searches).
    triggered:
        Whether ``T >= Tl`` allowed rotations at all.
    n_extra_searches:
        Rotated searches issued (0 when not triggered).
    rotation_cycles:
        Total shift-register cycles spent on rotations.
    """

    decisions: np.ndarray
    triggered: bool
    n_extra_searches: int
    rotation_cycles: int


def tasr_correct(base_decisions: np.ndarray,
                 rotated_search: Callable[[int], np.ndarray],
                 threshold: int,
                 lower_bound: int,
                 nr: int = constants.TASR_NR,
                 direction: str = "both") -> TasrOutcome:
    """Apply Algorithm 2 on top of an existing base search.

    Parameters
    ----------
    base_decisions:
        Per-row decisions of the unrotated ED* search (i = 0).
    rotated_search:
        Callback issuing an ED* search with the read rotated by the
        given offset (positive = left) and returning per-row decisions.
        The matcher wires this to the array's shift registers.
    threshold, lower_bound:
        ``T`` and ``Tl``; rotations fire only when ``T >= Tl``.
    nr:
        Rotations per direction.
    direction:
        ``"both"`` / ``"left"`` / ``"right"``.
    """
    base_decisions = np.asarray(base_decisions, dtype=bool)
    if threshold < 0:
        raise ThresholdError(f"threshold must be non-negative, got {threshold}")
    if threshold < lower_bound:
        return TasrOutcome(decisions=base_decisions.copy(), triggered=False,
                           n_extra_searches=0, rotation_cycles=0)

    decisions = base_decisions.copy()
    n_extra = 0
    cycles = 0
    for offset in rotation_offsets(nr, direction):
        rotated = np.asarray(rotated_search(offset), dtype=bool)
        if rotated.shape != decisions.shape:
            raise ThresholdError(
                f"rotated decisions shape {rotated.shape} != base "
                f"{decisions.shape}"
            )
        decisions |= rotated
        n_extra += 1
        cycles += abs(offset)
    return TasrOutcome(decisions=decisions, triggered=True,
                       n_extra_searches=n_extra, rotation_cycles=cycles)
