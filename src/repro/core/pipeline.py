"""Read-mapping pipeline: batch matching with aggregate reporting.

:class:`ReadMappingPipeline` runs a matcher over a batch of reads and
collects per-read match locations plus aggregate cost statistics —
the read-mapping loop of Fig. 4(a) (sequencing machine -> memory ->
global buffer -> arrays) at the algorithmic level.  System-level
latency/energy with H-tree and buffer overheads lives in
:mod:`repro.arch.accelerator`; this pipeline charges array-level costs
only, which is what the per-read diagnostics need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.matcher import AsmCapMatcher, MatchOutcome
from repro.errors import CamConfigError
from repro.genome.reads import ReadRecord


@dataclass(frozen=True)
class ReadMapping:
    """One read's mapping result."""

    read_index: int
    matched_rows: tuple[int, ...]
    outcome: MatchOutcome

    @property
    def is_mapped(self) -> bool:
        return bool(self.matched_rows)

    @property
    def is_unique(self) -> bool:
        return len(self.matched_rows) == 1


@dataclass
class MappingReport:
    """Aggregate statistics for one pipeline run."""

    n_reads: int = 0
    n_mapped: int = 0
    n_unique: int = 0
    n_searches: int = 0
    total_energy_joules: float = 0.0
    total_latency_ns: float = 0.0
    mappings: list[ReadMapping] = field(default_factory=list)

    @property
    def mapped_fraction(self) -> float:
        return self.n_mapped / self.n_reads if self.n_reads else 0.0

    @property
    def unique_fraction(self) -> float:
        return self.n_unique / self.n_reads if self.n_reads else 0.0

    @property
    def mean_energy_per_read_joules(self) -> float:
        return (self.total_energy_joules / self.n_reads
                if self.n_reads else 0.0)

    @property
    def mean_latency_per_read_ns(self) -> float:
        return (self.total_latency_ns / self.n_reads
                if self.n_reads else 0.0)

    @property
    def reads_per_second(self) -> float:
        """Sequential-throughput estimate from the summed latency."""
        if self.total_latency_ns == 0.0:
            return 0.0
        return self.n_reads / (self.total_latency_ns * 1e-9)


class ReadMappingPipeline:
    """Batch read mapping over one matcher."""

    def __init__(self, matcher: AsmCapMatcher):
        self._matcher = matcher

    @property
    def matcher(self) -> AsmCapMatcher:
        return self._matcher

    def map_read(self, read: "np.ndarray | ReadRecord",
                 threshold: int, index: int = 0) -> ReadMapping:
        """Map a single read; returns its matched row indices."""
        codes = read.read.codes if isinstance(read, ReadRecord) else np.asarray(read)
        outcome = self._matcher.match(codes, threshold)
        matched_rows = tuple(int(i) for i in np.flatnonzero(outcome.decisions))
        return ReadMapping(read_index=index, matched_rows=matched_rows,
                           outcome=outcome)

    def run(self, reads: "Sequence[np.ndarray] | Sequence[ReadRecord]",
            threshold: int) -> MappingReport:
        """Map every read and aggregate the statistics."""
        if not len(reads):
            raise CamConfigError("pipeline invoked with an empty read batch")
        report = MappingReport()
        for index, read in enumerate(reads):
            mapping = self.map_read(read, threshold, index=index)
            report.mappings.append(mapping)
            report.n_reads += 1
            report.n_mapped += int(mapping.is_mapped)
            report.n_unique += int(mapping.is_unique)
            report.n_searches += mapping.outcome.n_searches
            report.total_energy_joules += mapping.outcome.energy_joules
            report.total_latency_ns += mapping.outcome.latency_ns
        return report
